// E4 — Paper Figure 2: the extended join graph of the product_sales
// view, its annotations, and the Need sets of Definitions 3 and 4.

#include <iostream>

#include "bench_util.h"
#include "core/need.h"
#include "workload/retail.h"

int main() {
  using namespace mindetail;  // NOLINT
  using mindetail::bench::Unwrap;

  bench::Header("E4 / Paper Figure 2",
                "extended join graph and Need sets of product_sales");

  RetailParams params;
  params.days = 4;
  params.stores = 1;
  params.products = 10;
  params.products_sold_per_store_day = 2;
  params.transactions_per_product = 1;
  RetailWarehouse warehouse = Unwrap(GenerateRetail(params));

  GpsjViewDef def = Unwrap(ProductSalesView(warehouse.catalog));
  std::cout << def.ToSqlString() << "\n\n";

  ExtendedJoinGraph graph =
      Unwrap(ExtendedJoinGraph::Build(def, warehouse.catalog));
  std::cout << "Extended join graph (paper Figure 2 — sale at the root,\n"
            << "time annotated g because time.month is a group-by "
               "attribute):\n\n"
            << graph.ToString() << "\n";

  std::cout << "Annotations:\n";
  for (const std::string& table : graph.TopologicalOrder()) {
    const char* annotation =
        VertexAnnotationName(graph.vertex(table).annotation);
    std::cout << "  " << table << ": "
              << (annotation[0] == '\0' ? "(none)" : annotation) << "\n";
  }

  std::cout << "\nNeed sets (Definitions 3 and 4):\n";
  for (const auto& [table, need] : AllNeedSets(graph)) {
    std::cout << "  Need(" << table << ") = {";
    bool first = true;
    for (const std::string& t : need) {
      std::cout << (first ? "" : ", ") << t;
      first = false;
    }
    std::cout << "}\n";
  }

  std::cout << "\nDependence structure (Sec. 2.2):\n";
  for (const std::string& table : graph.TopologicalOrder()) {
    for (const auto& dep :
         graph.DirectDependencies(table, warehouse.catalog)) {
      std::cout << "  " << table << " depends on " << dep.to_table
                << " (via " << table << "." << dep.from_attr << ")\n";
    }
  }
  std::cout << "  sale transitively depends on all: "
            << (graph.TransitivelyDependsOnAll("sale", warehouse.catalog)
                    ? "yes"
                    : "no")
            << "\n";

  // Contrast: group on the product key and the graph gains a k
  // annotation, emptying Need(product).
  GpsjViewDef key_view = Unwrap(SalesByProductKeyView(warehouse.catalog));
  ExtendedJoinGraph key_graph =
      Unwrap(ExtendedJoinGraph::Build(key_view, warehouse.catalog));
  std::cout << "\nContrast — sales_by_product (grouped on product.id):\n\n"
            << key_graph.ToString() << "\n";
  for (const auto& [table, need] : AllNeedSets(key_graph)) {
    std::cout << "  Need(" << table << ") = {";
    bool first = true;
    for (const std::string& t : need) {
      std::cout << (first ? "" : ", ") << t;
      first = false;
    }
    std::cout << "}\n";
  }
  std::cout << "  -> sale is in no Need set: its auxiliary view is "
               "eliminable (Sec. 3.3).\n";
  return 0;
}
