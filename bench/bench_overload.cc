// Overload protection under saturating ingest — what the governors buy
// (and cost) when the warehouse is driven past its apply rate while
// queries keep arriving.
//
// Topology per config: N producer threads generate unique insert-only
// sale batches and submit them through a front-end OverloadController
// (the same class the warehouse embeds, placed where a network front
// end would hold it); admitted batches flow through a bounded queue to
// the single writer thread, which applies them in arrival order. The
// timed loop runs the query mix on the calling thread and reports the
// observed latency distribution:
//
//   p50_ms / p99_ms   query latency percentiles over the timed run
//   shed_rate         refused submissions / total submissions
//   refused_queries   deadline expiries + budget refusals (degraded,
//                     not failed: each returns immediately with a
//                     retryable error instead of occupying the server)
//
// Configs (benchmark argument):
//   0 no-limits  nothing governed — the baseline the others pay for
//   1 deadline   WithQueryDeadline: slow plans give up at the limit
//   2 budget     WithQueryMemoryBudget: the aux-join mix member is
//                refused before materializing
//   3 shedding   front-end admission on a window of 2 with 4 producers
//                — saturation sheds instead of queueing unboundedly
//
// google-benchmark timing harness; CI emits BENCH_overload.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "maintenance/admission.h"
#include "maintenance/warehouse.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

constexpr char kViewSql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, product.brand, SUM(sale.price) AS TotalPrice,
         COUNT(*) AS Cnt
  FROM sale, time, product
  WHERE sale.timeid = time.id AND sale.productid = product.id
  GROUP BY time.month, product.brand
)sql";

// Answerable by summary roll-up.
constexpr char kRollupSql[] =
    "SELECT product.brand, SUM(sale.price) AS T, COUNT(*) AS C "
    "FROM sale, time, product "
    "WHERE sale.timeid = time.id AND sale.productid = product.id "
    "GROUP BY product.brand";

// Forces the auxiliary-view join (sale.productid is not a view output).
constexpr char kAuxJoinSql[] =
    "SELECT sale.productid, SUM(sale.price) AS T, COUNT(*) AS C "
    "FROM sale, time, product "
    "WHERE sale.timeid = time.id AND sale.productid = product.id "
    "GROUP BY sale.productid";

RetailWarehouse MakeSource() {
  RetailParams params;
  params.days = 30;
  params.stores = 4;
  params.products = 200;
  params.products_sold_per_store_day = 25;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

// Unique insert-only sale batches: valid against the catalog at any
// point in the stream, and distinct so content-hash dedup never folds
// a resubmission into an earlier ack.
std::map<std::string, Delta> FreshBatch(std::atomic<int64_t>& next_id,
                                        int rows) {
  Delta delta;
  for (int i = 0; i < rows; ++i) {
    const int64_t id = next_id.fetch_add(1);
    delta.inserts.push_back({Value(id), Value(1 + id % 30),
                             Value(1 + id % 200), Value(1 + id % 4),
                             Value(static_cast<double>(5 + id % 40))});
  }
  std::map<std::string, Delta> changes;
  changes.emplace("sale", std::move(delta));
  return changes;
}

struct Config {
  const char* name;
  int64_t deadline_ms = 0;
  uint64_t budget_bytes = 0;
  int max_inflight = 0;  // Front-end admission window; 0 = no shedding.
};

const Config kConfigs[] = {
    {"no_limits"},
    {"deadline", /*deadline_ms=*/5},
    {"budget", /*deadline_ms=*/0, /*budget_bytes=*/16 * 1024},
    {"shedding", /*deadline_ms=*/0, /*budget_bytes=*/0,
     /*max_inflight=*/2},
};

// The saturating ingest rig: producers → admission → queue → writer.
class IngestRig {
 public:
  IngestRig(Warehouse* warehouse, int max_inflight, int producers)
      : warehouse_(warehouse), controller_(MakeOptions(max_inflight)) {
    writer_ = std::thread([this] { WriterLoop(); });
    for (int i = 0; i < producers; ++i) {
      producers_.emplace_back([this] { ProducerLoop(); });
    }
  }

  ~IngestRig() {
    stop_.store(true);
    queue_cv_.notify_all();
    for (std::thread& t : producers_) t.join();
    writer_.join();
  }

  uint64_t submissions() const { return submissions_.load(); }
  OverloadStats controller_stats() const { return controller_.Snapshot(); }

 private:
  struct Pending {
    std::map<std::string, Delta> changes;
    OverloadController::Permit permit;
  };

  static OverloadController::Options MakeOptions(int max_inflight) {
    OverloadController::Options options;
    options.max_inflight_batches = max_inflight;
    return options;
  }

  void ProducerLoop() {
    while (!stop_.load()) {
      std::map<std::string, Delta> changes = FreshBatch(next_id_, 8);
      ++submissions_;
      Result<OverloadController::Permit> admitted = controller_.Admit(8);
      if (!admitted.ok()) {
        // Shed: a real client would back off by the retry-after hint;
        // here a short sleep keeps the producers saturating.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_.push_back(
            Pending{std::move(changes), std::move(*admitted)});
      }
      queue_cv_.notify_one();
      // Pace the producers just enough that the queue stays short of
      // pathological: admission, not the queue, is the back-pressure.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void WriterLoop() {
    while (true) {
      Pending pending;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] {
          return stop_.load() || !queue_.empty();
        });
        if (queue_.empty()) return;  // stop_ and drained.
        pending = std::move(queue_.front());
        queue_.pop_front();
      }
      Check(warehouse_->ApplyTransaction(pending.changes));
      pending.permit.Release();  // Frees the admission slot.
    }
  }

  Warehouse* warehouse_;
  OverloadController controller_;
  std::atomic<int64_t> next_id_{1'000'000};
  std::atomic<uint64_t> submissions_{0};
  std::atomic<bool> stop_{false};
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::thread writer_;
  std::vector<std::thread> producers_;
};

double PercentileMs(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(latencies.size() - 1));
  return latencies[index];
}

// state.range(0): index into kConfigs. The timed loop is the query mix
// (roll-up : aux-join at 3:1) while the rig saturates ingest.
void BM_OverloadedServing(benchmark::State& state) {
  const Config& config = kConfigs[state.range(0)];
  state.SetLabel(config.name);

  RetailWarehouse retail = MakeSource();
  WarehouseOptions options;
  if (config.deadline_ms > 0) options.WithQueryDeadline(config.deadline_ms);
  if (config.budget_bytes > 0) {
    options.WithQueryMemoryBudget(config.budget_bytes);
  }
  Warehouse warehouse(options);
  Check(warehouse.AddViewSql(retail.catalog, kViewSql));

  const int producers = config.max_inflight > 0 ? 4 : 1;
  std::vector<double> latencies;
  uint64_t refused_queries = 0;
  uint64_t answered = 0;
  uint64_t shed = 0;
  uint64_t submissions = 0;
  {
    IngestRig rig(&warehouse, config.max_inflight, producers);
    int i = 0;
    for (auto _ : state) {
      const char* sql = (i++ % 4 == 3) ? kAuxJoinSql : kRollupSql;
      const auto start = std::chrono::steady_clock::now();
      Result<Table> answer = warehouse.Query(sql);
      const auto elapsed = std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start);
      latencies.push_back(elapsed.count());
      if (answer.ok()) {
        ++answered;
        benchmark::DoNotOptimize(answer->NumRows());
      } else {
        // Governed refusals (deadline/budget) are the degradation
        // being measured; anything else is a real failure.
        Check(answer.status().code() == StatusCode::kDeadlineExceeded ||
                      answer.status().code() ==
                          StatusCode::kResourceExhausted
                  ? Status::Ok()
                  : answer.status());
        ++refused_queries;
      }
    }
    shed = rig.controller_stats().shed;
    submissions = rig.submissions();
  }

  state.counters["p50_ms"] = PercentileMs(latencies, 0.50);
  state.counters["p99_ms"] = PercentileMs(latencies, 0.99);
  state.counters["shed_rate"] =
      submissions == 0
          ? 0.0
          : static_cast<double>(shed) / static_cast<double>(submissions);
  state.counters["refused_queries"] = static_cast<double>(refused_queries);
  state.counters["answered"] = static_cast<double>(answered);
  const OverloadStats stats = warehouse.overload_stats();
  state.counters["deadline_expiries"] =
      static_cast<double>(stats.deadline_queries);
  state.counters["budget_refusals"] =
      static_cast<double>(stats.budget_refusals);
}

BENCHMARK(BM_OverloadedServing)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
