// Adaptive roll-up lattice costs — what a promoted mini-view buys on
// the read path and costs on the commit path:
//
//   BM_CoarseQueryPromoted   the coarse grouping answered from its
//                            promoted lattice node (a handful of rows)
//   BM_CoarseQueryOnTheFly   lattice off: the same query re-aggregates
//                            the parent's full augmented summary at
//                            plan time — the PR-5 roll-up path
//   BM_ApplyLatticeOn        ingesting a batch with two promoted nodes
//                            folding the summary delta upward
//   BM_ApplyLatticeOff       the same stream with the lattice disabled
//                            — the difference is the per-batch fold
//                            overhead (target: within 10%)
//   BM_SkewedQueryMix        a Zipf/bursty mix of coarse queries
//                            (workload/zipf.h) with the lattice
//                            adapting, vs. the same mix without it
//
// The result cache is off for the query benches so they measure the
// roll-up itself, not a cache hit. google-benchmark harness; wired
// into the CI bench-smoke job.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "maintenance/warehouse.h"
#include "workload/snowflake.h"
#include "workload/zipf.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

// A high-cardinality parent grouping (one group per dim0 row) so the
// on-the-fly roll-up has a real summary to scan; the coarse groupings
// collapse to a handful of rows.
constexpr char kViewSql[] = R"sql(
  CREATE VIEW snow AS
  SELECT dim0.id AS D0, dim1.a AS GroupB, SUM(fact.m1) AS SumM1,
         COUNT(*) AS Cnt, SUM(fact.m2) AS SumM2
  FROM fact, dim0, dim1
  WHERE fact.fk_dim0 = dim0.id AND dim0.fk_dim1 = dim1.id
  GROUP BY dim0.id, dim1.a
)sql";

constexpr char kSnowJoin[] =
    "FROM fact, dim0, dim1 "
    "WHERE fact.fk_dim0 = dim0.id AND dim0.fk_dim1 = dim1.id ";

SnowflakeWarehouse MakeSource() {
  SnowflakeParams params;
  params.depth = 2;
  params.fanout = 1;
  params.fact_rows = 40000;
  params.dim_rows = 4000;
  params.seed = 20260809;
  return Unwrap(GenerateSnowflake(params));
}

std::string CoarseSql() {
  return StrCat("SELECT dim1.a, SUM(fact.m1) AS S, COUNT(*) AS C ",
                kSnowJoin, "GROUP BY dim1.a");
}

std::vector<std::string> CoarsePool() {
  return {
      CoarseSql(),
      StrCat("SELECT SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin),
      StrCat("SELECT dim1.a, SUM(fact.m2) AS S2, AVG(fact.m2) AS A2 ",
             kSnowJoin, "GROUP BY dim1.a"),
      StrCat("SELECT dim1.a, AVG(fact.m1) AS A ", kSnowJoin,
             "GROUP BY dim1.a"),
  };
}

void RunCoarseQuery(benchmark::State& state, bool promoted) {
  SnowflakeWarehouse snowflake = MakeSource();
  Warehouse warehouse(WarehouseOptions{}
                          .WithResultCache(0)
                          .WithLatticeBudget(promoted ? SIZE_MAX : 0));
  Check(warehouse.AddViewSql(snowflake.catalog, kViewSql));
  if (promoted) Check(warehouse.LatticePromote("snow", {"GroupB"}));
  const std::string sql = CoarseSql();
  for (auto _ : state) {
    Table result = Unwrap(warehouse.Query(sql));
    benchmark::DoNotOptimize(result);
  }
  const LatticeStats stats = warehouse.lattice_stats();
  state.counters["lattice_hits"] =
      benchmark::Counter(static_cast<double>(stats.hits));
  state.counters["summary_rows"] = benchmark::Counter(
      static_cast<double>(Unwrap(warehouse.View("snow")).NumRows()));
}

void BM_CoarseQueryPromoted(benchmark::State& state) {
  RunCoarseQuery(state, true);
}
void BM_CoarseQueryOnTheFly(benchmark::State& state) {
  RunCoarseQuery(state, false);
}

// state.range(0): batch size. One iteration = one ingested batch, with
// the scalar and GroupB nodes folding on every commit when the lattice
// is on.
void RunApply(benchmark::State& state, bool lattice) {
  SnowflakeWarehouse snowflake = MakeSource();
  Catalog& source = snowflake.catalog;
  Warehouse warehouse(
      WarehouseOptions{}.WithLatticeBudget(lattice ? SIZE_MAX : 0));
  Check(warehouse.AddViewSql(source, kViewSql));
  if (lattice) {
    Check(warehouse.LatticePromote("snow", {"GroupB"}));
    Check(warehouse.LatticePromote("snow", std::vector<std::string>{}));
  }
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  const Table* fact = Unwrap(source.GetTable("fact"));
  int64_t next_id = static_cast<int64_t>(fact->NumRows()) + 1000000;
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta;
    for (size_t i = 0; i < n; ++i) {
      const Table* dim0 = Unwrap(source.GetTable("dim0"));
      delta.inserts.push_back(
          {Value(next_id++),
           dim0->row(rng.NextBelow(dim0->NumRows()))[0],
           Value(rng.NextInt(0, 9)),
           Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0)});
    }
    Check(ApplyDelta(Unwrap(source.MutableTable("fact")), delta));
    std::map<std::string, Delta> changes;
    changes.emplace("fact", std::move(delta));
    state.ResumeTiming();
    Check(warehouse.ApplyTransaction(changes));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  const LatticeStats stats = warehouse.lattice_stats();
  state.counters["folds"] =
      benchmark::Counter(static_cast<double>(stats.folds));
}

void BM_ApplyLatticeOn(benchmark::State& state) { RunApply(state, true); }
void BM_ApplyLatticeOff(benchmark::State& state) {
  RunApply(state, false);
}

// The adaptive loop end to end: a bursty Zipf query mix heats coarse
// groupings, commits promote them, later draws are answered from the
// nodes. One iteration = one query draw.
void RunSkewedMix(benchmark::State& state, bool lattice) {
  SnowflakeWarehouse snowflake = MakeSource();
  Warehouse warehouse(WarehouseOptions{}
                          .WithResultCache(0)
                          .WithLatticeBudget(lattice ? SIZE_MAX : 0)
                          .WithLatticePromoteHits(2));
  Check(warehouse.AddViewSql(snowflake.catalog, kViewSql));
  const std::vector<std::string> pool = CoarsePool();
  BurstyZipfParams zp;
  zp.num_items = pool.size();
  zp.exponent = 1.2;
  zp.seed = 21;
  BurstyZipfStream picks(zp);
  // Warm-up: heat the pool, then one commit so promotions land.
  for (int i = 0; i < 8; ++i) {
    Table result = Unwrap(warehouse.Query(pool[picks.Next()]));
    benchmark::DoNotOptimize(result);
  }
  Delta delta;
  const Table* dim0 = Unwrap(snowflake.catalog.GetTable("dim0"));
  delta.inserts.push_back({Value(int64_t{99000001}), dim0->row(0)[0],
                           Value(int64_t{3}), Value(4.5)});
  std::map<std::string, Delta> changes;
  changes.emplace("fact", std::move(delta));
  Check(warehouse.ApplyTransaction(changes));

  for (auto _ : state) {
    Table result = Unwrap(warehouse.Query(pool[picks.Next()]));
    benchmark::DoNotOptimize(result);
  }
  const LatticeStats stats = warehouse.lattice_stats();
  state.counters["promotions"] =
      benchmark::Counter(static_cast<double>(stats.promotions));
  state.counters["lattice_hits"] =
      benchmark::Counter(static_cast<double>(stats.hits));
}

void BM_SkewedQueryMixLattice(benchmark::State& state) {
  RunSkewedMix(state, true);
}
void BM_SkewedQueryMixBaseline(benchmark::State& state) {
  RunSkewedMix(state, false);
}

BENCHMARK(BM_CoarseQueryPromoted);
BENCHMARK(BM_CoarseQueryOnTheFly);
BENCHMARK(BM_ApplyLatticeOn)->Arg(64)->Arg(256);
BENCHMARK(BM_ApplyLatticeOff)->Arg(64)->Arg(256);
BENCHMARK(BM_SkewedQueryMixLattice);
BENCHMARK(BM_SkewedQueryMixBaseline);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
