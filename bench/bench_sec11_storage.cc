// E5 — Paper Sec. 1.1 storage analysis: the 13.14-billion-tuple /
// ~245 GB fact table collapses to a ~167 MB auxiliary view.
//
// Part 1 reproduces the paper's arithmetic exactly (analytic, full
// scale). Part 2 materializes scaled-down instances, derives the
// auxiliary views, and checks that the measured reduction tracks the
// model's prediction at every scale.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/strings.h"
#include "maintenance/baselines.h"
#include "maintenance/engine.h"
#include "workload/retail.h"
#include "workload/sizing.h"

int main() {
  using namespace mindetail;  // NOLINT
  using mindetail::bench::Unwrap;

  bench::Header("E5 / Paper Sec. 1.1",
                "storage: fact table vs minimal auxiliary views");

  // Part 1 — the paper's arithmetic at full scale.
  StorageModel model;
  std::cout << model.Report() << "\n";
  std::cout << "Paper reports: 13,140,000,000 fact tuples = 245 GBytes;\n"
            << "auxiliary view 10,950,000 tuples = 167 MBytes.\n\n";

  // Part 2 — measured at laptop scale. The worst case for compression
  // (all products sell every day) is used, matching the paper.
  std::cout << "Measured, scaled-down instances "
               "(daily_distinct_fraction = 1.0, worst case):\n\n";
  std::printf("  %-28s %12s %12s %12s %8s %9s\n", "scale", "fact", "PSJ",
              "minimal", "ratio", "model");

  struct Scale {
    const char* label;
    int64_t days, stores, products, sold, tx;
  };
  // Worst case means every product sells in every store every day
  // (products_sold_per_store_day = products), mirroring the paper's
  // "all 30,000 different products ... sold each day".
  const Scale scales[] = {
      {"days=20 stores=2 p=50", 20, 2, 50, 50, 4},
      {"days=40 stores=4 p=100", 40, 4, 100, 100, 4},
      {"days=60 stores=6 p=200", 60, 6, 200, 200, 5},
  };
  for (const Scale& scale : scales) {
    RetailParams params;
    params.days = scale.days;
    params.stores = scale.stores;
    params.products = scale.products;
    params.products_sold_per_store_day = scale.sold;
    params.transactions_per_product = scale.tx;
    params.daily_distinct_fraction = 1.0;
    RetailWarehouse warehouse = Unwrap(GenerateRetail(params));

    GpsjViewDef def = Unwrap(ProductSalesView(warehouse.catalog));
    SelfMaintenanceEngine engine =
        Unwrap(SelfMaintenanceEngine::Create(warehouse.catalog, def));
    PsjStyleMaintainer psj =
        Unwrap(PsjStyleMaintainer::Create(warehouse.catalog, def));

    const Table* sale = Unwrap(warehouse.catalog.GetTable("sale"));
    const uint64_t fact_bytes = sale->PaperSizeBytes();
    const uint64_t aux_bytes = engine.AuxPaperSizeBytes();
    const uint64_t psj_bytes = psj.DetailPaperSizeBytes();
    const double ratio = static_cast<double>(fact_bytes) /
                         static_cast<double>(aux_bytes);

    // The model's prediction at this scale. Fact aux groups: retained
    // days × distinct products per day; dimension aux views are small
    // but counted in the measurement, so the prediction is a floor.
    StorageModel scaled;
    scaled.days = scale.days;
    scaled.stores = scale.stores;
    scaled.products = scale.products;
    scaled.products_sold_per_store_day = scale.sold;
    scaled.transactions_per_product = scale.tx;
    const double predicted =
        scaled.CompressionFactor(0.5, scale.products);

    std::printf("  %-28s %12s %12s %12s %7.1fx %8.1fx\n", scale.label,
                FormatBytes(fact_bytes).c_str(),
                FormatBytes(psj_bytes).c_str(),
                FormatBytes(aux_bytes).c_str(), ratio, predicted);
  }

  std::cout << "\n(The measured ratio lands below the pure-fact-table "
               "prediction because the\n measured minimal detail also "
               "counts the dimension auxiliary views, which the\n paper "
               "ignores as insignificant.)\n";
  return 0;
}
