// E6 (ablation) — smart duplicate compression vs the fraction of the
// product catalog selling per day. The paper calls "all products sell
// every day" the worst case for compression; this sweep quantifies the
// whole curve: auxiliary size is proportional to the number of distinct
// (day, product) groups, not to the number of transactions.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/bytes.h"
#include "maintenance/engine.h"
#include "workload/retail.h"

int main() {
  using namespace mindetail;  // NOLINT
  using mindetail::bench::Unwrap;

  bench::Header("E6 / ablation",
                "compression ratio vs daily distinct-product fraction");

  std::printf("  %-10s %10s %12s %12s %9s %12s\n", "fraction",
              "fact rows", "aux groups", "fact bytes", "ratio",
              "bytes/txn");

  for (double fraction : {0.02, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    RetailParams params;
    params.days = 20;
    params.stores = 2;
    params.products = 200;
    // Every store walks the whole daily pool, so the number of distinct
    // products selling per day is exactly fraction × products.
    params.products_sold_per_store_day = 200;
    params.transactions_per_product = 2;
    params.daily_distinct_fraction = fraction;
    RetailWarehouse warehouse = Unwrap(GenerateRetail(params));

    GpsjViewDef def = Unwrap(ProductSalesView(warehouse.catalog));
    SelfMaintenanceEngine engine =
        Unwrap(SelfMaintenanceEngine::Create(warehouse.catalog, def));

    const Table* sale = Unwrap(warehouse.catalog.GetTable("sale"));
    const uint64_t fact_bytes = sale->PaperSizeBytes();
    const uint64_t aux_bytes = engine.AuxPaperSizeBytes();
    // Aux groups of the fact table's auxiliary view.
    const size_t groups = engine.AuxContents("sale").NumRows();
    std::printf("  %-10.2f %10zu %12zu %12s %8.1fx %12.3f\n", fraction,
                sale->NumRows(), groups, FormatBytes(fact_bytes).c_str(),
                static_cast<double>(fact_bytes) /
                    static_cast<double>(aux_bytes),
                static_cast<double>(aux_bytes) /
                    static_cast<double>(sale->NumRows()));
  }

  std::cout << "\nReading: the transaction count is constant across rows; "
               "only the number of\ndistinct (day, product) groups grows "
               "with the fraction, and the auxiliary view\nsize follows "
               "it — the paper's storage claim in curve form.\n";
  return 0;
}
