// The network front end under load — what the HTTP layer costs on top
// of the library call, and what the SSE change feed buys over polling.
//
// BM_HttpQuery (argument: concurrent clients, 1/4/16): each client
// owns one keep-alive connection and issues roll-up queries with a
// BurstyZipfStream-driven X-Client-Id, so the rate-limiter table (and
// its LRU) sees the skewed identity mix a real fleet produces. One
// benchmark iteration is a volley of 8 requests per client issued
// concurrently; the harness reports
//
//   p50_ms / p99_ms   per-request latency percentiles over the run
//   req/s             items_per_second (requests completed)
//
// BM_ChangeFeedFanout (argument: 0 = 16 SSE subscribers, 1 = 16
// pollers): one iteration commits 8 batches through POST /ingest and
// waits until every consumer has observed all of them — tailing the
// SSE stream, or re-GETting /changes?poll=1. `polls` counts the
// requests the polling arm needed for the same information, the
// amplification the push feed removes.
//
// google-benchmark timing harness; CI emits BENCH_server.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "maintenance/warehouse.h"
#include "net/http_client.h"
#include "net/server.h"
#include "workload/retail.h"
#include "workload/zipf.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

constexpr char kViewSql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, product.brand, SUM(sale.price) AS TotalPrice,
         COUNT(*) AS Cnt
  FROM sale, time, product
  WHERE sale.timeid = time.id AND sale.productid = product.id
  GROUP BY time.month, product.brand
)sql";

constexpr char kRollupSql[] =
    "SELECT product.brand, SUM(sale.price) AS T, COUNT(*) AS C "
    "FROM sale, time, product "
    "WHERE sale.timeid = time.id AND sale.productid = product.id "
    "GROUP BY product.brand";

RetailWarehouse MakeSource() {
  RetailParams params;
  params.days = 30;
  params.stores = 4;
  params.products = 200;
  params.products_sold_per_store_day = 25;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

double PercentileMs(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(latencies.size() - 1));
  return latencies[index];
}

// state.range(0): concurrent clients.
void BM_HttpQuery(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  RetailWarehouse retail = MakeSource();
  Warehouse warehouse;
  Check(warehouse.AddViewSql(retail.catalog, kViewSql));
  HttpServerOptions options;
  options.num_workers = clients + 2;
  HttpServer server(&warehouse, options);
  Check(server.Start());

  std::vector<std::unique_ptr<HttpConnection>> connections;
  for (int c = 0; c < clients; ++c) {
    auto connection = std::make_unique<HttpConnection>();
    Check(connection->Connect("127.0.0.1", server.port()));
    connections.push_back(std::move(connection));
  }

  constexpr int kVolley = 8;  // Requests per client per iteration.
  std::mutex latencies_mu;
  std::vector<double> latencies;
  uint64_t requests = 0;
  std::atomic<uint64_t> failures{0};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        // Per-thread identity stream: skewed client ids exercise the
        // limiter's hot/cold bucket paths even while it admits all.
        BurstyZipfParams params;
        params.num_items = 64;
        params.seed = 17 + static_cast<uint64_t>(c);
        BurstyZipfStream ids(params);
        std::vector<double> local;
        local.reserve(kVolley);
        for (int i = 0; i < kVolley; ++i) {
          const std::map<std::string, std::string> headers = {
              {"X-Client-Id", StrCat("client-", ids.Next())}};
          const auto start = std::chrono::steady_clock::now();
          Result<ClientResponse> response = connections[c]->Request(
              "POST", "/query", headers, kRollupSql);
          const auto elapsed = std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start);
          if (!response.ok() || (*response).code != 200) {
            failures.fetch_add(1);
            continue;
          }
          local.push_back(elapsed.count());
        }
        std::lock_guard<std::mutex> lock(latencies_mu);
        latencies.insert(latencies.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : threads) t.join();
    requests += static_cast<uint64_t>(clients) * kVolley;
  }
  Check(failures.load() == 0
            ? Status::Ok()
            : InternalError(StrCat(failures.load(), " requests failed")));
  state.SetItemsProcessed(static_cast<int64_t>(requests));
  state.counters["p50_ms"] = PercentileMs(latencies, 0.50);
  state.counters["p99_ms"] = PercentileMs(latencies, 0.99);
}

// One insert-only batch in the /ingest wire format, ids unique so
// content-hash dedup never folds two batches together.
std::string IngestBody(std::atomic<int64_t>& next_id, int rows) {
  std::string body = "table sale\n";
  for (int i = 0; i < rows; ++i) {
    const int64_t id = next_id.fetch_add(1);
    body += StrCat("+ ", id, ",", 1 + id % 30, ",", 1 + id % 200, ",",
                   1 + id % 4, ",", 5 + id % 40, "\n");
  }
  return body;
}

// state.range(0): 0 = SSE subscribers tail pushes, 1 = pollers re-GET.
void BM_ChangeFeedFanout(benchmark::State& state) {
  constexpr int kConsumers = 16;
  constexpr int kBatchesPerIteration = 8;
  const bool polling = state.range(0) == 1;
  state.SetLabel(polling ? "16_pollers" : "16_sse_subscribers");

  RetailWarehouse retail = MakeSource();
  Warehouse warehouse;
  Check(warehouse.AddViewSql(retail.catalog, kViewSql));
  HttpServerOptions options;
  options.num_workers = kConsumers + 4;
  options.max_connections = kConsumers + 8;
  HttpServer server(&warehouse, options);
  Check(server.Start());
  const int port = server.port();

  // Every consumer publishes the newest version it has observed; the
  // timed loop commits and then waits for all of them to catch up.
  std::vector<std::atomic<uint64_t>> seen(kConsumers);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> polls{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    if (polling) {
      consumers.emplace_back([&, c] {
        HttpConnection connection;
        if (!connection.Connect("127.0.0.1", port).ok()) return;
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t from = seen[c].load(std::memory_order_relaxed);
          Result<ClientResponse> response = connection.Request(
              "GET", StrCat("/changes?poll=1&from=", from));
          polls.fetch_add(1, std::memory_order_relaxed);
          if (!response.ok()) {
            if (!connection.Connect("127.0.0.1", port).ok()) return;
            continue;
          }
          // First line: "current <version>".
          const std::string& body = (*response).body;
          if (body.rfind("current ", 0) == 0) {
            seen[c].store(
                std::strtoull(body.c_str() + 8, nullptr, 10),
                std::memory_order_relaxed);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    } else {
      consumers.emplace_back([&, c] {
        SseClient client;
        if (!client.Open("127.0.0.1", port, "/changes?from=0").ok()) {
          return;
        }
        while (!stop.load(std::memory_order_relaxed)) {
          Result<SseEvent> event = client.Next();
          if (!event.ok()) return;  // Server stopped.
          if ((*event).comment || (*event).event != "commit") continue;
          seen[c].store(std::strtoull((*event).id.c_str(), nullptr, 10),
                        std::memory_order_relaxed);
        }
      });
    }
  }

  std::atomic<int64_t> next_id{10'000'000};
  HttpConnection ingest;
  Check(ingest.Connect("127.0.0.1", port));
  uint64_t deliveries = 0;
  for (auto _ : state) {
    for (int b = 0; b < kBatchesPerIteration; ++b) {
      Result<ClientResponse> response = ingest.Request(
          "POST", "/ingest", {}, IngestBody(next_id, 4));
      Check(response.ok() && (*response).code == 200
                ? Status::Ok()
                : InternalError("ingest failed"));
    }
    const uint64_t target = warehouse.last_sequence();
    for (int c = 0; c < kConsumers; ++c) {
      while (seen[c].load(std::memory_order_relaxed) < target) {
        std::this_thread::yield();
      }
    }
    deliveries +=
        static_cast<uint64_t>(kConsumers) * kBatchesPerIteration;
  }
  stop.store(true);
  server.Stop();  // Ends the SSE streams; pollers see stop.
  for (std::thread& t : consumers) t.join();

  // Commits delivered to consumers per second (push or poll).
  state.SetItemsProcessed(static_cast<int64_t>(deliveries));
  if (polling) {
    state.counters["polls"] = static_cast<double>(polls.load());
  }
}

BENCHMARK(BM_HttpQuery)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ChangeFeedFanout)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
