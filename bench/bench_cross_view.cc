// Cross-view parallel maintenance scaling: one mixed fact batch fanned
// out across four independent summary views of the same snowflake, at
// 1/2/4 warehouse view threads (engines stay single-threaded so the
// curve isolates the cross-view level). The warehouse guarantees
// results bit-identical to the serial apply at every parallelism, so
// this harness measures latency only. items/s is delta rows per
// second; compare the same batch size across view-thread counts for
// the scaling curve.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gpsj/builder.h"
#include "maintenance/warehouse.h"
#include "relational/delta.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

SnowflakeWarehouse MakeSource() {
  SnowflakeParams params;
  params.depth = 2;
  params.fanout = 2;
  params.fact_rows = 20000;
  params.dim_rows = 60;
  params.seed = 23;
  return Unwrap(GenerateSnowflake(params));
}

// Four views over the full snowflake join, each grouping by a
// different dimension attribute so every engine maintains its own
// compressed auxiliary views and summary.
GpsjViewDef MakeView(const SnowflakeWarehouse& warehouse, size_t index) {
  GpsjViewBuilder builder(StrCat("cross_view_", index));
  builder.From(warehouse.fact);
  for (const std::string& dim : warehouse.dims) {
    builder.From(dim);
    builder.Join(warehouse.parent.at(dim), warehouse.link_attr.at(dim),
                 dim);
  }
  const std::string& group_dim =
      warehouse.dims[index % warehouse.dims.size()];
  builder.GroupBy(group_dim, "a", "GroupA");
  builder.GroupBy(group_dim, "b", "GroupB");
  builder.CountStar("Cnt");
  builder.Sum(warehouse.fact, "m1", "SumM1");
  builder.Sum(warehouse.fact, "m2", "SumM2");
  builder.Avg(warehouse.fact, "m2", "AvgM2");
  return Unwrap(builder.Build(warehouse.catalog));
}

// One mixed root batch: half inserts (referencing existing dimension
// rows), a quarter deletes, a quarter updates.
Delta MakeRootBatch(const SnowflakeWarehouse& warehouse,
                    const Catalog& source, Rng& rng, size_t batch) {
  Delta delta;
  const Table* fact = *source.GetTable(warehouse.fact);
  int64_t next_id = 0;
  for (const Tuple& row : fact->rows()) {
    next_id = std::max(next_id, row[0].AsInt64());
  }
  ++next_id;
  const size_t fk_count = fact->schema().size() - 3;  // id, …, m1, m2.
  for (size_t i = 0; i < batch / 2; ++i) {
    Tuple row = {Value(next_id++)};
    for (size_t f = 0; f < fk_count; ++f) {
      const std::string fk_attr = fact->schema().attribute(1 + f).name;
      const std::string dim = fk_attr.substr(3);  // strip "fk_".
      const Table* dim_table = *source.GetTable(dim);
      row.push_back(
          dim_table->row(rng.NextBelow(dim_table->NumRows()))[0]);
    }
    row.push_back(Value(rng.NextInt(0, 9)));
    row.push_back(Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0));
    delta.inserts.push_back(std::move(row));
  }
  std::set<int64_t> touched;
  for (size_t i = 0; i < batch / 4 && fact->NumRows() > 0; ++i) {
    const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    delta.deletes.push_back(row);
  }
  for (size_t i = 0; i < batch / 4 && fact->NumRows() > 0; ++i) {
    const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    Tuple after = row;
    after[after.size() - 2] = Value(rng.NextInt(0, 9));
    after[after.size() - 1] =
        Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0);
    delta.updates.push_back(Update{row, std::move(after)});
  }
  return delta;
}

// state.range(0): warehouse view threads; state.range(1): batch size.
void BM_CrossViewRootDelta(benchmark::State& state) {
  SnowflakeWarehouse snowflake = MakeSource();
  Catalog& source = snowflake.catalog;
  Warehouse warehouse(WarehouseOptions{}.WithParallelism(
      static_cast<int>(state.range(0))));
  constexpr size_t kViews = 4;
  for (size_t i = 0; i < kViews; ++i) {
    Check(warehouse.AddView(source, MakeView(snowflake, i)));
  }
  Rng rng(4321);
  const size_t batch = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = MakeRootBatch(snowflake, source, rng, batch);
    Check(ApplyDelta(Unwrap(source.MutableTable(snowflake.fact)), delta));
    state.ResumeTiming();
    Check(warehouse.Apply(snowflake.fact, delta));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
  state.counters["view_threads"] = static_cast<double>(state.range(0));
  state.counters["views"] = static_cast<double>(kViews);
}

BENCHMARK(BM_CrossViewRootDelta)
    ->ArgsProduct({{1, 2, 4}, {1024, 4096}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
