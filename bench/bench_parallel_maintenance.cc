// Parallel sharded maintenance scaling: the same mixed fact (root)
// batches against a snowflake view at 1/2/4/8 maintenance threads.
// items/s is delta rows per second; compare the same batch size across
// thread counts for the scaling curve. The engine guarantees results
// identical to the serial path at every thread count, so this harness
// measures latency only.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "gpsj/builder.h"
#include "maintenance/engine.h"
#include "relational/delta.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

SnowflakeWarehouse MakeWarehouse() {
  SnowflakeParams params;
  params.depth = 2;
  params.fanout = 2;
  params.fact_rows = 20000;
  params.dim_rows = 60;
  params.seed = 17;
  return Unwrap(GenerateSnowflake(params));
}

// Group by the near and far dimensions, aggregate the fact measures —
// the compressed root auxiliary view the sharded path partitions.
GpsjViewDef MakeView(const SnowflakeWarehouse& warehouse) {
  GpsjViewBuilder builder("parallel_bench_view");
  builder.From(warehouse.fact);
  for (const std::string& dim : warehouse.dims) {
    builder.From(dim);
    builder.Join(warehouse.parent.at(dim), warehouse.link_attr.at(dim),
                 dim);
  }
  builder.GroupBy(warehouse.dims.front(), "a", "GroupA");
  builder.GroupBy(warehouse.dims.back(), "a", "GroupB");
  builder.CountStar("Cnt");
  builder.Sum(warehouse.fact, "m1", "SumM1");
  builder.Sum(warehouse.fact, "m2", "SumM2");
  builder.Avg(warehouse.fact, "m2", "AvgM2");
  return Unwrap(builder.Build(warehouse.catalog));
}

// One mixed root batch: half inserts (referencing existing dimension
// rows), a quarter deletes, a quarter updates, drawn from the current
// source state.
Delta MakeRootBatch(const SnowflakeWarehouse& warehouse,
                    const Catalog& source, Rng& rng, size_t batch) {
  Delta delta;
  const Table* fact = *source.GetTable(warehouse.fact);
  int64_t next_id = 0;
  for (const Tuple& row : fact->rows()) {
    next_id = std::max(next_id, row[0].AsInt64());
  }
  ++next_id;
  const size_t fk_count = fact->schema().size() - 3;  // id, …, m1, m2.
  for (size_t i = 0; i < batch / 2; ++i) {
    Tuple row = {Value(next_id++)};
    for (size_t f = 0; f < fk_count; ++f) {
      const std::string fk_attr = fact->schema().attribute(1 + f).name;
      const std::string dim = fk_attr.substr(3);  // strip "fk_".
      const Table* dim_table = *source.GetTable(dim);
      row.push_back(
          dim_table->row(rng.NextBelow(dim_table->NumRows()))[0]);
    }
    row.push_back(Value(rng.NextInt(0, 9)));
    row.push_back(Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0));
    delta.inserts.push_back(std::move(row));
  }
  std::set<int64_t> touched;
  for (size_t i = 0; i < batch / 4 && fact->NumRows() > 0; ++i) {
    const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    delta.deletes.push_back(row);
  }
  for (size_t i = 0; i < batch / 4 && fact->NumRows() > 0; ++i) {
    const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    Tuple after = row;
    after[after.size() - 2] = Value(rng.NextInt(0, 9));
    after[after.size() - 1] =
        Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0);
    delta.updates.push_back(Update{row, std::move(after)});
  }
  return delta;
}

// state.range(0): maintenance threads; state.range(1): batch size.
void BM_ParallelRootDelta(benchmark::State& state) {
  SnowflakeWarehouse warehouse = MakeWarehouse();
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = MakeView(warehouse);
  EngineOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, def, options));
  Rng rng(1234);
  const size_t batch = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = MakeRootBatch(warehouse, source, rng, batch);
    Check(ApplyDelta(Unwrap(source.MutableTable(warehouse.fact)), delta));
    state.ResumeTiming();
    Check(engine.Apply(warehouse.fact, delta));
    benchmark::DoNotOptimize(Unwrap(engine.View()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
  state.counters["threads"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_ParallelRootDelta)
    ->ArgsProduct({{1, 2, 4, 8}, {1024, 4096}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
