// E10 (extension) — the insert-only relaxation for append-only detail
// data (paper Sec. 4 future work, implemented here): MIN/MAX become
// compressible and incrementally maintainable, shrinking the auxiliary
// views (no per-value grouping) and removing the recompute path.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/bytes.h"
#include "gpsj/builder.h"
#include "maintenance/engine.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

RetailWarehouse MakeWarehouse(bool append_only) {
  RetailParams params;
  params.days = 40;
  params.stores = 4;
  params.products = 300;
  params.products_sold_per_store_day = 30;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  RetailWarehouse warehouse = Unwrap(GenerateRetail(params));
  if (append_only) {
    for (const char* table : {"sale", "time", "product", "store"}) {
      Check(warehouse.catalog.SetAppendOnly(table, true));
    }
  }
  return warehouse;
}

GpsjViewDef MinMaxByCategoryView(const Catalog& catalog) {
  GpsjViewBuilder builder("minmax_by_category");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("product", "category", "Category")
      .Min("sale", "price", "MinPrice")
      .Max("sale", "price", "MaxPrice")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt");
  return Unwrap(builder.Build(catalog));
}

// state.range(0): 1 = append-only (relaxed), 0 = standard. Insert-only
// streams in both regimes for a fair comparison.
void BM_MinMaxInsertStream(benchmark::State& state) {
  RetailWarehouse warehouse = MakeWarehouse(state.range(0) == 1);
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = MinMaxByCategoryView(source);
  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, def));
  RetailDeltaGenerator gen(17);
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.SaleInsertions(source, 256));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(engine.Apply("sale", delta));
    benchmark::DoNotOptimize(Unwrap(engine.View()));
  }
  state.counters["detail_bytes"] =
      static_cast<double>(engine.AuxPaperSizeBytes());
  state.counters["fact_aux_rows"] =
      engine.HasAux("sale")
          ? static_cast<double>(engine.AuxContents("sale").NumRows())
          : 0.0;
  state.counters["group_recomputes"] =
      static_cast<double>(engine.stats().group_recomputes);
}

BENCHMARK(BM_MinMaxInsertStream)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void StorageReport() {
  bench::Header("E10 / extension",
                "insert-only relaxation for append-only detail data");
  RetailWarehouse standard = MakeWarehouse(false);
  RetailWarehouse relaxed = MakeWarehouse(true);
  SelfMaintenanceEngine standard_engine = Unwrap(
      SelfMaintenanceEngine::Create(standard.catalog,
                                    MinMaxByCategoryView(standard.catalog)));
  SelfMaintenanceEngine relaxed_engine = Unwrap(
      SelfMaintenanceEngine::Create(relaxed.catalog,
                                    MinMaxByCategoryView(relaxed.catalog)));
  std::printf(
      "  standard classification: %s detail, fact aux %zu rows\n"
      "    (MIN/MAX force `price` to stay plain: one group per\n"
      "     (productid, price) pair, plus recompute on every change)\n",
      FormatBytes(standard_engine.AuxPaperSizeBytes()).c_str(),
      standard_engine.AuxContents("sale").NumRows());
  std::printf(
      "  insert-only relaxation:  %s detail, fact aux %zu rows\n"
      "    (price folds into sum/min/max columns grouped by productid;\n"
      "     maintenance is purely incremental)\n\n",
      FormatBytes(relaxed_engine.AuxPaperSizeBytes()).c_str(),
      relaxed_engine.AuxContents("sale").NumRows());
}

}  // namespace
}  // namespace mindetail

int main(int argc, char** argv) {
  mindetail::StorageReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
