// E1 — Paper Table 1: classification of the SQL aggregates as SMA/SMAS
// with respect to insertions and deletions. The classification is
// printed from the library and then *verified empirically*: for each
// aggregate we either confirm that naive incremental maintenance tracks
// recomputation over a random stream, or exhibit the counterexample
// that proves self-maintenance impossible.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>

#include "bench_util.h"
#include "common/rng.h"
#include "gpsj/aggregate.h"

namespace mindetail {
namespace {

void PrintPaperTable() {
  std::cout << "Paper Table 1 (as derived by the library):\n";
  std::cout << "  Aggregate | SMA       | SMAS\n";
  std::cout << "  ----------+-----------+---------------------------------\n";
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMax}) {
    std::cout << "  " << Table1Row(fn) << "\n";
  }
  std::cout << "\nClassification predicates:\n";
  struct Row {
    const char* name;
    AggFn fn;
  };
  for (const Row& row : {Row{"COUNT", AggFn::kCount},
                         Row{"SUM", AggFn::kSum}, Row{"AVG", AggFn::kAvg},
                         Row{"MIN", AggFn::kMin}, Row{"MAX", AggFn::kMax}}) {
    std::printf("  %-5s  SMA(+)=%d SMA(-)=%d SMAS(-)=%d CSMAS=%d\n",
                row.name, IsSmaUnderInsert(row.fn, false),
                IsSmaUnderDelete(row.fn, false),
                IsSmasUnderDelete(row.fn, false),
                IsCsmasFn(row.fn, false));
  }
}

// Replays a random insert/delete stream, maintaining COUNT and SUM
// incrementally and MIN via the insert-only rule; reports whether each
// tracked recomputation.
void EmpiricalConfirmation() {
  std::cout << "\nEmpirical confirmation over a random stream "
               "(1000 operations):\n";
  Rng rng(1234);
  std::multiset<long> bag;
  long long running_count = 0;
  long long running_sum = 0;
  bool count_ok = true;
  bool sum_with_count_ok = true;
  for (int op = 0; op < 1000; ++op) {
    if (bag.empty() || rng.NextBool(0.6)) {
      const long v = static_cast<long>(rng.NextInt(-50, 50));
      bag.insert(v);
      running_count += 1;
      running_sum += v;
    } else {
      auto it = bag.begin();
      std::advance(it, rng.NextBelow(bag.size()));
      running_sum -= *it;
      running_count -= 1;
      bag.erase(it);
    }
    // Recompute ground truth.
    long long true_sum = 0;
    for (long v : bag) true_sum += v;
    count_ok &= running_count == static_cast<long long>(bag.size());
    // SUM is trustworthy only when COUNT certifies non-emptiness.
    if (running_count > 0) sum_with_count_ok &= running_sum == true_sum;
  }
  std::printf("  COUNT incremental == recomputed:           %s\n",
              count_ok ? "PASS" : "FAIL");
  std::printf("  SUM (with COUNT) incremental == recomputed: %s\n",
              sum_with_count_ok ? "PASS" : "FAIL");
}

// AVG is not a SMA: two states with the same AVG but different contents
// respond differently to the same insertion.
void AvgCounterexample() {
  std::cout << "\nAVG is not a SMA — counterexample:\n";
  std::cout << "  state A = {4}      : AVG = 4.0\n";
  std::cout << "  state B = {4, 4}   : AVG = 4.0   (same old value)\n";
  std::cout << "  insert 7 into both (same change):\n";
  std::printf("  new AVG(A) = %.2f, new AVG(B) = %.2f  -> old value + "
              "change do not determine the new value\n",
              (4 + 7) / 2.0, (4 + 4 + 7) / 3.0);
}

// MIN/MAX are not deletion-maintainable: two states with the same MIN
// respond differently to the same deletion.
void MinCounterexample() {
  std::cout << "\nMIN/MAX are not SMAs under deletion — counterexample:\n";
  std::cout << "  state A = {1, 5}, state B = {1, 9}: MIN = 1 in both\n";
  std::cout << "  delete 1 from both: new MIN(A) = 5, new MIN(B) = 9\n";
  std::cout << "  -> after a deletion of the current minimum, the new\n";
  std::cout << "     minimum must be recomputed from detail data.\n";

  // And the insert-only rule does work:
  Rng rng(99);
  long current_min = 1 << 30;
  std::multiset<long> bag;
  bool ok = true;
  for (int i = 0; i < 500; ++i) {
    const long v = static_cast<long>(rng.NextInt(-1000, 1000));
    bag.insert(v);
    current_min = std::min(current_min, v);
    ok &= current_min == *bag.begin();
  }
  std::printf("  MIN under insertions only (SMA +): %s\n",
              ok ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace mindetail

int main() {
  mindetail::bench::Header("E1 / Paper Table 1",
                           "SMA and SMAS classification of SQL aggregates");
  mindetail::PrintPaperTable();
  mindetail::EmpiricalConfirmation();
  mindetail::AvgCounterexample();
  mindetail::MinCounterexample();
  return 0;
}
