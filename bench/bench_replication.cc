// Replication costs — what log shipping adds on top of leader
// durability: follower catch-up throughput from a cold start (bootstrap
// install + WAL backlog replay, frames/sec) and the steady-state
// ship/replay round trip (one leader batch → follower caught up, with
// the post-round snapshot lag reported as a counter — it must be 0).
// google-benchmark timing harness.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "maintenance/warehouse.h"
#include "replication/follower.h"
#include "replication/health.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;
using replication::Follower;
using replication::HealthMonitor;
using replication::HealthOptions;

constexpr char kViewSql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

RetailWarehouse MakeSource() {
  RetailParams params;
  params.days = 40;
  params.stores = 4;
  params.products = 300;
  params.products_sold_per_store_day = 30;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// state.range(0): WAL backlog depth in frames. One iteration = one
// cold follower catching up through checkpoint install + full replay.
void BM_FollowerCatchUp(benchmark::State& state) {
  RetailWarehouse retail = MakeSource();
  Catalog& source = retail.catalog;
  const std::string leader_dir =
      FreshDir(StrCat("mindetail_bench_repl_leader_", state.range(0)));
  Warehouse leader = Unwrap(Warehouse::Open(leader_dir));
  Check(leader.AddViewSql(source, kViewSql));
  RetailDeltaGenerator gen(7);
  const int backlog = static_cast<int>(state.range(0));
  for (int i = 0; i < backlog; ++i) {
    Delta delta = Unwrap(gen.MixedSaleBatch(source, 12, 6, 3));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    Check(leader.Apply("sale", delta));
  }
  const std::string follower_dir =
      FreshDir(StrCat("mindetail_bench_repl_follower_", state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(follower_dir);
    state.ResumeTiming();
    Follower follower = Unwrap(Follower::Open(leader_dir, follower_dir));
    Follower::Progress progress = Unwrap(follower.CatchUp());
    benchmark::DoNotOptimize(progress);
    Check(follower.applied_sequence() == leader.last_sequence()
              ? Status::Ok()
              : InternalError("follower did not catch up"));
  }
  state.SetItemsProcessed(state.iterations() * backlog);
  std::filesystem::remove_all(leader_dir);
  std::filesystem::remove_all(follower_dir);
}

// One iteration = one leader batch shipped and replayed, driven by the
// health monitor (so the measured path is the production one: Tick →
// CatchUp → ApplyReplicated → snapshot publish). The lag counter is
// the follower's snapshot staleness after the round — 0 when shipping
// keeps up within the round.
void BM_SteadyStateShipReplay(benchmark::State& state) {
  RetailWarehouse retail = MakeSource();
  Catalog& source = retail.catalog;
  const std::string leader_dir =
      FreshDir("mindetail_bench_repl_steady_leader");
  const std::string follower_dir =
      FreshDir("mindetail_bench_repl_steady_follower");
  Warehouse leader = Unwrap(Warehouse::Open(leader_dir));
  Check(leader.AddViewSql(source, kViewSql));
  Follower follower = Unwrap(Follower::Open(leader_dir, follower_dir));
  HealthMonitor monitor((HealthOptions()));
  monitor.Register("bench", &follower);
  monitor.Tick(leader.last_sequence());

  RetailDeltaGenerator gen(7);
  uint64_t lag_sum = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, 12, 6, 3));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(leader.Apply("sale", delta));
    monitor.Tick(leader.last_sequence());
    lag_sum += monitor.Find("bench")->lag;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["snapshot_lag"] = benchmark::Counter(
      static_cast<double>(lag_sum), benchmark::Counter::kAvgIterations);
  std::filesystem::remove_all(leader_dir);
  std::filesystem::remove_all(follower_dir);
}

BENCHMARK(BM_FollowerCatchUp)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SteadyStateShipReplay)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
