// Shared helpers for the benchmark/reproduction binaries.

#ifndef MINDETAIL_BENCH_BENCH_UTIL_H_
#define MINDETAIL_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>

#include "common/result.h"
#include "common/status.h"

namespace mindetail {
namespace bench {

inline void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "FATAL: " << status << "\n";
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "FATAL: " << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

inline void Header(const char* experiment, const char* title) {
  std::cout << "\n============================================================"
            << "\n " << experiment << ": " << title
            << "\n============================================================"
            << "\n";
}

}  // namespace bench
}  // namespace mindetail

#endif  // MINDETAIL_BENCH_BENCH_UTIL_H_
