// E11 (extension) — the size estimator vs reality: predicted auxiliary
// rows/bytes from table statistics against materialized sizes, across
// scales and distinct-fraction settings (the design-time form of the
// paper's Sec. 1.1 sizing argument).

#include <cstdio>

#include "bench_util.h"
#include "common/bytes.h"
#include "core/estimate.h"
#include "maintenance/engine.h"
#include "workload/retail.h"

int main() {
  using namespace mindetail;  // NOLINT
  using mindetail::bench::Unwrap;

  bench::Header("E11 / extension",
                "predicted vs measured auxiliary-view sizes");
  std::printf("  %-34s %12s %12s %8s\n", "workload", "predicted",
              "measured", "ratio");

  struct Config {
    const char* label;
    int64_t days, stores, products, sold;
    double fraction;
  };
  const Config configs[] = {
      {"worst case, small", 20, 2, 50, 50, 1.0},
      {"worst case, medium", 40, 4, 100, 100, 1.0},
      {"sparse days (10% distinct)", 40, 4, 200, 200, 0.1},
      {"half distinct", 40, 4, 200, 200, 0.5},
  };
  for (const Config& config : configs) {
    RetailParams params;
    params.days = config.days;
    params.stores = config.stores;
    params.products = config.products;
    params.products_sold_per_store_day = config.sold;
    params.transactions_per_product = 3;
    params.daily_distinct_fraction = config.fraction;
    RetailWarehouse warehouse = Unwrap(GenerateRetail(params));

    GpsjViewDef def = Unwrap(ProductSalesView(warehouse.catalog));
    Derivation derivation =
        Unwrap(Derivation::Derive(def, warehouse.catalog));
    auto stats = Unwrap(ComputeAllStats(warehouse.catalog, derivation));
    const uint64_t predicted =
        Unwrap(EstimateTotalDetailBytes(derivation, stats));

    SelfMaintenanceEngine engine =
        Unwrap(SelfMaintenanceEngine::Create(warehouse.catalog, def));
    const uint64_t measured = engine.AuxPaperSizeBytes();

    std::printf("  %-34s %12s %12s %7.2fx\n", config.label,
                FormatBytes(predicted).c_str(),
                FormatBytes(measured).c_str(),
                static_cast<double>(predicted) /
                    static_cast<double>(measured));
  }
  std::printf(
      "\nReading: the independence-assumption estimate tracks reality "
      "closely on the\nworst case and over-predicts when per-day distinct "
      "products are capped below\nthe independence bound — the usual "
      "bias direction for group-count estimates.\n");
  return 0;
}
