// E7 (ablation) — maintenance cost: minimal-detail self-maintenance vs
// PSJ-style detail vs full recomputation from replicas, across batch
// sizes and view shapes. google-benchmark timing harness.
//
// Each iteration applies one mixed fact batch and refreshes the view
// (the engine's view render is incremental; the baselines recompute).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "maintenance/baselines.h"
#include "maintenance/engine.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

RetailWarehouse MakeWarehouse() {
  RetailParams params;
  params.days = 40;
  params.stores = 4;
  params.products = 300;
  params.products_sold_per_store_day = 30;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

GpsjViewDef MakeView(const Catalog& catalog, bool with_distinct) {
  return with_distinct ? Unwrap(ProductSalesView(catalog))
                       : Unwrap(ProductSalesCsmasView(catalog));
}

// state.range(0): batch size; state.range(1): 1 = with DISTINCT.
void BM_SelfMaintenance(benchmark::State& state) {
  RetailWarehouse warehouse = MakeWarehouse();
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = MakeView(source, state.range(1) == 1);
  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, def));
  RetailDeltaGenerator gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(engine.Apply("sale", delta));
    benchmark::DoNotOptimize(Unwrap(engine.View()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n));
}

void BM_PsjStyle(benchmark::State& state) {
  RetailWarehouse warehouse = MakeWarehouse();
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = MakeView(source, state.range(1) == 1);
  PsjStyleMaintainer maintainer =
      Unwrap(PsjStyleMaintainer::Create(source, def));
  RetailDeltaGenerator gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(maintainer.Apply("sale", delta));
    benchmark::DoNotOptimize(Unwrap(maintainer.View()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n));
}

void BM_FullRecompute(benchmark::State& state) {
  RetailWarehouse warehouse = MakeWarehouse();
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = MakeView(source, state.range(1) == 1);
  FullReplicationMaintainer maintainer =
      Unwrap(FullReplicationMaintainer::Create(source, def));
  RetailDeltaGenerator gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(maintainer.Apply("sale", delta));
    benchmark::DoNotOptimize(Unwrap(maintainer.View()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n));
}

// Dimension churn: brand updates (protected updates through the delta
// join) — the path full recomputation pays the whole view for.
void BM_SelfMaintenanceDimUpdates(benchmark::State& state) {
  RetailWarehouse warehouse = MakeWarehouse();
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = Unwrap(ProductSalesView(source));
  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, def));
  RetailDeltaGenerator gen(11);
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.ProductBrandUpdates(source, 8));
    Check(ApplyDelta(Unwrap(source.MutableTable("product")), delta));
    state.ResumeTiming();
    Check(engine.Apply("product", delta));
    benchmark::DoNotOptimize(Unwrap(engine.View()));
  }
}

// Need-based delta-join pruning ablation: the same fact batches with
// pruning disabled (every auxiliary view joins into every delta).
// Compare against BM_SelfMaintenance/N/1 — with pruning, the CSMAS
// delta join skips the product auxiliary view, which only feeds the
// DISTINCT output.
void BM_SelfMaintenanceUnpruned(benchmark::State& state) {
  RetailWarehouse warehouse = MakeWarehouse();
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = MakeView(source, /*with_distinct=*/true);
  EngineOptions options;
  options.prune_delta_joins = false;
  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, def, options));
  RetailDeltaGenerator gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(engine.Apply("sale", delta));
    benchmark::DoNotOptimize(Unwrap(engine.View()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

BENCHMARK(BM_SelfMaintenance)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelfMaintenanceUnpruned)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PsjStyle)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullRecompute)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelfMaintenanceDimUpdates)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
