// E8 (ablation) — auxiliary-view elimination (paper Sec. 3.3): for a
// key-grouped view, compare the engine with the fact auxiliary view
// eliminated (the paper's algorithm) against the same engine with
// elimination disabled. Storage drops to the dimension views alone and
// maintenance skips the fact-view upkeep.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/bytes.h"
#include "maintenance/engine.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

RetailWarehouse MakeWarehouse() {
  RetailParams params;
  params.days = 40;
  params.stores = 4;
  params.products = 300;
  params.products_sold_per_store_day = 30;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

// state.range(0): 1 = allow elimination (the paper), 0 = ablated.
void BM_KeyGroupedMaintenance(benchmark::State& state) {
  RetailWarehouse warehouse = MakeWarehouse();
  Catalog& source = warehouse.catalog;
  GpsjViewDef def = Unwrap(SalesByProductKeyView(source));
  EngineOptions options;
  options.derive.allow_elimination = state.range(0) == 1;
  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, def, options));
  RetailDeltaGenerator gen(5);
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, 128, 64, 32));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(engine.Apply("sale", delta));
    benchmark::DoNotOptimize(Unwrap(engine.View()));
  }
  state.counters["detail_bytes"] =
      static_cast<double>(engine.AuxPaperSizeBytes());
  state.counters["fact_aux_rows"] =
      engine.HasAux("sale")
          ? static_cast<double>(engine.AuxContents("sale").NumRows())
          : 0.0;
}

BENCHMARK(BM_KeyGroupedMaintenance)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// A one-shot storage report printed before the timing runs.
void StorageReport() {
  RetailWarehouse warehouse = MakeWarehouse();
  GpsjViewDef def = Unwrap(SalesByProductKeyView(warehouse.catalog));
  EngineOptions eliminated;
  EngineOptions ablated;
  ablated.derive.allow_elimination = false;
  SelfMaintenanceEngine with = Unwrap(
      SelfMaintenanceEngine::Create(warehouse.catalog, def, eliminated));
  SelfMaintenanceEngine without = Unwrap(
      SelfMaintenanceEngine::Create(warehouse.catalog, def, ablated));
  const Table* sale = Unwrap(warehouse.catalog.GetTable("sale"));
  bench::Header("E8 / ablation",
                "auxiliary-view elimination for the key-grouped view");
  std::printf("  raw fact table:            %s (%zu rows)\n",
              FormatBytes(sale->PaperSizeBytes()).c_str(),
              sale->NumRows());
  std::printf("  detail, elimination OFF:   %s (fact aux %zu rows)\n",
              FormatBytes(without.AuxPaperSizeBytes()).c_str(),
              without.AuxContents("sale").NumRows());
  std::printf("  detail, elimination ON:    %s (fact aux OMITTED — the\n"
              "                             dimension views are all the "
              "warehouse stores)\n\n",
              FormatBytes(with.AuxPaperSizeBytes()).c_str());
}

}  // namespace
}  // namespace mindetail

int main(int argc, char** argv) {
  mindetail::StorageReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
