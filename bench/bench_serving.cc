// Serving-layer costs — what the snapshot read path, the roll-up
// planner, and the result cache buy and cost. Four comparisons:
//
//   BM_View            snapshot-backed View(): a shared_ptr pin plus
//                      one Table copy, independent of view size churn
//   BM_ViewLegacy      serving disabled: View() renders the summary
//                      from scratch on every call (the old behaviour)
//   BM_QueryCached     repeated ad-hoc roll-up with the result cache
//                      on — steady state is a cache hit
//   BM_QueryUncached   cache capacity 0: every call plans and executes
//                      the roll-up against the summary snapshot
//   BM_QueryDirect     the same query evaluated from base tables with
//                      EvaluateGpsj — what answering without any
//                      materialized view would cost
//   BM_ApplyServing    ingesting a batch with snapshot publication on
//   BM_ApplyNoServing  the same stream with serving disabled — the
//                      difference is the per-batch publication cost
//
// google-benchmark harness; wired into the CI bench-smoke job.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_util.h"
#include "gpsj/evaluator.h"
#include "maintenance/warehouse.h"
#include "serve/planner.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

constexpr char kViewSql[] = R"sql(
  CREATE VIEW city_month AS
  SELECT time.month, store.city, SUM(sale.price) AS TotalPrice,
         COUNT(*) AS Cnt
  FROM sale, time, store
  WHERE sale.timeid = time.id AND sale.storeid = store.id
  GROUP BY time.month, store.city
)sql";

// A coarser grouping than the view retains: answered by summary
// roll-up.
constexpr char kRollupSql[] =
    "SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt "
    "FROM sale, time, store "
    "WHERE sale.timeid = time.id AND sale.storeid = store.id "
    "GROUP BY time.month";

RetailWarehouse MakeSource() {
  RetailParams params;
  params.days = 40;
  params.stores = 6;
  params.products = 300;
  params.products_sold_per_store_day = 30;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

void RunView(benchmark::State& state, bool serving) {
  RetailWarehouse retail = MakeSource();
  Warehouse warehouse(WarehouseOptions{}.WithServing(serving));
  Check(warehouse.AddViewSql(retail.catalog, kViewSql));
  size_t rows = 0;
  for (auto _ : state) {
    Table view = Unwrap(warehouse.View("city_month"));
    rows += view.NumRows();
    benchmark::DoNotOptimize(view);
  }
  state.counters["view_rows"] =
      benchmark::Counter(static_cast<double>(rows) /
                         static_cast<double>(state.iterations()));
}

void BM_View(benchmark::State& state) { RunView(state, true); }
void BM_ViewLegacy(benchmark::State& state) { RunView(state, false); }

void RunQuery(benchmark::State& state, size_t cache_entries) {
  RetailWarehouse retail = MakeSource();
  Warehouse warehouse(
      WarehouseOptions{}.WithResultCache(cache_entries));
  Check(warehouse.AddViewSql(retail.catalog, kViewSql));
  for (auto _ : state) {
    Table result = Unwrap(warehouse.Query(kRollupSql));
    benchmark::DoNotOptimize(result);
  }
  const ResultCache::Stats stats = warehouse.QueryCacheStats();
  state.counters["hits"] =
      benchmark::Counter(static_cast<double>(stats.hits));
  state.counters["misses"] =
      benchmark::Counter(static_cast<double>(stats.misses));
}

void BM_QueryCached(benchmark::State& state) { RunQuery(state, 64); }
void BM_QueryUncached(benchmark::State& state) { RunQuery(state, 0); }

void BM_QueryDirect(benchmark::State& state) {
  RetailWarehouse retail = MakeSource();
  const GpsjViewDef def =
      Unwrap(ParseServeQuery(retail.catalog, kRollupSql));
  for (auto _ : state) {
    Table result = Unwrap(EvaluateGpsj(retail.catalog, def));
    benchmark::DoNotOptimize(result);
  }
}

// state.range(0): batch size. One iteration = one ingested batch.
void RunApply(benchmark::State& state, bool serving) {
  RetailWarehouse retail = MakeSource();
  Catalog& source = retail.catalog;
  Warehouse warehouse(WarehouseOptions{}.WithServing(serving));
  Check(warehouse.AddViewSql(source, kViewSql));
  RetailDeltaGenerator gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", std::move(delta));
    state.ResumeTiming();
    Check(warehouse.ApplyTransaction(changes));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_ApplyServing(benchmark::State& state) { RunApply(state, true); }
void BM_ApplyNoServing(benchmark::State& state) {
  RunApply(state, false);
}

BENCHMARK(BM_View);
BENCHMARK(BM_ViewLegacy);
BENCHMARK(BM_QueryCached);
BENCHMARK(BM_QueryUncached);
BENCHMARK(BM_QueryDirect);
BENCHMARK(BM_ApplyServing)->Arg(64)->Arg(256);
BENCHMARK(BM_ApplyNoServing)->Arg(64)->Arg(256);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
