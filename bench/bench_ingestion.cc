// Ingestion-hardening overhead — what admission control and exactly-
// once bookkeeping cost per applied batch. All warehouses are
// in-memory so the numbers isolate the pipeline itself (validation,
// content hashing, key-window upkeep) from WAL and checkpoint I/O,
// which bench_wal_overhead covers. Four configurations bracket the
// space:
//
//   bare      validation off, hash idempotency off — the pre-hardening
//             apply path, the baseline every other row is compared to
//   validate  admission control only
//   hash      content-hash idempotency keys only
//   full      both on (the production default)
//
// plus BM_DuplicateDetection, the cost of acknowledging a resent batch
// as a no-op (the exactly-once fast path). google-benchmark harness.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_util.h"
#include "maintenance/warehouse.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

constexpr char kViewSql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

RetailWarehouse MakeSource() {
  RetailParams params;
  params.days = 40;
  params.stores = 4;
  params.products = 300;
  params.products_sold_per_store_day = 30;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

enum class Mode { kBare, kValidate, kHash, kFull };

WarehouseOptions ModeOptions(Mode mode) {
  const bool validate = mode == Mode::kValidate || mode == Mode::kFull;
  const bool hash = mode == Mode::kHash || mode == Mode::kFull;
  return WarehouseOptions{}.WithValidation(validate).WithHashIdempotency(
      hash);
}

// state.range(0): batch size. One iteration = one ingested batch.
void RunIngest(benchmark::State& state, Mode mode) {
  RetailWarehouse retail = MakeSource();
  Catalog& source = retail.catalog;
  Warehouse warehouse(ModeOptions(mode));
  Check(warehouse.AddViewSql(source, kViewSql));
  RetailDeltaGenerator gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", std::move(delta));
    state.ResumeTiming();
    Check(warehouse.ApplyTransaction(changes));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["accepted"] = benchmark::Counter(
      static_cast<double>(warehouse.ingest_stats().accepted));
}

void BM_IngestBare(benchmark::State& state) {
  RunIngest(state, Mode::kBare);
}
void BM_IngestValidate(benchmark::State& state) {
  RunIngest(state, Mode::kValidate);
}
void BM_IngestHash(benchmark::State& state) {
  RunIngest(state, Mode::kHash);
}
void BM_IngestFull(benchmark::State& state) {
  RunIngest(state, Mode::kFull);
}

// One iteration = one resent batch acknowledged as a duplicate no-op:
// the content hash plus the key-window lookup, never the engines.
void BM_DuplicateDetection(benchmark::State& state) {
  RetailWarehouse retail = MakeSource();
  Catalog& source = retail.catalog;
  Warehouse warehouse;
  Check(warehouse.AddViewSql(source, kViewSql));
  RetailDeltaGenerator gen(13);
  const size_t n = static_cast<size_t>(state.range(0));
  Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
  std::map<std::string, Delta> changes;
  changes.emplace("sale", std::move(delta));
  Check(warehouse.ApplyTransaction(changes));
  for (auto _ : state) {
    Check(warehouse.ApplyTransaction(changes));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["duplicates"] = benchmark::Counter(
      static_cast<double>(warehouse.ingest_stats().duplicates));
}

BENCHMARK(BM_IngestBare)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestValidate)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestHash)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestFull)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DuplicateDetection)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
