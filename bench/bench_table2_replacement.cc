// E2 — Paper Table 2: CSMAS classification and the distributive
// replacement of each SQL aggregate (COUNT → COUNT(*); SUM/AVG →
// {SUM, COUNT(*)}; MIN/MAX not replaced; DISTINCT ⇒ non-CSMAS). The
// replacement sets are printed from the library and then validated by
// the distributivity property: aggregating pre-aggregated partitions
// must equal aggregating the raw data.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "gpsj/aggregate.h"
#include "relational/ops.h"

namespace mindetail {
namespace {

using bench::Unwrap;

void PrintPaperTable() {
  std::cout << "Paper Table 2 (as derived by the library):\n";
  std::cout << "  Aggregate | Replaced By                | Class\n";
  std::cout << "  ----------+----------------------------+----------\n";
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMax}) {
    std::cout << "  " << Table2Row(fn) << "\n";
  }
  std::cout << "\nReplacement sets produced for f(a):\n";
  struct Row {
    const char* label;
    AggFn fn;
    bool distinct;
  };
  for (const Row& row :
       {Row{"COUNT(a)", AggFn::kCount, false},
        Row{"SUM(a)", AggFn::kSum, false}, Row{"AVG(a)", AggFn::kAvg, false},
        Row{"MAX(a)", AggFn::kMax, false},
        Row{"SUM(DISTINCT a)", AggFn::kSum, true}}) {
    AggregateSpec spec;
    spec.fn = row.fn;
    spec.input = AttributeRef{"t", "a"};
    spec.distinct = row.distinct;
    spec.output_name = "out";
    std::printf("  %-16s -> {", row.label);
    bool first = true;
    for (const PhysicalAggregate& agg : ReplacementSet(spec, "a")) {
      std::printf("%s%s", first ? "" : ", ", agg.ToString().c_str());
      first = false;
    }
    std::printf("}%s\n", IsCsmas(spec) ? "" : "   [non-CSMAS: kept raw]");
  }
}

// Distributivity check: partition 10,000 values into 64 chunks,
// aggregate each chunk with the replacement set, combine, and compare
// against direct aggregation.
void DistributivityCheck() {
  std::cout << "\nDistributivity of the replacement sets "
               "(64 partitions, 10,000 values):\n";
  Rng rng(4242);
  std::vector<int64_t> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) values.push_back(rng.NextInt(-100, 100));

  int64_t direct_sum = 0;
  for (int64_t v : values) direct_sum += v;
  const int64_t direct_count = static_cast<int64_t>(values.size());
  const double direct_avg =
      static_cast<double>(direct_sum) / static_cast<double>(direct_count);

  int64_t combined_sum = 0;
  int64_t combined_count = 0;
  const size_t chunk = values.size() / 64;
  for (size_t p = 0; p < 64; ++p) {
    int64_t part_sum = 0;
    int64_t part_count = 0;
    const size_t hi =
        p == 63 ? values.size() : (p + 1) * chunk;  // Last takes the rest.
    for (size_t i = p * chunk; i < hi; ++i) {
      part_sum += values[i];
      part_count += 1;
    }
    combined_sum += part_sum;    // SUM of SUMs.
    combined_count += part_count;  // SUM of COUNTs.
  }
  const double combined_avg = static_cast<double>(combined_sum) /
                              static_cast<double>(combined_count);

  std::printf("  COUNT: direct=%lld combined=%lld  %s\n",
              static_cast<long long>(direct_count),
              static_cast<long long>(combined_count),
              direct_count == combined_count ? "PASS" : "FAIL");
  std::printf("  SUM:   direct=%lld combined=%lld  %s\n",
              static_cast<long long>(direct_sum),
              static_cast<long long>(combined_sum),
              direct_sum == combined_sum ? "PASS" : "FAIL");
  std::printf("  AVG:   direct=%.6f combined=%.6f  %s "
              "(via SUM/COUNT, not AVG-of-AVGs)\n",
              direct_avg, combined_avg,
              direct_avg == combined_avg ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace mindetail

int main() {
  mindetail::bench::Header(
      "E2 / Paper Table 2",
      "CSMAS classification and distributive replacement");
  mindetail::PrintPaperTable();
  mindetail::DistributivityCheck();
  return 0;
}
