// E9 (ablation) — cost of running Algorithm 3.2 itself as the schema
// grows: snowflakes of increasing depth and fan-out. Derivation is a
// design-time operation; this confirms it stays well under a
// millisecond even for wide snowflakes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/derive.h"
#include "gpsj/builder.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using bench::Unwrap;

struct Fixture {
  SnowflakeWarehouse warehouse;
  GpsjViewDef def;
};

Fixture MakeFixture(int depth, int fanout) {
  SnowflakeParams params;
  params.depth = depth;
  params.fanout = fanout;
  params.fact_rows = 50;  // Derivation cost is data-independent.
  params.dim_rows = 10;
  SnowflakeWarehouse warehouse = Unwrap(GenerateSnowflake(params));

  GpsjViewBuilder builder("bench_view");
  builder.From(warehouse.fact);
  for (const std::string& dim : warehouse.dims) {
    builder.From(dim);
    builder.Join(warehouse.parent.at(dim), warehouse.link_attr.at(dim),
                 dim);
  }
  if (!warehouse.dims.empty()) {
    builder.GroupBy(warehouse.dims.front(), "a", "GroupA");
    builder.GroupBy(warehouse.dims.back(), "s", "GroupS");
  } else {
    builder.GroupBy(warehouse.fact, "m1", "GroupM1");
  }
  builder.Sum(warehouse.fact, "m2", "SumM2").CountStar("Cnt");
  GpsjViewDef def = Unwrap(builder.Build(warehouse.catalog));
  return Fixture{std::move(warehouse), std::move(def)};
}

// state.range(0): depth; state.range(1): fanout.
void BM_DeriveAuxViews(benchmark::State& state) {
  Fixture fixture = MakeFixture(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Unwrap(Derivation::Derive(fixture.def, fixture.warehouse.catalog)));
  }
  state.counters["tables"] =
      static_cast<double>(fixture.warehouse.dims.size() + 1);
}

void BM_BuildJoinGraph(benchmark::State& state) {
  Fixture fixture = MakeFixture(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Unwrap(ExtendedJoinGraph::Build(
        fixture.def, fixture.warehouse.catalog)));
  }
}

void BM_NeedSets(benchmark::State& state) {
  Fixture fixture = MakeFixture(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)));
  ExtendedJoinGraph graph = Unwrap(
      ExtendedJoinGraph::Build(fixture.def, fixture.warehouse.catalog));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AllNeedSets(graph));
  }
}

BENCHMARK(BM_DeriveAuxViews)
    ->ArgsProduct({{1, 2, 3, 4}, {1, 2}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BuildJoinGraph)
    ->ArgsProduct({{2, 4}, {2}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NeedSets)
    ->ArgsProduct({{2, 4}, {2}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
