// E3 — Paper Tables 3 and 4: the `sale` auxiliary view before and after
// smart duplicate compression, on the paper's six-tuple instance.
//
// Table 3 shows the view after local reduction and duplicate
// elimination with a COUNT(*) added; Table 4 shows it after the CSMAS
// replacement collapses `price` into SUM(price).

#include <iostream>

#include "bench_util.h"
#include "core/derive.h"
#include "gpsj/builder.h"
#include "relational/ops.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

Catalog Fixture() {
  Catalog catalog;
  Check(catalog.CreateTable("time",
                            Schema({{"id", ValueType::kInt64},
                                    {"month", ValueType::kInt64},
                                    {"year", ValueType::kInt64}}),
                            "id"));
  Check(catalog.CreateTable("product",
                            Schema({{"id", ValueType::kInt64},
                                    {"brand", ValueType::kString}}),
                            "id"));
  Check(catalog.CreateTable("sale",
                            Schema({{"id", ValueType::kInt64},
                                    {"timeid", ValueType::kInt64},
                                    {"productid", ValueType::kInt64},
                                    {"price", ValueType::kInt64}}),
                            "id"));
  Check(catalog.AddForeignKey("sale", "timeid", "time"));
  Check(catalog.AddForeignKey("sale", "productid", "product"));

  Table* time = Unwrap(catalog.MutableTable("time"));
  Check(time->Insert({Value(1), Value(1), Value(1997)}));
  Check(time->Insert({Value(2), Value(1), Value(1997)}));
  Table* product = Unwrap(catalog.MutableTable("product"));
  Check(product->Insert({Value(1), Value("Alpha")}));
  Check(product->Insert({Value(2), Value("Beta")}));
  Table* sale = Unwrap(catalog.MutableTable("sale"));
  // The instance behind paper Table 3.
  Check(sale->Insert({Value(1), Value(1), Value(1), Value(10)}));
  Check(sale->Insert({Value(2), Value(1), Value(1), Value(10)}));
  Check(sale->Insert({Value(3), Value(1), Value(2), Value(30)}));
  Check(sale->Insert({Value(4), Value(2), Value(1), Value(10)}));
  Check(sale->Insert({Value(5), Value(2), Value(2), Value(25)}));
  Check(sale->Insert({Value(6), Value(2), Value(2), Value(30)}));
  return catalog;
}

}  // namespace
}  // namespace mindetail

int main() {
  using namespace mindetail;  // NOLINT
  using mindetail::bench::Check;
  using mindetail::bench::Unwrap;

  bench::Header("E3 / Paper Tables 3 & 4",
                "the sale auxiliary view before/after smart duplicate "
                "compression");

  Catalog catalog = Fixture();
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .CountDistinct("product", "brand", "DifferentBrands");
  GpsjViewDef def = Unwrap(builder.Build(catalog));
  Derivation derivation = Unwrap(Derivation::Derive(def, catalog));

  // Paper Table 3: duplicate elimination over (timeid, productid,
  // price) with a COUNT(*), before CSMAS replacement.
  const Table* sale = Unwrap(catalog.GetTable("sale"));
  Table stage3 = Unwrap(GroupAggregate(
      *sale, {"timeid", "productid", "price"},
      {{AggFn::kCountStar, "", false, "COUNT(*)"}}, "Table 3"));
  std::cout << "\nPaper Table 3 — after adding COUNT(*):\n"
            << stage3.ToString() << "\n";

  // Paper Table 4: the derived compressed auxiliary view.
  std::map<std::string, Table> aux =
      Unwrap(MaterializeAuxViews(catalog, derivation));
  std::cout << "Paper Table 4 — after smart duplicate compression:\n"
            << aux.at("sale").ToString() << "\n";

  std::cout << "Derived definition:\n"
            << derivation.aux_for("sale").ToSqlString() << "\n\n";

  std::cout << "Rows: base " << sale->NumRows() << " -> Table 3 "
            << stage3.NumRows() << " -> Table 4 "
            << aux.at("sale").NumRows() << "\n";
  std::cout << "Expected Table 4 groups: (1,1,20,2) (1,2,30,1) "
               "(2,1,10,1) (2,2,55,2)\n";
  return 0;
}
