// WAL overhead — what durability costs per applied batch: an in-memory
// warehouse vs a durable one with the WAL fsync'd on every append vs a
// durable one without fsync (write-only), across batch sizes. Also
// times Checkpoint() alone, since checkpoint cost bounds how often the
// WAL can be truncated. google-benchmark timing harness.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "maintenance/warehouse.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

constexpr char kViewSql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

RetailWarehouse MakeSource() {
  RetailParams params;
  params.days = 40;
  params.stores = 4;
  params.products = 300;
  params.products_sold_per_store_day = 30;
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 0.5;
  return Unwrap(GenerateRetail(params));
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

enum class Mode { kInMemory, kDurableSync, kDurableNoSync };

Warehouse MakeWarehouse(Mode mode, const Catalog& source,
                        const std::string& dir) {
  Warehouse warehouse;
  if (mode != Mode::kInMemory) {
    warehouse = Unwrap(Warehouse::Open(
        dir,
        WarehouseOptions{}.WithSyncWal(mode == Mode::kDurableSync)));
  }
  Check(warehouse.AddViewSql(source, kViewSql));
  return warehouse;
}

// state.range(0): batch size. One iteration = one applied batch.
void RunApply(benchmark::State& state, Mode mode) {
  RetailWarehouse retail = MakeSource();
  Catalog& source = retail.catalog;
  const std::string dir = FreshDir(
      StrCat("mindetail_bench_wal_", static_cast<int>(mode), "_",
             state.range(0)));
  Warehouse warehouse = MakeWarehouse(mode, source, dir);
  RetailDeltaGenerator gen(7);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = Unwrap(gen.MixedSaleBatch(source, n / 2, n / 4, n / 4));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    state.ResumeTiming();
    Check(warehouse.Apply("sale", delta));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.counters["wal_bytes_per_batch"] = benchmark::Counter(
      mode == Mode::kInMemory || warehouse.last_sequence() == 0
          ? 0.0
          : static_cast<double>(
                std::filesystem::exists(dir + "/wal.log")
                    ? std::filesystem::file_size(dir + "/wal.log")
                    : 0) /
                static_cast<double>(warehouse.last_sequence()));
  std::filesystem::remove_all(dir);
}

void BM_ApplyInMemory(benchmark::State& state) {
  RunApply(state, Mode::kInMemory);
}
void BM_ApplyDurableSync(benchmark::State& state) {
  RunApply(state, Mode::kDurableSync);
}
void BM_ApplyDurableNoSync(benchmark::State& state) {
  RunApply(state, Mode::kDurableNoSync);
}

// One iteration = one full checkpoint of a warmed warehouse.
void BM_Checkpoint(benchmark::State& state) {
  RetailWarehouse retail = MakeSource();
  Catalog& source = retail.catalog;
  const std::string dir = FreshDir("mindetail_bench_wal_checkpoint");
  Warehouse warehouse = MakeWarehouse(Mode::kDurableSync, source, dir);
  RetailDeltaGenerator gen(11);
  for (int i = 0; i < 8; ++i) {
    Delta delta = Unwrap(gen.MixedSaleBatch(source, 128, 64, 64));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), delta));
    Check(warehouse.Apply("sale", delta));
  }
  for (auto _ : state) {
    Check(warehouse.Checkpoint());
  }
  std::filesystem::remove_all(dir);
}

BENCHMARK(BM_ApplyInMemory)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyDurableSync)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApplyDurableNoSync)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
