// Shared delta-join plans across sibling views: N structurally
// identical summary views (names differ, join edges / group-bys /
// outputs match) maintained by one warehouse, with the per-batch
// SharedJoinCache on or off. With sharing on, each distinct delta-join
// subexpression is computed exactly once per batch and the memoized
// fragments fan out to every sibling, so per-batch latency should
// flatten as siblings grow; with sharing off it grows linearly. The
// warehouse guarantees results bit-identical either way, so this
// harness measures latency only. items/s is delta rows per second.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gpsj/builder.h"
#include "maintenance/warehouse.h"
#include "relational/delta.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using bench::Check;
using bench::Unwrap;

SnowflakeWarehouse MakeSource() {
  SnowflakeParams params;
  params.depth = 2;
  params.fanout = 2;
  params.fact_rows = 20000;
  params.dim_rows = 60;
  params.seed = 41;
  return Unwrap(GenerateSnowflake(params));
}

// Sibling views over the full snowflake join: identical shape (same
// join edges, group-bys, and outputs) so their canonical join-edge
// signatures match and every delta join is shareable — only the view
// name differs.
GpsjViewDef MakeSibling(const SnowflakeWarehouse& warehouse,
                        size_t index) {
  GpsjViewBuilder builder(StrCat("shared_sibling_", index));
  builder.From(warehouse.fact);
  for (const std::string& dim : warehouse.dims) {
    builder.From(dim);
    builder.Join(warehouse.parent.at(dim), warehouse.link_attr.at(dim),
                 dim);
  }
  builder.GroupBy(warehouse.dims.front(), "a", "GroupA");
  builder.GroupBy(warehouse.dims.back(), "b", "GroupB");
  builder.CountStar("Cnt");
  builder.Sum(warehouse.fact, "m1", "SumM1");
  builder.Sum(warehouse.fact, "m2", "SumM2");
  builder.Avg(warehouse.fact, "m2", "AvgM2");
  return Unwrap(builder.Build(warehouse.catalog));
}

// One mixed root batch: half inserts (referencing existing dimension
// rows), a quarter deletes, a quarter updates.
Delta MakeRootBatch(const SnowflakeWarehouse& warehouse,
                    const Catalog& source, Rng& rng, size_t batch) {
  Delta delta;
  const Table* fact = *source.GetTable(warehouse.fact);
  int64_t next_id = 0;
  for (const Tuple& row : fact->rows()) {
    next_id = std::max(next_id, row[0].AsInt64());
  }
  ++next_id;
  const size_t fk_count = fact->schema().size() - 3;  // id, …, m1, m2.
  for (size_t i = 0; i < batch / 2; ++i) {
    Tuple row = {Value(next_id++)};
    for (size_t f = 0; f < fk_count; ++f) {
      const std::string fk_attr = fact->schema().attribute(1 + f).name;
      const std::string dim = fk_attr.substr(3);  // strip "fk_".
      const Table* dim_table = *source.GetTable(dim);
      row.push_back(
          dim_table->row(rng.NextBelow(dim_table->NumRows()))[0]);
    }
    row.push_back(Value(rng.NextInt(0, 9)));
    row.push_back(Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0));
    delta.inserts.push_back(std::move(row));
  }
  std::set<int64_t> touched;
  for (size_t i = 0; i < batch / 4 && fact->NumRows() > 0; ++i) {
    const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    delta.deletes.push_back(row);
  }
  for (size_t i = 0; i < batch / 4 && fact->NumRows() > 0; ++i) {
    const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    Tuple after = row;
    after[after.size() - 2] = Value(rng.NextInt(0, 9));
    after[after.size() - 1] =
        Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0);
    delta.updates.push_back(Update{row, std::move(after)});
  }
  return delta;
}

// state.range(0): sibling views; state.range(1): 1 = shared plans.
// Maintenance runs serially so the curve isolates the sharing effect
// from cross-view parallelism.
void BM_SharedDeltaJoins(benchmark::State& state) {
  SnowflakeWarehouse snowflake = MakeSource();
  Catalog& source = snowflake.catalog;
  const bool shared = state.range(1) == 1;
  Warehouse warehouse(
      WarehouseOptions{}.WithParallelism(1).WithSharedJoins(shared));
  const size_t siblings = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < siblings; ++i) {
    Check(warehouse.AddView(source, MakeSibling(snowflake, i)));
  }
  Rng rng(8675);
  constexpr size_t kBatch = 2048;
  for (auto _ : state) {
    state.PauseTiming();
    Delta delta = MakeRootBatch(snowflake, source, rng, kBatch);
    Check(ApplyDelta(Unwrap(source.MutableTable(snowflake.fact)), delta));
    state.ResumeTiming();
    Check(warehouse.Apply(snowflake.fact, delta));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
  const SharedJoinStats& stats = warehouse.Report().maintenance.shared;
  state.counters["siblings"] = static_cast<double>(siblings);
  state.counters["shared"] = shared ? 1.0 : 0.0;
  state.counters["joins_computed"] =
      static_cast<double>(stats.joins_computed);
  state.counters["joins_reused"] =
      static_cast<double>(stats.joins_reused);
}

BENCHMARK(BM_SharedDeltaJoins)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mindetail

BENCHMARK_MAIN();
