# Empty dependencies file for snowflake_inventory.
# This may be replaced when dependencies are built.
