file(REMOVE_RECURSE
  "CMakeFiles/snowflake_inventory.dir/snowflake_inventory.cc.o"
  "CMakeFiles/snowflake_inventory.dir/snowflake_inventory.cc.o.d"
  "snowflake_inventory"
  "snowflake_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snowflake_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
