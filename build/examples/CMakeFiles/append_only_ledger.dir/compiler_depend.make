# Empty compiler generated dependencies file for append_only_ledger.
# This may be replaced when dependencies are built.
