file(REMOVE_RECURSE
  "CMakeFiles/append_only_ledger.dir/append_only_ledger.cc.o"
  "CMakeFiles/append_only_ledger.dir/append_only_ledger.cc.o.d"
  "append_only_ledger"
  "append_only_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/append_only_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
