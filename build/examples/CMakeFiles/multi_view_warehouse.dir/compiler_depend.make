# Empty compiler generated dependencies file for multi_view_warehouse.
# This may be replaced when dependencies are built.
