file(REMOVE_RECURSE
  "CMakeFiles/multi_view_warehouse.dir/multi_view_warehouse.cc.o"
  "CMakeFiles/multi_view_warehouse.dir/multi_view_warehouse.cc.o.d"
  "multi_view_warehouse"
  "multi_view_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_view_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
