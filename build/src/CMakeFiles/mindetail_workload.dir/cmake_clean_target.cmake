file(REMOVE_RECURSE
  "libmindetail_workload.a"
)
