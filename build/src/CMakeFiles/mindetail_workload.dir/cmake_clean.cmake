file(REMOVE_RECURSE
  "CMakeFiles/mindetail_workload.dir/workload/deltas.cc.o"
  "CMakeFiles/mindetail_workload.dir/workload/deltas.cc.o.d"
  "CMakeFiles/mindetail_workload.dir/workload/retail.cc.o"
  "CMakeFiles/mindetail_workload.dir/workload/retail.cc.o.d"
  "CMakeFiles/mindetail_workload.dir/workload/sizing.cc.o"
  "CMakeFiles/mindetail_workload.dir/workload/sizing.cc.o.d"
  "CMakeFiles/mindetail_workload.dir/workload/snowflake.cc.o"
  "CMakeFiles/mindetail_workload.dir/workload/snowflake.cc.o.d"
  "libmindetail_workload.a"
  "libmindetail_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
