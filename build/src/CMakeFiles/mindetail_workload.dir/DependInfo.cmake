
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/deltas.cc" "src/CMakeFiles/mindetail_workload.dir/workload/deltas.cc.o" "gcc" "src/CMakeFiles/mindetail_workload.dir/workload/deltas.cc.o.d"
  "/root/repo/src/workload/retail.cc" "src/CMakeFiles/mindetail_workload.dir/workload/retail.cc.o" "gcc" "src/CMakeFiles/mindetail_workload.dir/workload/retail.cc.o.d"
  "/root/repo/src/workload/sizing.cc" "src/CMakeFiles/mindetail_workload.dir/workload/sizing.cc.o" "gcc" "src/CMakeFiles/mindetail_workload.dir/workload/sizing.cc.o.d"
  "/root/repo/src/workload/snowflake.cc" "src/CMakeFiles/mindetail_workload.dir/workload/snowflake.cc.o" "gcc" "src/CMakeFiles/mindetail_workload.dir/workload/snowflake.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mindetail_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_gpsj.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
