# Empty compiler generated dependencies file for mindetail_workload.
# This may be replaced when dependencies are built.
