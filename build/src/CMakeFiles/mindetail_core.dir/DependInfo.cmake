
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compression.cc" "src/CMakeFiles/mindetail_core.dir/core/compression.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/compression.cc.o.d"
  "/root/repo/src/core/derive.cc" "src/CMakeFiles/mindetail_core.dir/core/derive.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/derive.cc.o.d"
  "/root/repo/src/core/eliminate.cc" "src/CMakeFiles/mindetail_core.dir/core/eliminate.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/eliminate.cc.o.d"
  "/root/repo/src/core/estimate.cc" "src/CMakeFiles/mindetail_core.dir/core/estimate.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/estimate.cc.o.d"
  "/root/repo/src/core/join_graph.cc" "src/CMakeFiles/mindetail_core.dir/core/join_graph.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/join_graph.cc.o.d"
  "/root/repo/src/core/need.cc" "src/CMakeFiles/mindetail_core.dir/core/need.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/need.cc.o.d"
  "/root/repo/src/core/reconstruct.cc" "src/CMakeFiles/mindetail_core.dir/core/reconstruct.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/reconstruct.cc.o.d"
  "/root/repo/src/core/reduction.cc" "src/CMakeFiles/mindetail_core.dir/core/reduction.cc.o" "gcc" "src/CMakeFiles/mindetail_core.dir/core/reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mindetail_gpsj.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
