file(REMOVE_RECURSE
  "libmindetail_core.a"
)
