file(REMOVE_RECURSE
  "CMakeFiles/mindetail_core.dir/core/compression.cc.o"
  "CMakeFiles/mindetail_core.dir/core/compression.cc.o.d"
  "CMakeFiles/mindetail_core.dir/core/derive.cc.o"
  "CMakeFiles/mindetail_core.dir/core/derive.cc.o.d"
  "CMakeFiles/mindetail_core.dir/core/eliminate.cc.o"
  "CMakeFiles/mindetail_core.dir/core/eliminate.cc.o.d"
  "CMakeFiles/mindetail_core.dir/core/estimate.cc.o"
  "CMakeFiles/mindetail_core.dir/core/estimate.cc.o.d"
  "CMakeFiles/mindetail_core.dir/core/join_graph.cc.o"
  "CMakeFiles/mindetail_core.dir/core/join_graph.cc.o.d"
  "CMakeFiles/mindetail_core.dir/core/need.cc.o"
  "CMakeFiles/mindetail_core.dir/core/need.cc.o.d"
  "CMakeFiles/mindetail_core.dir/core/reconstruct.cc.o"
  "CMakeFiles/mindetail_core.dir/core/reconstruct.cc.o.d"
  "CMakeFiles/mindetail_core.dir/core/reduction.cc.o"
  "CMakeFiles/mindetail_core.dir/core/reduction.cc.o.d"
  "libmindetail_core.a"
  "libmindetail_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
