# Empty compiler generated dependencies file for mindetail_core.
# This may be replaced when dependencies are built.
