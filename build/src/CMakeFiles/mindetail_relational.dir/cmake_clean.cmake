file(REMOVE_RECURSE
  "CMakeFiles/mindetail_relational.dir/relational/catalog.cc.o"
  "CMakeFiles/mindetail_relational.dir/relational/catalog.cc.o.d"
  "CMakeFiles/mindetail_relational.dir/relational/delta.cc.o"
  "CMakeFiles/mindetail_relational.dir/relational/delta.cc.o.d"
  "CMakeFiles/mindetail_relational.dir/relational/ops.cc.o"
  "CMakeFiles/mindetail_relational.dir/relational/ops.cc.o.d"
  "CMakeFiles/mindetail_relational.dir/relational/predicate.cc.o"
  "CMakeFiles/mindetail_relational.dir/relational/predicate.cc.o.d"
  "CMakeFiles/mindetail_relational.dir/relational/schema.cc.o"
  "CMakeFiles/mindetail_relational.dir/relational/schema.cc.o.d"
  "CMakeFiles/mindetail_relational.dir/relational/table.cc.o"
  "CMakeFiles/mindetail_relational.dir/relational/table.cc.o.d"
  "CMakeFiles/mindetail_relational.dir/relational/value.cc.o"
  "CMakeFiles/mindetail_relational.dir/relational/value.cc.o.d"
  "libmindetail_relational.a"
  "libmindetail_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
