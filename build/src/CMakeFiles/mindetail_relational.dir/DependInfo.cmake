
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/catalog.cc" "src/CMakeFiles/mindetail_relational.dir/relational/catalog.cc.o" "gcc" "src/CMakeFiles/mindetail_relational.dir/relational/catalog.cc.o.d"
  "/root/repo/src/relational/delta.cc" "src/CMakeFiles/mindetail_relational.dir/relational/delta.cc.o" "gcc" "src/CMakeFiles/mindetail_relational.dir/relational/delta.cc.o.d"
  "/root/repo/src/relational/ops.cc" "src/CMakeFiles/mindetail_relational.dir/relational/ops.cc.o" "gcc" "src/CMakeFiles/mindetail_relational.dir/relational/ops.cc.o.d"
  "/root/repo/src/relational/predicate.cc" "src/CMakeFiles/mindetail_relational.dir/relational/predicate.cc.o" "gcc" "src/CMakeFiles/mindetail_relational.dir/relational/predicate.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/mindetail_relational.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/mindetail_relational.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/mindetail_relational.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/mindetail_relational.dir/relational/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/mindetail_relational.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/mindetail_relational.dir/relational/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mindetail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
