file(REMOVE_RECURSE
  "libmindetail_relational.a"
)
