# Empty compiler generated dependencies file for mindetail_relational.
# This may be replaced when dependencies are built.
