file(REMOVE_RECURSE
  "CMakeFiles/mindetail_io.dir/io/catalog_io.cc.o"
  "CMakeFiles/mindetail_io.dir/io/catalog_io.cc.o.d"
  "CMakeFiles/mindetail_io.dir/io/csv.cc.o"
  "CMakeFiles/mindetail_io.dir/io/csv.cc.o.d"
  "libmindetail_io.a"
  "libmindetail_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
