file(REMOVE_RECURSE
  "libmindetail_io.a"
)
