# Empty dependencies file for mindetail_io.
# This may be replaced when dependencies are built.
