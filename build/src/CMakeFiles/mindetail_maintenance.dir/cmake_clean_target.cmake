file(REMOVE_RECURSE
  "libmindetail_maintenance.a"
)
