# Empty compiler generated dependencies file for mindetail_maintenance.
# This may be replaced when dependencies are built.
