
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maintenance/aux_store.cc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/aux_store.cc.o" "gcc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/aux_store.cc.o.d"
  "/root/repo/src/maintenance/baselines.cc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/baselines.cc.o" "gcc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/baselines.cc.o.d"
  "/root/repo/src/maintenance/engine.cc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/engine.cc.o" "gcc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/engine.cc.o.d"
  "/root/repo/src/maintenance/warehouse.cc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/warehouse.cc.o" "gcc" "src/CMakeFiles/mindetail_maintenance.dir/maintenance/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mindetail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_gpsj.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
