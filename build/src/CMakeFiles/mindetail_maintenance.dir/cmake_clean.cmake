file(REMOVE_RECURSE
  "CMakeFiles/mindetail_maintenance.dir/maintenance/aux_store.cc.o"
  "CMakeFiles/mindetail_maintenance.dir/maintenance/aux_store.cc.o.d"
  "CMakeFiles/mindetail_maintenance.dir/maintenance/baselines.cc.o"
  "CMakeFiles/mindetail_maintenance.dir/maintenance/baselines.cc.o.d"
  "CMakeFiles/mindetail_maintenance.dir/maintenance/engine.cc.o"
  "CMakeFiles/mindetail_maintenance.dir/maintenance/engine.cc.o.d"
  "CMakeFiles/mindetail_maintenance.dir/maintenance/warehouse.cc.o"
  "CMakeFiles/mindetail_maintenance.dir/maintenance/warehouse.cc.o.d"
  "libmindetail_maintenance.a"
  "libmindetail_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
