# Empty dependencies file for mindetail_common.
# This may be replaced when dependencies are built.
