file(REMOVE_RECURSE
  "CMakeFiles/mindetail_common.dir/common/bytes.cc.o"
  "CMakeFiles/mindetail_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/mindetail_common.dir/common/rng.cc.o"
  "CMakeFiles/mindetail_common.dir/common/rng.cc.o.d"
  "CMakeFiles/mindetail_common.dir/common/status.cc.o"
  "CMakeFiles/mindetail_common.dir/common/status.cc.o.d"
  "CMakeFiles/mindetail_common.dir/common/strings.cc.o"
  "CMakeFiles/mindetail_common.dir/common/strings.cc.o.d"
  "libmindetail_common.a"
  "libmindetail_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
