file(REMOVE_RECURSE
  "libmindetail_common.a"
)
