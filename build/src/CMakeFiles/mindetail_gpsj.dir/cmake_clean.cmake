file(REMOVE_RECURSE
  "CMakeFiles/mindetail_gpsj.dir/gpsj/aggregate.cc.o"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/aggregate.cc.o.d"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/builder.cc.o"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/builder.cc.o.d"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/evaluator.cc.o"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/evaluator.cc.o.d"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/parser.cc.o"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/parser.cc.o.d"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/view_def.cc.o"
  "CMakeFiles/mindetail_gpsj.dir/gpsj/view_def.cc.o.d"
  "libmindetail_gpsj.a"
  "libmindetail_gpsj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_gpsj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
