# Empty dependencies file for mindetail_gpsj.
# This may be replaced when dependencies are built.
