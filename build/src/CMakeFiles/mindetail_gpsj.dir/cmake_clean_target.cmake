file(REMOVE_RECURSE
  "libmindetail_gpsj.a"
)
