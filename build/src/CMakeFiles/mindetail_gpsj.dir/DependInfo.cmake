
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpsj/aggregate.cc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/aggregate.cc.o" "gcc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/aggregate.cc.o.d"
  "/root/repo/src/gpsj/builder.cc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/builder.cc.o" "gcc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/builder.cc.o.d"
  "/root/repo/src/gpsj/evaluator.cc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/evaluator.cc.o" "gcc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/evaluator.cc.o.d"
  "/root/repo/src/gpsj/parser.cc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/parser.cc.o" "gcc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/parser.cc.o.d"
  "/root/repo/src/gpsj/view_def.cc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/view_def.cc.o" "gcc" "src/CMakeFiles/mindetail_gpsj.dir/gpsj/view_def.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mindetail_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mindetail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
