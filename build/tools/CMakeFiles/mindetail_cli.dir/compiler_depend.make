# Empty compiler generated dependencies file for mindetail_cli.
# This may be replaced when dependencies are built.
