file(REMOVE_RECURSE
  "CMakeFiles/mindetail_cli.dir/mindetail_cli.cc.o"
  "CMakeFiles/mindetail_cli.dir/mindetail_cli.cc.o.d"
  "mindetail_cli"
  "mindetail_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mindetail_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
