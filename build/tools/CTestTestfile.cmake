# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "sh" "-c" "printf 'demo\\nsql CREATE VIEW m AS SELECT time.month, COUNT(*) AS Cnt FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month;\\nview m\\ninsert sale 900001,1,1,1,9.5\\nerase sale 900001\\nreport\\nquit\\n' | /root/repo/build/tools/mindetail_cli")
set_tests_properties(cli_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "Total current detail" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
