# Empty dependencies file for bench_table2_replacement.
# This may be replaced when dependencies are built.
