file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_replacement.dir/bench_table2_replacement.cc.o"
  "CMakeFiles/bench_table2_replacement.dir/bench_table2_replacement.cc.o.d"
  "bench_table2_replacement"
  "bench_table2_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
