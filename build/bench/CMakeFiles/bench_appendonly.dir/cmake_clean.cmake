file(REMOVE_RECURSE
  "CMakeFiles/bench_appendonly.dir/bench_appendonly.cc.o"
  "CMakeFiles/bench_appendonly.dir/bench_appendonly.cc.o.d"
  "bench_appendonly"
  "bench_appendonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
