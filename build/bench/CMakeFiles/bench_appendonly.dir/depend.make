# Empty dependencies file for bench_appendonly.
# This may be replaced when dependencies are built.
