# Empty dependencies file for bench_table3_4_compression.
# This may be replaced when dependencies are built.
