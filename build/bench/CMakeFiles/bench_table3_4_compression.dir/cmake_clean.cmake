file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_4_compression.dir/bench_table3_4_compression.cc.o"
  "CMakeFiles/bench_table3_4_compression.dir/bench_table3_4_compression.cc.o.d"
  "bench_table3_4_compression"
  "bench_table3_4_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_4_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
