file(REMOVE_RECURSE
  "CMakeFiles/bench_compression_sweep.dir/bench_compression_sweep.cc.o"
  "CMakeFiles/bench_compression_sweep.dir/bench_compression_sweep.cc.o.d"
  "bench_compression_sweep"
  "bench_compression_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
