# Empty compiler generated dependencies file for bench_compression_sweep.
# This may be replaced when dependencies are built.
