# Empty dependencies file for bench_derivation.
# This may be replaced when dependencies are built.
