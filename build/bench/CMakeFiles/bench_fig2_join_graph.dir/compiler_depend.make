# Empty compiler generated dependencies file for bench_fig2_join_graph.
# This may be replaced when dependencies are built.
