# Empty dependencies file for bench_elimination.
# This may be replaced when dependencies are built.
