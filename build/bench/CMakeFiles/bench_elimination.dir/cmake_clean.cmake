file(REMOVE_RECURSE
  "CMakeFiles/bench_elimination.dir/bench_elimination.cc.o"
  "CMakeFiles/bench_elimination.dir/bench_elimination.cc.o.d"
  "bench_elimination"
  "bench_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
