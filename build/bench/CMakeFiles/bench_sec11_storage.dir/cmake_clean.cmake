file(REMOVE_RECURSE
  "CMakeFiles/bench_sec11_storage.dir/bench_sec11_storage.cc.o"
  "CMakeFiles/bench_sec11_storage.dir/bench_sec11_storage.cc.o.d"
  "bench_sec11_storage"
  "bench_sec11_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec11_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
