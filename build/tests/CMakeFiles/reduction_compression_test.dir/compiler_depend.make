# Empty compiler generated dependencies file for reduction_compression_test.
# This may be replaced when dependencies are built.
