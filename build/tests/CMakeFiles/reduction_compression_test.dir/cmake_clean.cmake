file(REMOVE_RECURSE
  "CMakeFiles/reduction_compression_test.dir/reduction_compression_test.cc.o"
  "CMakeFiles/reduction_compression_test.dir/reduction_compression_test.cc.o.d"
  "reduction_compression_test"
  "reduction_compression_test.pdb"
  "reduction_compression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
