# Empty dependencies file for aux_store_test.
# This may be replaced when dependencies are built.
