file(REMOVE_RECURSE
  "CMakeFiles/having_test.dir/having_test.cc.o"
  "CMakeFiles/having_test.dir/having_test.cc.o.d"
  "having_test"
  "having_test.pdb"
  "having_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/having_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
