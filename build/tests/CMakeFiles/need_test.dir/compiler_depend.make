# Empty compiler generated dependencies file for need_test.
# This may be replaced when dependencies are built.
