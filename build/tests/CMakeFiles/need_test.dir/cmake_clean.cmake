file(REMOVE_RECURSE
  "CMakeFiles/need_test.dir/need_test.cc.o"
  "CMakeFiles/need_test.dir/need_test.cc.o.d"
  "need_test"
  "need_test.pdb"
  "need_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/need_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
