file(REMOVE_RECURSE
  "CMakeFiles/derive_test.dir/derive_test.cc.o"
  "CMakeFiles/derive_test.dir/derive_test.cc.o.d"
  "derive_test"
  "derive_test.pdb"
  "derive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
