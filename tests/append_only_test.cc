// The insert-only relaxation for append-only detail data (paper Sec. 4
// future work): when every referenced table is append-only, MIN/MAX
// join the compressible class — they are folded into the auxiliary
// views, maintained without recomputation, and no longer block
// auxiliary-view elimination.

#include "core/derive.h"
#include "gpsj/builder.h"
#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesApproxEqual;

RetailWarehouse AppendOnlyRetail() {
  RetailWarehouse warehouse = SmallRetail();
  for (const char* table : {"sale", "time", "product", "store"}) {
    MD_CHECK(warehouse.catalog.SetAppendOnly(table, true).ok());
  }
  return warehouse;
}

TEST(AppendOnlyCatalogTest, FlagRoundTripAndExclusivity) {
  RetailWarehouse warehouse = SmallRetail();
  Catalog& catalog = warehouse.catalog;
  EXPECT_FALSE(catalog.IsAppendOnly("sale"));
  MD_ASSERT_OK(catalog.SetAppendOnly("sale", true));
  EXPECT_TRUE(catalog.IsAppendOnly("sale"));
  // Mutually exclusive with exposed updates.
  EXPECT_EQ(catalog.SetExposedUpdates("sale", true).code(),
            StatusCode::kFailedPrecondition);
  MD_ASSERT_OK(catalog.SetExposedUpdates("time", true));
  EXPECT_EQ(catalog.SetAppendOnly("time", true).code(),
            StatusCode::kFailedPrecondition);
  MD_ASSERT_OK(catalog.SetAppendOnly("sale", false));
  EXPECT_FALSE(catalog.IsAppendOnly("sale"));
  EXPECT_EQ(catalog.SetAppendOnly("ghost", true).code(),
            StatusCode::kNotFound);
}

TEST(AppendOnlyClassificationTest, InsertOnlyViewDetection) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesMaxView(warehouse.catalog));
  EXPECT_FALSE(def.IsInsertOnly(warehouse.catalog));
  MD_ASSERT_OK(warehouse.catalog.SetAppendOnly("sale", true));
  EXPECT_TRUE(def.IsInsertOnly(warehouse.catalog));

  // MAX blocks under the standard classification, not the relaxed one.
  EXPECT_FALSE(def.TableHasEffectiveNonCsmasAttr("sale",
                                                 warehouse.catalog));
  MD_ASSERT_OK(warehouse.catalog.SetAppendOnly("sale", false));
  EXPECT_TRUE(def.TableHasEffectiveNonCsmasAttr("sale",
                                                warehouse.catalog));
}

TEST(AppendOnlyClassificationTest, RelaxedCsmasPredicate) {
  AggregateSpec min_spec{AggFn::kMin, {"t", "a"}, false, "m"};
  EXPECT_FALSE(IsCsmas(min_spec));
  EXPECT_TRUE(IsCsmasUnderInsertOnly(min_spec));
  AggregateSpec distinct_spec{AggFn::kCount, {"t", "a"}, true, "d"};
  EXPECT_FALSE(IsCsmasUnderInsertOnly(distinct_spec));
  AggregateSpec sum_spec{AggFn::kSum, {"t", "a"}, false, "s"};
  EXPECT_TRUE(IsCsmasUnderInsertOnly(sum_spec));
}

// product_sales_max under append-only: price compresses into
// sum_price + max_price instead of staying plain, so the auxiliary view
// groups by productid alone — far fewer groups.
TEST(AppendOnlyCompressionTest, MinMaxFoldIntoAuxColumns) {
  RetailWarehouse warehouse = AppendOnlyRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesMaxView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  EXPECT_TRUE(derivation.insert_only());

  const CompressionPlan& plan = derivation.aux_for("sale").plan;
  EXPECT_TRUE(plan.compressed);
  EXPECT_EQ(plan.PlainAttrs(), (std::vector<std::string>{"productid"}));
  EXPECT_GE(plan.SumColumnIndex("price"), 0);
  EXPECT_GE(plan.MaxColumnIndex("price"), 0);
  EXPECT_EQ(plan.MinColumnIndex("price"), -1);
  EXPECT_EQ(plan.PlainColumnIndex("price"), -1);
}

TEST(AppendOnlyCompressionTest, AuxViewIsSmallerThanStandardPlan) {
  // A two-table view (category grouping blocks elimination via the Need
  // set) so the fact auxiliary view is materialized in both regimes.
  auto make_view = [](const Catalog& catalog) {
    GpsjViewBuilder builder("minmax_by_category");
    builder.From("sale")
        .From("product")
        .Join("sale", "productid", "product")
        .GroupBy("product", "category", "Category")
        .Max("sale", "price", "MaxPrice")
        .Sum("sale", "price", "Total")
        .CountStar("Cnt");
    return builder.Build(catalog);
  };
  RetailWarehouse standard = SmallRetail();
  RetailWarehouse relaxed = AppendOnlyRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def_standard,
                          make_view(standard.catalog));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def_relaxed,
                          make_view(relaxed.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine engine_standard,
      SelfMaintenanceEngine::Create(standard.catalog, def_standard));
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine engine_relaxed,
      SelfMaintenanceEngine::Create(relaxed.catalog, def_relaxed));
  // Standard groups by (productid, price); relaxed by productid alone.
  EXPECT_LT(engine_relaxed.AuxContents("sale").NumRows(),
            engine_standard.AuxContents("sale").NumRows());
}

// Single-table MAX view: eliminable only under the relaxation.
TEST(AppendOnlyEliminationTest, MinMaxNoLongerBlocks) {
  RetailWarehouse standard = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesMaxView(standard.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation blocked,
                          Derivation::Derive(def, standard.catalog));
  EXPECT_FALSE(blocked.aux_for("sale").eliminated);

  MD_ASSERT_OK(standard.catalog.SetAppendOnly("sale", true));
  MD_ASSERT_OK_AND_ASSIGN(Derivation relaxed,
                          Derivation::Derive(def, standard.catalog));
  EXPECT_TRUE(relaxed.aux_for("sale").eliminated);
}

// Reconstruction from the compressed MIN/MAX columns matches the
// oracle.
TEST(AppendOnlyReconstructTest, MatchesOracle) {
  RetailWarehouse warehouse = AppendOnlyRetail();
  GpsjViewBuilder builder("minmax_view");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("product", "category", "Category")
      .Min("sale", "price", "MinPrice")
      .Max("sale", "price", "MaxPrice")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          builder.Build(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  // price is compressed into sum/min/max columns grouped by productid.
  EXPECT_EQ(derivation.aux_for("sale").plan.PlainColumnIndex("price"), -1);

  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(warehouse.catalog, derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  std::map<std::string, const Table*> aux;
  for (const auto& [name, table] : *materialized) {
    aux.emplace(name, &table);
  }
  MD_ASSERT_OK_AND_ASSIGN(Table reconstructed,
                          ReconstructView(derivation, aux));
  MD_ASSERT_OK_AND_ASSIGN(Table oracle,
                          EvaluateGpsj(warehouse.catalog, def));
  EXPECT_TRUE(TablesApproxEqual(reconstructed, oracle));
}

// The engine maintains MIN/MAX incrementally under insert streams —
// no group recomputation at all.
TEST(AppendOnlyEngineTest, InsertStreamsTrackOracleWithoutRecompute) {
  RetailWarehouse warehouse = AppendOnlyRetail();
  Catalog& source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, ProductSalesMaxView(source));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));
  RetailDeltaGenerator gen(41);
  for (int round = 0; round < 6; ++round) {
    Result<Delta> delta = gen.SaleInsertions(source, 40);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(engine.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    ASSERT_TRUE(TablesApproxEqual(view, oracle)) << "round " << round;
  }
  EXPECT_EQ(engine.stats().group_recomputes, 0u);
}

// With elimination: no fact detail at all, MIN/MAX still exact.
TEST(AppendOnlyEngineTest, EliminatedRootWithMinMax) {
  RetailWarehouse warehouse = AppendOnlyRetail();
  Catalog& source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, ProductSalesMaxView(source));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));
  EXPECT_FALSE(engine.HasAux("sale"));  // Eliminated (Sec. 3.3 + Sec. 4).

  RetailDeltaGenerator gen(42);
  for (int round = 0; round < 5; ++round) {
    Result<Delta> delta = gen.SaleInsertions(source, 30);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(engine.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    ASSERT_TRUE(TablesApproxEqual(view, oracle)) << "round " << round;
  }
}

TEST(AppendOnlyEngineTest, DeletesAndUpdatesRejected) {
  RetailWarehouse warehouse = AppendOnlyRetail();
  Catalog& source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, ProductSalesMaxView(source));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));

  const Table* sale = *source.GetTable("sale");
  Delta deletes;
  deletes.deletes.push_back(sale->row(0));
  EXPECT_EQ(engine.Apply("sale", deletes).code(),
            StatusCode::kFailedPrecondition);

  Delta updates;
  Tuple after = sale->row(0);
  after[4] = Value(1.5);
  updates.updates.push_back(Update{sale->row(0), after});
  EXPECT_EQ(engine.Apply("sale", updates).code(),
            StatusCode::kFailedPrecondition);
}

// A mixed-flag view (only some tables append-only) gets NO relaxation:
// deletions on the mutable table must stay possible, so MIN/MAX keep
// the plain column and the recompute path.
TEST(AppendOnlyEngineTest, PartialFlagsGetNoRelaxation) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK(warehouse.catalog.SetAppendOnly("sale", true));
  // time/product stay mutable.
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  EXPECT_FALSE(def.IsInsertOnly(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  EXPECT_FALSE(derivation.insert_only());
}

}  // namespace
}  // namespace mindetail
