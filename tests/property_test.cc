// Property tests: for random snowflake schemas, random GPSJ views, and
// random referentially-consistent delta streams, the self-maintenance
// engine — which never touches base tables after the initial load —
// must agree with direct re-evaluation over the mutated base tables.

#include <optional>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "snowflake_stream.h"
#include "test_util.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::GeneratedDelta;
using test::TablesApproxEqual;

struct PropertyCase {
  int depth;
  int fanout;
  uint64_t seed;
  bool non_csmas;  // Add MAX and COUNT DISTINCT outputs.
  bool fact_condition;
  bool append_only;  // All tables append-only; insert-only streams.
  bool exposed_dim = false;  // dim0 conditioned on `a` + flagged exposed;
                             // the stream updates `a` through the flag.

  std::string Name() const {
    std::string name = "d" + std::to_string(depth) + "f" +
                       std::to_string(fanout) + "s" +
                       std::to_string(seed);
    if (non_csmas) name += "_noncsmas";
    if (fact_condition) name += "_cond";
    if (append_only) name += "_appendonly";
    if (exposed_dim) name += "_exposed";
    return name;
  }
};

class SelfMaintenanceProperty
    : public ::testing::TestWithParam<PropertyCase> {};

// Builds the parameterized snowflake view (shared with the stress
// test; see snowflake_stream.h).
Result<GpsjViewDef> BuildView(const SnowflakeWarehouse& warehouse,
                              const PropertyCase& param) {
  test::SnowflakeViewFlags flags;
  flags.non_csmas = param.non_csmas;
  flags.fact_condition = param.fact_condition;
  flags.exposed_dim = param.exposed_dim;
  return test::BuildSnowflakeView(warehouse, flags);
}

GeneratedDelta MakeDelta(const SnowflakeWarehouse& warehouse,
                         const Catalog& source, Rng& rng,
                         const PropertyCase& param) {
  return test::MakeSnowflakeDelta(warehouse, source, rng,
                                  param.append_only);
}

TEST_P(SelfMaintenanceProperty, EngineTracksOracle) {
  const PropertyCase& param = GetParam();
  SnowflakeParams sp;
  sp.depth = param.depth;
  sp.fanout = param.fanout;
  sp.fact_rows = 300;
  sp.dim_rows = 25;
  sp.seed = param.seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  if (param.append_only) {
    MD_ASSERT_OK(warehouse.catalog.SetAppendOnly(warehouse.fact, true));
    for (const std::string& dim : warehouse.dims) {
      MD_ASSERT_OK(warehouse.catalog.SetAppendOnly(dim, true));
    }
  }
  if (param.exposed_dim && !warehouse.dims.empty()) {
    MD_ASSERT_OK(
        warehouse.catalog.SetExposedUpdates(warehouse.dims.front(), true));
  }
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, BuildView(warehouse, param));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));

  Rng rng(param.seed * 7919 + 13);
  for (int round = 0; round < 12; ++round) {
    GeneratedDelta generated = MakeDelta(warehouse, source, rng, param);
    if (generated.delta.Empty()) continue;
    MD_ASSERT_OK(engine.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    ASSERT_TRUE(TablesApproxEqual(view, oracle))
        << "round " << round << " after delta on " << generated.table;
  }
}

// The parallel sharded maintenance path must be indistinguishable from
// the serial engine: after every batch, engines running with 2 and 4
// threads must hold exactly the same auxiliary contents and render
// exactly the same view — same rows, same order, no numeric tolerance
// (the sharded path is constructed to preserve per-group floating-point
// accumulation order, not merely to approximate it).
TEST_P(SelfMaintenanceProperty, ParallelMatchesSerialExactly) {
  const PropertyCase& param = GetParam();
  SnowflakeParams sp;
  sp.depth = param.depth;
  sp.fanout = param.fanout;
  sp.fact_rows = 300;
  sp.dim_rows = 25;
  sp.seed = param.seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  if (param.append_only) {
    MD_ASSERT_OK(warehouse.catalog.SetAppendOnly(warehouse.fact, true));
    for (const std::string& dim : warehouse.dims) {
      MD_ASSERT_OK(warehouse.catalog.SetAppendOnly(dim, true));
    }
  }
  if (param.exposed_dim && !warehouse.dims.empty()) {
    MD_ASSERT_OK(
        warehouse.catalog.SetExposedUpdates(warehouse.dims.front(), true));
  }
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, BuildView(warehouse, param));

  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine serial,
                          SelfMaintenanceEngine::Create(source, def));
  // 1 exercises the explicit-options serial path; it must be the same
  // engine as the default-options baseline.
  const std::vector<int> thread_grid = {1, 2, 4};
  std::vector<SelfMaintenanceEngine> parallel;
  for (int threads : thread_grid) {
    EngineOptions options;
    options.num_threads = threads;
    MD_ASSERT_OK_AND_ASSIGN(
        SelfMaintenanceEngine engine,
        SelfMaintenanceEngine::Create(source, def, options));
    parallel.push_back(std::move(engine));
  }

  Rng rng(param.seed * 7919 + 13);
  for (int round = 0; round < 12; ++round) {
    GeneratedDelta generated = MakeDelta(warehouse, source, rng, param);
    if (generated.delta.Empty()) continue;
    MD_ASSERT_OK(serial.Apply(generated.table, generated.delta));
    for (SelfMaintenanceEngine& engine : parallel) {
      MD_ASSERT_OK(engine.Apply(generated.table, generated.delta));
    }
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    MD_ASSERT_OK_AND_ASSIGN(Table serial_view, serial.View());
    for (size_t p = 0; p < parallel.size(); ++p) {
      MD_ASSERT_OK_AND_ASSIGN(Table parallel_view, parallel[p].View());
      ASSERT_TRUE(test::TablesExactlyEqual(parallel_view, serial_view))
          << "view diverged at " << thread_grid[p] << " threads, round "
          << round << ", delta on " << generated.table;
      for (const std::string& table : def.tables()) {
        if (!serial.HasAux(table)) continue;
        ASSERT_TRUE(test::TablesExactlyEqual(parallel[p].AuxContents(table),
                                             serial.AuxContents(table)))
            << "aux view of '" << table << "' diverged at "
            << thread_grid[p] << " threads, round " << round;
      }
    }
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (int depth : {0, 1, 2, 3}) {
    for (int fanout : {1, 2}) {
      if (depth == 0 && fanout == 2) continue;  // Same as fanout 1.
      for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cases.push_back(PropertyCase{depth, fanout, seed, false, false,
                                     false});
        cases.push_back(PropertyCase{depth, fanout, seed, true, false,
                                     false});
        cases.push_back(PropertyCase{depth, fanout, seed, false, true,
                                     false});
        // Insert-only relaxation: MIN/MAX maintained incrementally.
        cases.push_back(PropertyCase{depth, fanout, seed, true, false,
                                     true});
        if (depth > 0) {
          // Exposed updates on the first dimension.
          cases.push_back(PropertyCase{depth, fanout, seed, false, false,
                                       false, /*exposed_dim=*/true});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfMaintenanceProperty, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.Name();
    });

}  // namespace
}  // namespace mindetail
