// Property tests: for random snowflake schemas, random GPSJ views, and
// random referentially-consistent delta streams, the self-maintenance
// engine — which never touches base tables after the initial load —
// must agree with direct re-evaluation over the mutated base tables.

#include <optional>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "test_util.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::TablesApproxEqual;

struct PropertyCase {
  int depth;
  int fanout;
  uint64_t seed;
  bool non_csmas;  // Add MAX and COUNT DISTINCT outputs.
  bool fact_condition;
  bool append_only;  // All tables append-only; insert-only streams.
  bool exposed_dim = false;  // dim0 conditioned on `a` + flagged exposed;
                             // the stream updates `a` through the flag.

  std::string Name() const {
    std::string name = "d" + std::to_string(depth) + "f" +
                       std::to_string(fanout) + "s" +
                       std::to_string(seed);
    if (non_csmas) name += "_noncsmas";
    if (fact_condition) name += "_cond";
    if (append_only) name += "_appendonly";
    if (exposed_dim) name += "_exposed";
    return name;
  }
};

class SelfMaintenanceProperty
    : public ::testing::TestWithParam<PropertyCase> {};

// Builds a view over the whole snowflake: group by a couple of
// dimension attributes, aggregate the fact measures.
Result<GpsjViewDef> BuildView(const SnowflakeWarehouse& warehouse,
                              const PropertyCase& param) {
  GpsjViewBuilder builder("property_view");
  builder.From(warehouse.fact);
  for (const std::string& dim : warehouse.dims) {
    builder.From(dim);
    builder.Join(warehouse.parent.at(dim), warehouse.link_attr.at(dim),
                 dim);
  }
  if (!warehouse.dims.empty()) {
    builder.GroupBy(warehouse.dims.front(), "a", "GroupA");
    if (warehouse.dims.size() > 1) {
      builder.GroupBy(warehouse.dims.back(), "a", "GroupB");
    }
    // SUM over m1 is only legal when m1 is not a group-by attribute.
    builder.Sum(warehouse.fact, "m1", "SumM1");
  } else {
    builder.GroupBy(warehouse.fact, "m1", "GroupM1");
  }
  builder.CountStar("Cnt").Avg(warehouse.fact, "m2", "AvgM2").Sum(
      warehouse.fact, "m2", "SumM2");
  if (param.non_csmas) {
    builder.Max(warehouse.fact, "m2", "MaxM2");
    if (!warehouse.dims.empty()) {
      builder.CountDistinct(warehouse.dims.front(), "s", "DistinctS");
    }
  }
  if (param.fact_condition) {
    builder.Where(warehouse.fact, "m1", CompareOp::kGe,
                  Value(int64_t{2}));
  }
  if (param.exposed_dim && !warehouse.dims.empty()) {
    // A selection on the exposed dimension's `a` attribute; updates to
    // `a` flow through the exposed-update machinery (delete+insert with
    // join reductions disabled for that dimension).
    builder.Where(warehouse.dims.front(), "a", CompareOp::kLe,
                  Value(int64_t{2}));
  }
  return builder.Build(warehouse.catalog);
}

// One random, RI-consistent change batch against a random table.
struct GeneratedDelta {
  std::string table;
  Delta delta;
};

GeneratedDelta MakeDelta(const SnowflakeWarehouse& warehouse,
                         const Catalog& source, Rng& rng,
                         const PropertyCase& param) {
  GeneratedDelta out;
  const int choice = static_cast<int>(rng.NextBelow(10));
  const Table* fact = *source.GetTable(warehouse.fact);

  if (choice < 5 || warehouse.dims.empty()) {
    // Fact batch: inserts referencing existing dims, deletes, updates.
    // Append-only runs produce pure insert streams.
    out.table = warehouse.fact;
    int64_t next_id = 0;
    for (const Tuple& row : fact->rows()) {
      next_id = std::max(next_id, row[0].AsInt64());
    }
    ++next_id;
    const size_t ins = rng.NextBelow(12);
    const size_t del = param.append_only ? 0 : rng.NextBelow(8);
    const size_t upd = param.append_only ? 0 : rng.NextBelow(6);
    const size_t fk_count = fact->schema().size() - 3;  // id, …, m1, m2.
    for (size_t i = 0; i < ins; ++i) {
      Tuple row = {Value(next_id++)};
      for (size_t f = 0; f < fk_count; ++f) {
        // Reference an existing row of the corresponding dimension.
        const std::string fk_attr = fact->schema().attribute(1 + f).name;
        const std::string dim = fk_attr.substr(3);  // strip "fk_".
        const Table* dim_table = *source.GetTable(dim);
        row.push_back(
            dim_table->row(rng.NextBelow(dim_table->NumRows()))[0]);
      }
      row.push_back(Value(rng.NextInt(0, 9)));
      row.push_back(Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0));
      out.delta.inserts.push_back(std::move(row));
    }
    std::set<int64_t> touched;
    for (size_t i = 0; i < del && fact->NumRows() > 0; ++i) {
      const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
      if (!touched.insert(row[0].AsInt64()).second) continue;
      out.delta.deletes.push_back(row);
    }
    for (size_t i = 0; i < upd && fact->NumRows() > 0; ++i) {
      const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
      if (!touched.insert(row[0].AsInt64()).second) continue;
      Tuple after = row;
      after[after.size() - 2] = Value(rng.NextInt(0, 9));
      after[after.size() - 1] =
          Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0);
      out.delta.updates.push_back(Update{row, std::move(after)});
    }
    return out;
  }

  // Dimension batch: updates to preserved attributes (a, b, s) and —
  // for leaf dimensions — fresh inserts. `a` of an exposed-flagged dim
  // exercises the exposed-update path when a condition references it;
  // here `a` is only preserved, so updates are protected, not exposed.
  const std::string dim =
      warehouse.dims[rng.NextBelow(warehouse.dims.size())];
  out.table = dim;
  const Table* dim_table = *source.GetTable(dim);
  const size_t upd = param.append_only ? 0 : 1 + rng.NextBelow(4);
  std::set<int64_t> touched;
  for (size_t i = 0; i < upd; ++i) {
    const Tuple& row = dim_table->row(rng.NextBelow(dim_table->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    Tuple after = row;
    const size_t a_idx = *dim_table->schema().IndexOf("a");
    const size_t s_idx = *dim_table->schema().IndexOf("s");
    after[a_idx] = Value(rng.NextInt(0, 4));
    after[s_idx] = Value(std::string("v") +
                         std::to_string(rng.NextInt(0, 6)));
    out.delta.updates.push_back(Update{row, std::move(after)});
  }
  // Leaf dims (no children in the fact's FK list) can take fresh rows.
  if (warehouse.link_attr.count(dim) > 0 && rng.NextBool(0.4)) {
    int64_t next_id = 0;
    for (const Tuple& row : dim_table->rows()) {
      next_id = std::max(next_id, row[0].AsInt64());
    }
    Tuple fresh = {Value(next_id + 1)};
    // Child link attributes of this dim, if any, must reference
    // existing rows.
    for (size_t c = 1; c + 3 < dim_table->schema().size() + 0; ++c) {
      const std::string& name = dim_table->schema().attribute(c).name;
      if (name.rfind("fk_", 0) != 0) break;
      const Table* child = *source.GetTable(name.substr(3));
      fresh.push_back(child->row(rng.NextBelow(child->NumRows()))[0]);
    }
    fresh.push_back(Value(rng.NextInt(0, 4)));
    fresh.push_back(Value(static_cast<double>(rng.NextInt(2, 40)) / 2.0));
    fresh.push_back(
        Value(std::string("v") + std::to_string(rng.NextInt(0, 6))));
    out.delta.inserts.push_back(std::move(fresh));
  }
  return out;
}

TEST_P(SelfMaintenanceProperty, EngineTracksOracle) {
  const PropertyCase& param = GetParam();
  SnowflakeParams sp;
  sp.depth = param.depth;
  sp.fanout = param.fanout;
  sp.fact_rows = 300;
  sp.dim_rows = 25;
  sp.seed = param.seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  if (param.append_only) {
    MD_ASSERT_OK(warehouse.catalog.SetAppendOnly(warehouse.fact, true));
    for (const std::string& dim : warehouse.dims) {
      MD_ASSERT_OK(warehouse.catalog.SetAppendOnly(dim, true));
    }
  }
  if (param.exposed_dim && !warehouse.dims.empty()) {
    MD_ASSERT_OK(
        warehouse.catalog.SetExposedUpdates(warehouse.dims.front(), true));
  }
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, BuildView(warehouse, param));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));

  Rng rng(param.seed * 7919 + 13);
  for (int round = 0; round < 12; ++round) {
    GeneratedDelta generated = MakeDelta(warehouse, source, rng, param);
    if (generated.delta.Empty()) continue;
    MD_ASSERT_OK(engine.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    ASSERT_TRUE(TablesApproxEqual(view, oracle))
        << "round " << round << " after delta on " << generated.table;
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (int depth : {0, 1, 2, 3}) {
    for (int fanout : {1, 2}) {
      if (depth == 0 && fanout == 2) continue;  // Same as fanout 1.
      for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cases.push_back(PropertyCase{depth, fanout, seed, false, false,
                                     false});
        cases.push_back(PropertyCase{depth, fanout, seed, true, false,
                                     false});
        cases.push_back(PropertyCase{depth, fanout, seed, false, true,
                                     false});
        // Insert-only relaxation: MIN/MAX maintained incrementally.
        cases.push_back(PropertyCase{depth, fanout, seed, true, false,
                                     true});
        if (depth > 0) {
          // Exposed updates on the first dimension.
          cases.push_back(PropertyCase{depth, fanout, seed, false, false,
                                       false, /*exposed_dim=*/true});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfMaintenanceProperty, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.Name();
    });

}  // namespace
}  // namespace mindetail
