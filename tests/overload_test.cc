// Overload-protection units and system tests: cooperative cancellation
// (tokens, deadlines, injectable clocks), hierarchical memory budgets,
// the ingest admission controller, result-cache byte eviction, WAL
// append withdrawal (AbortLast), and the warehouse-level guarantees —
// a cancelled batch leaves every view, the WAL, and the sequence
// bit-identical to the batch never arriving; a cancelled or
// deadline-expired query returns without publishing or caching
// anything; a budget-refused query returns kResourceExhausted instead
// of materializing.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/mem_budget.h"
#include "gtest/gtest.h"
#include "maintenance/admission.h"
#include "maintenance/wal.h"
#include "maintenance/warehouse.h"
#include "replication/follower.h"
#include "serve/result_cache.h"
#include "test_util.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::TablesExactlyEqual;

constexpr char kViewSql[] = R"sql(
  CREATE VIEW by_time_brand AS
  SELECT time.id, product.brand, SUM(sale.price) AS Total,
         COUNT(*) AS Cnt
  FROM sale, time, product
  WHERE sale.timeid = time.id AND sale.productid = product.id
  GROUP BY time.id, product.brand
)sql";

// A query only the auxiliary-view join can answer (sale.productid is
// not a group-by output of the view).
constexpr char kAuxJoinSql[] =
    "SELECT sale.productid, SUM(sale.price) AS T, COUNT(*) AS C "
    "FROM sale, time, product "
    "WHERE sale.timeid = time.id AND sale.productid = product.id "
    "GROUP BY sale.productid";

// A summary roll-up query (answerable from the augmented summary).
constexpr char kRollupSql[] =
    "SELECT product.brand, SUM(sale.price) AS T, COUNT(*) AS C "
    "FROM sale, time, product "
    "WHERE sale.timeid = time.id AND sale.productid = product.id "
    "GROUP BY product.brand";

std::map<std::string, Delta> OneSale(int64_t id) {
  Delta delta;
  delta.inserts.push_back(
      {Value(id), Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{7})});
  std::map<std::string, Delta> changes;
  changes.emplace("sale", std::move(delta));
  return changes;
}

std::string FreshTempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// A clock whose copies all share one counter: returns 0 for the first
// `free_calls` reads, then a far-future instant — so a Deadline::After
// deadline trips exactly at the (free_calls+1)-th check, wherever in
// the pipeline that lands.
MonotonicClock TripAfterCalls(int free_calls) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  return [calls, free_calls]() -> int64_t {
    return calls->fetch_add(1) < free_calls ? 0 : (int64_t{1} << 60);
  };
}

// -------------------------------------------------------------------
// Cancellation primitives.
// -------------------------------------------------------------------

TEST(CancellationTest, DefaultTokenNeverCancels) {
  CancellationToken token;
  MD_EXPECT_OK(token.Check());
  EXPECT_FALSE(token.can_cancel());
  EXPECT_TRUE(token.deadline().unlimited());
}

TEST(CancellationTest, SourceTripsEveryCopy) {
  CancellationSource source;
  CancellationToken token = source.token();
  CancellationToken copy = token;
  MD_EXPECT_OK(token.Check());
  source.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(copy.Check().code(), StatusCode::kCancelled);
  EXPECT_TRUE(source.cancelled());
}

TEST(CancellationTest, DeadlineExpiresOnInjectedClock) {
  // Clock: 0 at After(), far future on the next read.
  CancellationToken token(Deadline::After(5, TripAfterCalls(1)));
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTest, NonPositiveDeadlineIsUnlimited) {
  EXPECT_TRUE(Deadline::After(0).unlimited());
  EXPECT_TRUE(Deadline::After(-3).unlimited());
  EXPECT_FALSE(Deadline::After(1000).unlimited());
}

TEST(CancellationTest, CancelWinsOverExpiredDeadline) {
  CancellationSource source;
  source.Cancel();
  CancellationToken token =
      source.TokenWithDeadline(Deadline::After(5, TripAfterCalls(1)));
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, MergedWithKeepsTheStricterDeadline) {
  // An unlimited deadline never wins over a set one.
  CancellationToken unlimited;
  CancellationToken merged = unlimited.MergedWith(
      Deadline::After(5, TripAfterCalls(1)));
  EXPECT_EQ(merged.Check().code(), StatusCode::kDeadlineExceeded);
  // The original is untouched.
  MD_EXPECT_OK(unlimited.Check());
}

// -------------------------------------------------------------------
// Memory budgets.
// -------------------------------------------------------------------

TEST(MemoryBudgetTest, ChargesAndReleasesWithinLimit) {
  MemoryBudget budget("test", 100);
  MD_EXPECT_OK(budget.TryCharge(60));
  EXPECT_EQ(budget.used_bytes(), 60u);
  MD_EXPECT_OK(budget.TryCharge(40));
  EXPECT_EQ(budget.used_bytes(), 100u);
  budget.Release(100);
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 100u);
  EXPECT_EQ(budget.refusals(), 0u);
}

TEST(MemoryBudgetTest, RefusesOverLimitWithoutCharging) {
  MemoryBudget budget("test", 100);
  MD_EXPECT_OK(budget.TryCharge(90));
  const Status refused = budget.TryCharge(20);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used_bytes(), 90u);  // Unchanged by the refusal.
  EXPECT_EQ(budget.refusals(), 1u);
}

TEST(MemoryBudgetTest, ZeroLimitIsUnlimitedAccounting) {
  MemoryBudget budget("root");
  MD_EXPECT_OK(budget.TryCharge(uint64_t{1} << 40));
  EXPECT_EQ(budget.refusals(), 0u);
}

TEST(MemoryBudgetTest, ParentRefusalRollsBackChild) {
  MemoryBudget parent("parent", 100);
  MemoryBudget child("child", 1000, &parent);
  MD_EXPECT_OK(child.TryCharge(80));
  EXPECT_EQ(parent.used_bytes(), 80u);
  // Fits the child's own limit but not the parent's.
  const Status refused = child.TryCharge(50);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(child.used_bytes(), 80u);  // Local charge rolled back.
  EXPECT_EQ(parent.used_bytes(), 80u);
  child.Release(80);
  EXPECT_EQ(parent.used_bytes(), 0u);
}

TEST(MemoryBudgetTest, ReservationReleasesOnScopeExit) {
  MemoryBudget budget("test", 100);
  {
    // A reservation adopts bytes already charged and returns them when
    // it dies.
    MD_ASSERT_OK(budget.TryCharge(70));
    MemoryReservation reservation(&budget, 70);
    EXPECT_EQ(budget.used_bytes(), 70u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(budget.peak_bytes(), 70u);
}

// -------------------------------------------------------------------
// Admission controller.
// -------------------------------------------------------------------

TEST(OverloadControllerTest, FullWindowShedsWithRetryAfter) {
  OverloadController::Options options;
  options.max_inflight_batches = 2;
  OverloadController controller(options);
  MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit first,
                          controller.Admit(1));
  MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit second,
                          controller.Admit(1));
  Result<OverloadController::Permit> third = controller.Admit(1);
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(std::string(third.status().message()).find("retry after"),
            std::string::npos);
  OverloadStats stats = controller.Snapshot();
  EXPECT_EQ(stats.inflight, 2);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_GT(stats.last_retry_after_ms, 0);
  first.Release();
  MD_EXPECT_OK(controller.Admit(1).status());
  (void)second;
}

TEST(OverloadControllerTest, HeavyBatchesShedFirstUnderPressure) {
  OverloadController::Options options;
  options.max_inflight_batches = 4;
  options.heavy_batch_rows = 10;
  OverloadController controller(options);
  MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit a, controller.Admit(1));
  MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit b, controller.Admit(1));
  // Window half full: a heavy batch is refused while a light one still
  // passes.
  Result<OverloadController::Permit> heavy = controller.Admit(100);
  EXPECT_EQ(heavy.status().code(), StatusCode::kUnavailable);
  MD_EXPECT_OK(controller.Admit(1).status());
  OverloadStats stats = controller.Snapshot();
  EXPECT_EQ(stats.shed_heavy, 1u);
  (void)a;
  (void)b;
}

TEST(OverloadControllerTest, ConsecutiveShedsBackOffTheHint) {
  OverloadController::Options options;
  options.max_inflight_batches = 1;
  options.base_delay_ms = 1;
  options.max_delay_ms = 64;
  OverloadController controller(options);
  MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit only,
                          controller.Admit(1));
  std::vector<int> hints;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(controller.Admit(1).ok());
    hints.push_back(controller.Snapshot().last_retry_after_ms);
  }
  EXPECT_EQ(hints, (std::vector<int>{1, 2, 4, 8}));
  only.Release();
  // An admit resets the schedule.
  MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit next,
                          controller.Admit(1));
  next.Release();
  Result<OverloadController::Permit> again = controller.Admit(1);
  MD_EXPECT_OK(again.status());
}

TEST(OverloadControllerTest, PermitReleaseFoldsApplyLatency) {
  OverloadController::Options options;
  // 1 ms per clock read, shared across copies.
  auto ticks = std::make_shared<std::atomic<int64_t>>(0);
  options.clock = [ticks]() {
    return ticks->fetch_add(1'000'000) + 1'000'000;
  };
  OverloadController controller(options);
  {
    MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit permit,
                            controller.Admit(1));
    permit.Release();
  }
  EXPECT_GT(controller.Snapshot().apply_latency_ewma_ms, 0.0);
}

TEST(OverloadControllerTest, DisabledWindowAlwaysAdmits) {
  OverloadController controller(OverloadController::Options{});
  for (int i = 0; i < 100; ++i) {
    MD_ASSERT_OK_AND_ASSIGN(OverloadController::Permit permit,
                            controller.Admit(1'000'000));
    permit.Release();
  }
  OverloadStats stats = controller.Snapshot();
  EXPECT_FALSE(stats.admission_enabled);
  EXPECT_EQ(stats.admitted, 100u);
  EXPECT_EQ(stats.shed, 0u);
}

// -------------------------------------------------------------------
// Result-cache byte eviction.
// -------------------------------------------------------------------

Table SmallTable(const std::string& name, int rows) {
  Table table(name, Schema({{"k", ValueType::kInt64},
                            {"v", ValueType::kInt64}}));
  for (int i = 0; i < rows; ++i) {
    MD_CHECK(table.Insert({Value(int64_t{i}), Value(int64_t{i * 7})}).ok());
  }
  return table;
}

TEST(ResultCacheBytesTest, ByteCapEvictsFromLruTail) {
  auto result = std::make_shared<const Table>(SmallTable("r", 8));
  const uint64_t one = result->ActualSizeBytes();
  // Room for two results by bytes, many by entry count.
  ResultCache cache(/*capacity=*/100, /*capacity_bytes=*/2 * one + 1);
  cache.Insert("q1", "v", 1, result);
  cache.Insert("q2", "v", 1, std::make_shared<const Table>(*result));
  EXPECT_EQ(cache.stats().bytes_used, 2 * one);
  cache.Insert("q3", "v", 1, std::make_shared<const Table>(*result));
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(stats.byte_evictions, 1u);
  EXPECT_EQ(stats.bytes_evicted, one);
  EXPECT_EQ(stats.bytes_used, 2 * one);
  // Entry-count LRU evictions are counted separately and stayed zero.
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultCacheBytesTest, OversizedResultIsNotCachedAtAll) {
  auto big = std::make_shared<const Table>(SmallTable("big", 64));
  ResultCache cache(/*capacity=*/100,
                    /*capacity_bytes=*/big->ActualSizeBytes() - 1);
  cache.Insert("huge", "v", 1, big);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().bytes_used, 0u);
}

TEST(ResultCacheBytesTest, EntryCountEvictionReturnsBytes) {
  auto result = std::make_shared<const Table>(SmallTable("r", 4));
  const uint64_t one = result->ActualSizeBytes();
  ResultCache cache(/*capacity=*/2);  // No byte cap.
  cache.Insert("q1", "v", 1, result);
  cache.Insert("q2", "v", 1, std::make_shared<const Table>(*result));
  cache.Insert("q3", "v", 1, std::make_shared<const Table>(*result));
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.byte_evictions, 0u);
  EXPECT_EQ(stats.bytes_used, 2 * one);
}

// -------------------------------------------------------------------
// WAL append withdrawal.
// -------------------------------------------------------------------

TEST(WalAbortTest, AbortLastLeavesLogBitIdenticalToNeverAppending) {
  const std::string dir = FreshTempDir("mindetail_wal_abort");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal.log";
  MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
  MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindTransaction, OneSale(1)));
  const uint64_t size_after_first = wal.size_bytes();
  MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindTransaction, OneSale(2)));
  MD_ASSERT_OK(wal.AbortLast(2));
  EXPECT_EQ(wal.size_bytes(), size_after_first);
  EXPECT_EQ(wal.last_sequence(), 1u);
  EXPECT_EQ(wal.num_records(), 1u);
  MD_ASSERT_OK_AND_ASSIGN(std::vector<WriteAheadLog::Record> records,
                          WriteAheadLog::ReadAll(path));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, 1u);
  // The withdrawn sequence is reusable.
  MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindTransaction, OneSale(3)));
  std::filesystem::remove_all(dir);
}

TEST(WalAbortTest, AbortRefusesAnythingButTheLastAppend) {
  const std::string dir = FreshTempDir("mindetail_wal_abort_refuse");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal.log";
  MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
  // Nothing appended yet.
  EXPECT_EQ(wal.AbortLast(0).code(), StatusCode::kFailedPrecondition);
  MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindTransaction, OneSale(1)));
  MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindTransaction, OneSale(2)));
  // Wrong sequence.
  EXPECT_EQ(wal.AbortLast(1).code(), StatusCode::kFailedPrecondition);
  // Only once: a second abort has nothing to withdraw.
  MD_ASSERT_OK(wal.AbortLast(2));
  EXPECT_EQ(wal.AbortLast(2).code(), StatusCode::kFailedPrecondition);
  // Reset clears abortability.
  MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindTransaction, OneSale(2)));
  MD_ASSERT_OK(wal.Reset());
  EXPECT_EQ(wal.AbortLast(2).code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Warehouse: cancelled batches.
// -------------------------------------------------------------------

TEST(WarehouseCancelTest, PreCancelledBatchLeavesZeroTrace) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK_AND_ASSIGN(Table before, warehouse.View("by_time_brand"));
  const uint64_t seq_before = warehouse.last_sequence();

  CancellationSource source;
  source.Cancel();
  const Status cancelled =
      warehouse.ApplyTransaction(OneSale(100), "", source.token());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);

  MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.View("by_time_brand"));
  EXPECT_TRUE(TablesExactlyEqual(before, after));
  EXPECT_EQ(warehouse.last_sequence(), seq_before);
  const WarehouseReport report = warehouse.Report();
  EXPECT_EQ(report.overload.cancelled_batches, 1u);
  EXPECT_EQ(report.ingest.failed, 0u);
  EXPECT_EQ(report.ingest.quarantined, 0u);
  // The identical batch may be resent verbatim and applies cleanly.
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneSale(100)));
  EXPECT_EQ(warehouse.last_sequence(), seq_before + 1);
}

TEST(WarehouseCancelTest, MidApplyDeadlineRollsBackLikeAFailure) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneSale(50)));
  MD_ASSERT_OK_AND_ASSIGN(Table before, warehouse.View("by_time_brand"));
  const uint64_t seq_before = warehouse.last_sequence();

  // Deadline trips on the third check — past the pre-log check, inside
  // the engine apply.
  CancellationToken token(Deadline::After(1, TripAfterCalls(3)));
  const Status cancelled =
      warehouse.ApplyTransaction(OneSale(101), "", token);
  EXPECT_EQ(cancelled.code(), StatusCode::kDeadlineExceeded);

  MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.View("by_time_brand"));
  EXPECT_TRUE(TablesExactlyEqual(before, after));
  EXPECT_EQ(warehouse.last_sequence(), seq_before);
  EXPECT_EQ(warehouse.Report().overload.cancelled_batches, 1u);
}

TEST(WarehouseCancelTest, DurableCancelledBatchLeavesNoWalTrace) {
  const std::string dir = FreshTempDir("mindetail_cancel_durable");
  Catalog catalog = PaperTable3Fixture();
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));
    MD_ASSERT_OK(warehouse.ApplyTransaction(OneSale(50)));
    MD_ASSERT_OK_AND_ASSIGN(Table before, warehouse.View("by_time_brand"));
    const uint64_t seq_before = warehouse.last_sequence();

    CancellationToken token(Deadline::After(1, TripAfterCalls(3)));
    const Status cancelled =
        warehouse.ApplyTransaction(OneSale(101), "", token);
    EXPECT_EQ(cancelled.code(), StatusCode::kDeadlineExceeded);
    MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.View("by_time_brand"));
    EXPECT_TRUE(TablesExactlyEqual(before, after));
    EXPECT_EQ(warehouse.last_sequence(), seq_before);
  }
  // Recovery replays the surviving WAL: the cancelled batch must not
  // reappear — its record was withdrawn, not merely skipped.
  MD_ASSERT_OK_AND_ASSIGN(Warehouse reopened, Warehouse::Open(dir));
  EXPECT_EQ(reopened.last_sequence(), 1u);
  MD_ASSERT_OK_AND_ASSIGN(Table recovered, reopened.View("by_time_brand"));
  // Same contents as a warehouse that never saw the cancelled batch.
  Warehouse oracle;
  MD_ASSERT_OK(oracle.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK(oracle.ApplyTransaction(OneSale(50)));
  MD_ASSERT_OK_AND_ASSIGN(Table expected, oracle.View("by_time_brand"));
  EXPECT_TRUE(TablesExactlyEqual(expected, recovered));
  std::filesystem::remove_all(dir);
}

TEST(WarehouseCancelTest, IngestAdmissionCountsAdmittedBatches) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse(WarehouseOptions{}.WithMaxInflightBatches(4));
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneSale(100)));
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneSale(101)));
  // A duplicate resend is acked before admission and not counted.
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneSale(101)));
  const WarehouseReport report = warehouse.Report();
  EXPECT_TRUE(report.overload.admission_enabled);
  EXPECT_EQ(report.overload.admitted, 2u);
  EXPECT_EQ(report.overload.inflight, 0);
  EXPECT_EQ(report.ingest.duplicates, 1u);
}

// -------------------------------------------------------------------
// Warehouse: governed queries.
// -------------------------------------------------------------------

TEST(QueryGovernorTest, ExpiredDeadlineReturnsWithoutCaching) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));

  CancellationToken token(Deadline::After(1, TripAfterCalls(1)));
  Result<Table> refused = warehouse.Query(kRollupSql, token);
  EXPECT_EQ(refused.status().code(), StatusCode::kDeadlineExceeded);

  const WarehouseReport report = warehouse.Report();
  EXPECT_EQ(report.overload.deadline_queries, 1u);
  EXPECT_EQ(report.cache.insertions, 0u);

  // The same query without a deadline answers and caches normally.
  MD_ASSERT_OK(warehouse.Query(kRollupSql).status());
  EXPECT_EQ(warehouse.Report().cache.insertions, 1u);
}

TEST(QueryGovernorTest, CancelledQueryReturnsWithoutCaching) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));
  CancellationSource source;
  source.Cancel();
  Result<Table> refused = warehouse.Query(kRollupSql, source.token());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);
  const WarehouseReport report = warehouse.Report();
  EXPECT_EQ(report.overload.cancelled_queries, 1u);
  EXPECT_EQ(report.cache.insertions, 0u);
}

TEST(QueryGovernorTest, MemoryBudgetRefusesAuxJoinMaterialization) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse(WarehouseOptions{}.WithQueryMemoryBudget(1));
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));

  // The roll-up path materializes nothing and stays under budget.
  MD_ASSERT_OK(warehouse.Query(kRollupSql).status());
  // The aux-join path must materialize the auxiliary inputs: refused.
  Result<Table> refused = warehouse.Query(kAuxJoinSql);
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  const WarehouseReport report = warehouse.Report();
  EXPECT_EQ(report.overload.budget_refusals, 1u);

  // A roomy budget answers the same query and tracks the peak.
  Warehouse roomy(WarehouseOptions{}.WithQueryMemoryBudget(64 << 20));
  MD_ASSERT_OK(roomy.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK(roomy.Query(kAuxJoinSql).status());
  EXPECT_GT(roomy.Report().query_memory_peak_bytes, 0u);
}

TEST(QueryGovernorTest, ExplainRendersGovernorFooterAndRejection) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse(WarehouseOptions{}
                          .WithQueryDeadline(2500)
                          .WithQueryMemoryBudget(1 << 20));
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          warehouse.ExplainQuery(kRollupSql));
  EXPECT_TRUE(explain.has_governor);
  EXPECT_EQ(explain.deadline_ms, 2500);
  EXPECT_EQ(explain.memory_budget_bytes, uint64_t{1} << 20);
  EXPECT_TRUE(explain.governor_rejection.empty());
  EXPECT_NE(explain.ToString().find("governor: deadline 2500 ms"),
            std::string::npos);

  // A tripped caller token records why Query() would refuse the plan.
  CancellationSource source;
  source.Cancel();
  MD_ASSERT_OK_AND_ASSIGN(
      QueryExplanation rejected,
      warehouse.ExplainQuery(kRollupSql, source.token()));
  EXPECT_FALSE(rejected.governor_rejection.empty());
  EXPECT_NE(rejected.ToString().find("governor rejection:"),
            std::string::npos);

  // Without any governor the footer stays absent — explain output is
  // byte-identical to the ungoverned warehouse.
  Warehouse plain;
  MD_ASSERT_OK(plain.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation bare,
                          plain.ExplainQuery(kRollupSql));
  EXPECT_FALSE(bare.has_governor);
  EXPECT_EQ(bare.ToString().find("governor"), std::string::npos);
}

TEST(QueryGovernorTest, ReportRendersOverloadSection) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse(WarehouseOptions{}.WithMaxInflightBatches(8));
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneSale(100)));
  const std::string text = warehouse.Report().ToString();
  EXPECT_NE(text.find("Overload: admission on"), std::string::npos);
  EXPECT_NE(text.find("cancelled:"), std::string::npos);
  EXPECT_NE(text.find("apply latency ewma"), std::string::npos);
}

// -------------------------------------------------------------------
// Replication: cancellable catch-up.
// -------------------------------------------------------------------

TEST(FollowerCancelTest, CancelledCatchUpStopsCleanlyAndResumes) {
  const std::string leader_dir = FreshTempDir("mindetail_cancel_leader");
  const std::string follower_dir = FreshTempDir("mindetail_cancel_follower");
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader, Warehouse::Open(leader_dir));
  MD_ASSERT_OK(leader.AddViewSql(catalog, kViewSql));
  MD_ASSERT_OK(leader.ApplyTransaction(OneSale(100)));
  MD_ASSERT_OK(leader.ApplyTransaction(OneSale(101)));

  MD_ASSERT_OK_AND_ASSIGN(
      replication::Follower follower,
      replication::Follower::Open(leader_dir, follower_dir));
  // A pre-cancelled round stops before replaying any frame; whatever
  // the bootstrap installed stays committed.
  CancellationSource source;
  source.Cancel();
  MD_ASSERT_OK_AND_ASSIGN(replication::Follower::Progress cancelled,
                          follower.CatchUp(source.token()));
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_EQ(cancelled.applied, 0u);
  // The next (uncancelled) round finishes the job.
  MD_ASSERT_OK_AND_ASSIGN(replication::Follower::Progress progress,
                          follower.CatchUp());
  EXPECT_FALSE(progress.cancelled);
  EXPECT_EQ(follower.applied_sequence(), leader.last_sequence());
  MD_ASSERT_OK_AND_ASSIGN(Table leader_view, leader.View("by_time_brand"));
  MD_ASSERT_OK_AND_ASSIGN(Table follower_view,
                          follower.warehouse().View("by_time_brand"));
  EXPECT_TRUE(TablesExactlyEqual(leader_view, follower_view));
  std::filesystem::remove_all(leader_dir);
  std::filesystem::remove_all(follower_dir);
}

}  // namespace
}  // namespace mindetail
