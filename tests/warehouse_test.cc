#include "maintenance/warehouse.h"

#include <filesystem>
#include <map>

#include "common/failpoint.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesApproxEqual;
using test::TablesExactlyEqual;

constexpr char kMonthlySql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

constexpr char kPerStoreSql[] = R"sql(
  CREATE VIEW per_store AS
  SELECT store.city, COUNT(*) AS Cnt, AVG(sale.price) AS AvgPrice
  FROM sale, store
  WHERE sale.storeid = store.id
  GROUP BY store.city
)sql";

Warehouse MakeWarehouse(Catalog& source) {
  Warehouse warehouse;
  MD_CHECK(warehouse.AddViewSql(source, kMonthlySql).ok());
  MD_CHECK(warehouse.AddViewSql(source, kPerStoreSql).ok());
  Result<GpsjViewDef> by_product = SalesByProductKeyView(source);
  MD_CHECK(by_product.ok());
  MD_CHECK(warehouse.AddView(source, *by_product).ok());
  return warehouse;
}

TEST(WarehouseTest, RegistrationAndLookup) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  EXPECT_EQ(warehouse.ViewNames(),
            (std::vector<std::string>{"monthly_sales", "per_store",
                                      "sales_by_product"}));
  EXPECT_TRUE(warehouse.HasView("per_store"));
  EXPECT_FALSE(warehouse.HasView("ghost"));
  EXPECT_EQ(warehouse.View("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(WarehouseTest, DuplicateRegistrationRejected) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  EXPECT_EQ(warehouse.AddViewSql(retail.catalog, kMonthlySql).code(),
            StatusCode::kAlreadyExists);
}

TEST(WarehouseTest, RemoveView) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  MD_ASSERT_OK(warehouse.RemoveView("per_store"));
  EXPECT_FALSE(warehouse.HasView("per_store"));
  EXPECT_EQ(warehouse.RemoveView("per_store").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(warehouse.ViewNames().size(), 2u);
}

TEST(WarehouseTest, RoutesDeltasToAllReferencingViews) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse = MakeWarehouse(source);

  RetailDeltaGenerator gen(51);
  for (int round = 0; round < 4; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(source, 20, 10, 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(warehouse.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
  }
  for (const std::string& name : warehouse.ViewNames()) {
    MD_ASSERT_OK_AND_ASSIGN(Table view, warehouse.View(name));
    MD_ASSERT_OK_AND_ASSIGN(
        Table oracle,
        EvaluateGpsj(source,
                     warehouse.engine(name).derivation().view()));
    EXPECT_TRUE(TablesApproxEqual(view, oracle)) << name;
  }
}

TEST(WarehouseTest, NonReferencingViewsIgnoreForeignTables) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse = MakeWarehouse(source);

  // Brand updates touch only sales_by_product (monthly_sales and
  // per_store do not reference product).
  RetailDeltaGenerator gen(52);
  Result<Delta> delta = gen.ProductBrandUpdates(source, 5);
  ASSERT_TRUE(delta.ok()) << delta.status();
  const uint64_t monthly_batches =
      warehouse.engine("monthly_sales").stats().batches_applied;
  MD_ASSERT_OK(warehouse.Apply("product", *delta));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("product"), *delta));
  EXPECT_EQ(warehouse.engine("monthly_sales").stats().batches_applied,
            monthly_batches);
  MD_ASSERT_OK_AND_ASSIGN(Table view, warehouse.View("sales_by_product"));
  MD_ASSERT_OK_AND_ASSIGN(
      Table oracle,
      EvaluateGpsj(source, warehouse.engine("sales_by_product")
                               .derivation()
                               .view()));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

TEST(WarehouseTest, FootprintAndReport) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  EXPECT_GT(warehouse.TotalDetailPaperSizeBytes(), 0u);
  EXPECT_GT(warehouse.TotalDetailActualSizeBytes(), 0u);
  const WarehouseReport structured = warehouse.Report();
  EXPECT_EQ(structured.views.size(), warehouse.ViewNames().size());
  EXPECT_GT(structured.total_detail_paper_bytes, 0u);
  const std::string report = structured.ToString();
  EXPECT_NE(report.find("monthly_sales"), std::string::npos);
  EXPECT_NE(report.find("eliminated"), std::string::npos);  // by_product.
  EXPECT_NE(report.find("Total current detail"), std::string::npos);
}

TEST(WarehouseTest, CombinedDetailStillBeatsReplication) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  uint64_t replication = 0;
  for (const char* table : {"sale", "time", "product", "store"}) {
    replication += (*retail.catalog.GetTable(table))->PaperSizeBytes();
  }
  // Even with three views each holding private auxiliary data, the
  // total stays below replicating the base tables once.
  EXPECT_LT(warehouse.TotalDetailPaperSizeBytes(), replication);
}

// Captures per-view state deep enough to prove bit-identity: rendered
// view, augmented summary (hidden accumulators included), and every
// materialized auxiliary view.
std::map<std::string, Table> CaptureState(const Warehouse& warehouse) {
  std::map<std::string, Table> state;
  for (const std::string& name : warehouse.ViewNames()) {
    const SelfMaintenanceEngine& engine = warehouse.engine(name);
    Result<Table> view = warehouse.View(name);
    MD_CHECK(view.ok());
    state.emplace(name + "/view", std::move(view).value());
    Result<Table> augmented = engine.RenderAugmentedSummary();
    MD_CHECK(augmented.ok());
    state.emplace(name + "/summary", std::move(augmented).value());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      state.emplace(name + "/aux/" + aux.base_table,
                    engine.AuxContents(aux.base_table));
    }
  }
  return state;
}

void ExpectStatesIdentical(const std::map<std::string, Table>& a,
                           const std::map<std::string, Table>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, table] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    EXPECT_TRUE(TablesExactlyEqual(table, it->second)) << key;
  }
}

// Satellite of the crash-safety work: a batch one engine rejects must
// leave every view — including engines that already applied it —
// bit-identical to the pre-batch state.
TEST(WarehouseAtomicityTest, MidBatchEngineFailureRollsBackEveryView) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(source, kMonthlySql));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kPerStoreSql));

  RetailDeltaGenerator gen(61);
  MD_ASSERT_OK_AND_ASSIGN(Delta warmup,
                          gen.MixedSaleBatch(source, 15, 5, 5));
  MD_ASSERT_OK(warehouse.Apply("sale", warmup));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), warmup));

  const std::map<std::string, Table> before = CaptureState(warehouse);
  const uint64_t monthly_batches =
      warehouse.engine("monthly_sales").stats().batches_applied;

  // Both views reference sale; monthly_sales (first in registration
  // order) applies the batch fully, then per_store fails at commit.
  MD_ASSERT_OK(Failpoints::Arm("engine.apply.commit",
                               Failpoints::Action::kError,
                               /*trigger_on_hit=*/2));
  MD_ASSERT_OK_AND_ASSIGN(Delta batch,
                          gen.MixedSaleBatch(source, 15, 5, 5));
  const Status failed = warehouse.Apply("sale", batch);
  Failpoints::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("failpoint"), std::string::npos)
      << failed;

  ExpectStatesIdentical(before, CaptureState(warehouse));
  EXPECT_EQ(warehouse.engine("monthly_sales").stats().batches_applied,
            monthly_batches);

  // A transient fault: the identical batch succeeds on retry, and the
  // warehouse converges to the oracle.
  MD_ASSERT_OK(warehouse.Apply("sale", batch));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), batch));
  for (const std::string& name : warehouse.ViewNames()) {
    MD_ASSERT_OK_AND_ASSIGN(Table view, warehouse.View(name));
    MD_ASSERT_OK_AND_ASSIGN(
        Table oracle,
        EvaluateGpsj(source, warehouse.engine(name).derivation().view()));
    EXPECT_TRUE(TablesApproxEqual(view, oracle)) << name;
  }
}

TEST(WarehouseAtomicityTest, FailureBeforeAckRollsBackAllEngines) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(source, kMonthlySql));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kPerStoreSql));
  const std::map<std::string, Table> before = CaptureState(warehouse);

  // Fires after every engine applied the batch: the rollback must undo
  // all of them, not just a failing suffix.
  MD_ASSERT_OK(Failpoints::Arm("warehouse.apply.before_ack",
                               Failpoints::Action::kError));
  RetailDeltaGenerator gen(62);
  MD_ASSERT_OK_AND_ASSIGN(Delta batch,
                          gen.MixedSaleBatch(source, 10, 5, 3));
  const Status failed = warehouse.Apply("sale", batch);
  Failpoints::DisarmAll();
  ASSERT_FALSE(failed.ok());
  ExpectStatesIdentical(before, CaptureState(warehouse));
}

// -------------------------------------------------------------------
// WarehouseOptions: the one options struct, its builder, and the
// optional per-view override (the migrated AddView overloads).
// -------------------------------------------------------------------

TEST(WarehouseOptionsTest, BuilderRoundTrips) {
  EngineOptions engine;
  engine.num_threads = 3;
  engine.prune_delta_joins = false;
  const WarehouseOptions options = WarehouseOptions{}
                                       .WithEngineDefaults(engine)
                                       .WithParallelism(4)
                                       .WithSyncWal(false);
  EXPECT_EQ(options.engine.num_threads, 3);
  EXPECT_FALSE(options.engine.prune_delta_joins);
  EXPECT_EQ(options.parallelism, 4);
  EXPECT_FALSE(options.sync_wal);
  // WithEngineThreads edits the engine defaults in place.
  EXPECT_EQ(WarehouseOptions{}.WithEngineThreads(8).engine.num_threads, 8);

  Warehouse warehouse(options);
  EXPECT_EQ(warehouse.options().parallelism, 4);
  EXPECT_EQ(warehouse.options().engine.num_threads, 3);

  WarehouseOptions changed = warehouse.options();
  changed.WithParallelism(1).WithEngineThreads(2);
  warehouse.set_options(changed);
  EXPECT_EQ(warehouse.options().parallelism, 1);
  EXPECT_EQ(warehouse.options().engine.num_threads, 2);
}

TEST(WarehouseOptionsTest, AddViewUsesDefaultsUnlessOverridden) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse(WarehouseOptions{}.WithEngineThreads(2));
  // No per-view options: the warehouse's engine defaults apply.
  MD_ASSERT_OK(warehouse.AddViewSql(source, kMonthlySql));
  EXPECT_EQ(warehouse.engine("monthly_sales").options().num_threads, 2);
  // A per-view override replaces the defaults wholesale.
  EngineOptions custom;
  custom.num_threads = 4;
  MD_ASSERT_OK(warehouse.AddViewSql(source, kPerStoreSql, custom));
  EXPECT_EQ(warehouse.engine("per_store").options().num_threads, 4);
  // The plain-def overload takes the same optional.
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef by_product,
                          SalesByProductKeyView(source));
  MD_ASSERT_OK(warehouse.AddView(source, by_product, EngineOptions{}));
  EXPECT_EQ(warehouse.engine("sales_by_product").options().num_threads, 1);
}

// Apply(table, delta) is documented as a thin wrapper over the
// single-entry ApplyTransaction: both must produce bit-identical state.
TEST(WarehouseTest, ApplyEqualsSingletonApplyTransaction) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse via_apply = MakeWarehouse(source);
  Warehouse via_transaction = MakeWarehouse(source);

  RetailDeltaGenerator gen(91);
  for (int round = 0; round < 4; ++round) {
    MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                            gen.MixedSaleBatch(source, 16, 8, 4));
    MD_ASSERT_OK(via_apply.Apply("sale", delta));
    MD_ASSERT_OK(via_transaction.ApplyTransaction({{"sale", delta}}));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
  }
  ExpectStatesIdentical(CaptureState(via_apply),
                        CaptureState(via_transaction));
}

// -------------------------------------------------------------------
// Cross-view parallel maintenance (options().parallelism > 1).
// -------------------------------------------------------------------

TEST(WarehouseParallelTest, ParallelApplyBitIdenticalToSerial) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse serial = MakeWarehouse(source);
  Warehouse parallel(WarehouseOptions{}.WithParallelism(4));
  MD_CHECK(parallel.AddViewSql(source, kMonthlySql).ok());
  MD_CHECK(parallel.AddViewSql(source, kPerStoreSql).ok());
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef by_product,
                          SalesByProductKeyView(source));
  MD_CHECK(parallel.AddView(source, by_product).ok());

  RetailDeltaGenerator gen(92);
  for (int round = 0; round < 5; ++round) {
    MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                            gen.MixedSaleBatch(source, 20, 10, 5));
    MD_ASSERT_OK(serial.Apply("sale", delta));
    MD_ASSERT_OK(parallel.Apply("sale", delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
  }
  ExpectStatesIdentical(CaptureState(serial), CaptureState(parallel));
}

TEST(WarehouseParallelTest, ConcurrentEngineFailureRollsBackEveryView) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse(WarehouseOptions{}.WithParallelism(2));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kMonthlySql));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kPerStoreSql));

  RetailDeltaGenerator gen(93);
  MD_ASSERT_OK_AND_ASSIGN(Delta warmup,
                          gen.MixedSaleBatch(source, 15, 5, 5));
  MD_ASSERT_OK(warehouse.Apply("sale", warmup));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), warmup));
  const std::map<std::string, Table> before = CaptureState(warehouse);

  // One of the two concurrently-applying engines fails at commit; every
  // engine — including any that already applied — must roll back.
  MD_ASSERT_OK(Failpoints::Arm("engine.apply.commit",
                               Failpoints::Action::kError));
  MD_ASSERT_OK_AND_ASSIGN(Delta batch,
                          gen.MixedSaleBatch(source, 15, 5, 5));
  const Status failed = warehouse.Apply("sale", batch);
  Failpoints::DisarmAll();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("failpoint"), std::string::npos)
      << failed;
  ExpectStatesIdentical(before, CaptureState(warehouse));

  // Transient: the identical batch succeeds on retry.
  MD_ASSERT_OK(warehouse.Apply("sale", batch));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), batch));
  for (const std::string& name : warehouse.ViewNames()) {
    MD_ASSERT_OK_AND_ASSIGN(Table view, warehouse.View(name));
    MD_ASSERT_OK_AND_ASSIGN(
        Table oracle,
        EvaluateGpsj(source, warehouse.engine(name).derivation().view()));
    EXPECT_TRUE(TablesApproxEqual(view, oracle)) << name;
  }
}

std::string FreshTempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(WarehouseDurabilityTest, CheckpointRecoverAndReplayBitIdentical) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  const std::string dir = FreshTempDir("mindetail_wh_recover");

  // An in-memory oracle applies the identical stream.
  Warehouse oracle;
  MD_ASSERT_OK(oracle.AddViewSql(source, kMonthlySql));
  MD_ASSERT_OK(oracle.AddViewSql(source, kPerStoreSql));

  RetailDeltaGenerator gen(73);
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse durable, Warehouse::Open(dir));
    EXPECT_TRUE(durable.durable());
    MD_ASSERT_OK(durable.AddViewSql(source, kMonthlySql));
    MD_ASSERT_OK(durable.AddViewSql(source, kPerStoreSql));
    for (int round = 0; round < 6; ++round) {
      MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                              gen.MixedSaleBatch(source, 12, 6, 3));
      MD_ASSERT_OK(durable.Apply("sale", delta));
      MD_ASSERT_OK(oracle.Apply("sale", delta));
      MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
      if (round == 2) MD_ASSERT_OK(durable.Checkpoint());
    }
    EXPECT_EQ(durable.last_sequence(), 6u);
    ExpectStatesIdentical(CaptureState(oracle), CaptureState(durable));
  }  // Dropped without a final checkpoint: the WAL carries rounds 3-5.

  MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered, Warehouse::Open(dir));
  EXPECT_EQ(recovered.last_sequence(), 6u);
  EXPECT_EQ(recovered.recovery_stats().checkpoint_sequence, 3u);
  EXPECT_EQ(recovered.recovery_stats().replayed_batches, 3u);
  EXPECT_EQ(recovered.recovery_stats().rejected_batches, 0u);
  ExpectStatesIdentical(CaptureState(oracle), CaptureState(recovered));

  // Recovery is not a dead end: further batches apply normally.
  MD_ASSERT_OK_AND_ASSIGN(Delta more, gen.MixedSaleBatch(source, 8, 4, 2));
  MD_ASSERT_OK(recovered.Apply("sale", more));
  MD_ASSERT_OK(oracle.Apply("sale", more));
  ExpectStatesIdentical(CaptureState(oracle), CaptureState(recovered));
  EXPECT_EQ(recovered.last_sequence(), 7u);

  std::filesystem::remove_all(dir);
}

TEST(WarehouseDurabilityTest, CheckpointOnlyRecoveryHasEmptyWal) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  const std::string dir = FreshTempDir("mindetail_wh_cp_only");
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse durable, Warehouse::Open(dir));
    MD_ASSERT_OK(durable.AddViewSql(source, kMonthlySql));
    RetailDeltaGenerator gen(81);
    MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                            gen.MixedSaleBatch(source, 10, 5, 2));
    MD_ASSERT_OK(durable.Apply("sale", delta));
    MD_ASSERT_OK(durable.Checkpoint());
  }
  MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered, Warehouse::Open(dir));
  EXPECT_EQ(recovered.recovery_stats().checkpoint_sequence, 1u);
  EXPECT_EQ(recovered.recovery_stats().replayed_batches, 0u);
  EXPECT_EQ(recovered.last_sequence(), 1u);
  const std::string report = recovered.DurabilityReport();
  EXPECT_NE(report.find(dir), std::string::npos) << report;
  std::filesystem::remove_all(dir);
}

TEST(WarehouseDurabilityTest, InMemoryWarehouseCannotCheckpoint) {
  Warehouse warehouse;
  EXPECT_FALSE(warehouse.durable());
  EXPECT_EQ(warehouse.Checkpoint().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mindetail
