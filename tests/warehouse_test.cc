#include "maintenance/warehouse.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesApproxEqual;

constexpr char kMonthlySql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

constexpr char kPerStoreSql[] = R"sql(
  CREATE VIEW per_store AS
  SELECT store.city, COUNT(*) AS Cnt, AVG(sale.price) AS AvgPrice
  FROM sale, store
  WHERE sale.storeid = store.id
  GROUP BY store.city
)sql";

Warehouse MakeWarehouse(Catalog& source) {
  Warehouse warehouse;
  MD_CHECK(warehouse.AddViewSql(source, kMonthlySql).ok());
  MD_CHECK(warehouse.AddViewSql(source, kPerStoreSql).ok());
  Result<GpsjViewDef> by_product = SalesByProductKeyView(source);
  MD_CHECK(by_product.ok());
  MD_CHECK(warehouse.AddView(source, *by_product).ok());
  return warehouse;
}

TEST(WarehouseTest, RegistrationAndLookup) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  EXPECT_EQ(warehouse.ViewNames(),
            (std::vector<std::string>{"monthly_sales", "per_store",
                                      "sales_by_product"}));
  EXPECT_TRUE(warehouse.HasView("per_store"));
  EXPECT_FALSE(warehouse.HasView("ghost"));
  EXPECT_EQ(warehouse.View("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(WarehouseTest, DuplicateRegistrationRejected) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  EXPECT_EQ(warehouse.AddViewSql(retail.catalog, kMonthlySql).code(),
            StatusCode::kAlreadyExists);
}

TEST(WarehouseTest, RemoveView) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  MD_ASSERT_OK(warehouse.RemoveView("per_store"));
  EXPECT_FALSE(warehouse.HasView("per_store"));
  EXPECT_EQ(warehouse.RemoveView("per_store").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(warehouse.ViewNames().size(), 2u);
}

TEST(WarehouseTest, RoutesDeltasToAllReferencingViews) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse = MakeWarehouse(source);

  RetailDeltaGenerator gen(51);
  for (int round = 0; round < 4; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(source, 20, 10, 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(warehouse.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
  }
  for (const std::string& name : warehouse.ViewNames()) {
    MD_ASSERT_OK_AND_ASSIGN(Table view, warehouse.View(name));
    MD_ASSERT_OK_AND_ASSIGN(
        Table oracle,
        EvaluateGpsj(source,
                     warehouse.engine(name).derivation().view()));
    EXPECT_TRUE(TablesApproxEqual(view, oracle)) << name;
  }
}

TEST(WarehouseTest, NonReferencingViewsIgnoreForeignTables) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse = MakeWarehouse(source);

  // Brand updates touch only sales_by_product (monthly_sales and
  // per_store do not reference product).
  RetailDeltaGenerator gen(52);
  Result<Delta> delta = gen.ProductBrandUpdates(source, 5);
  ASSERT_TRUE(delta.ok()) << delta.status();
  const uint64_t monthly_batches =
      warehouse.engine("monthly_sales").stats().batches_applied;
  MD_ASSERT_OK(warehouse.Apply("product", *delta));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("product"), *delta));
  EXPECT_EQ(warehouse.engine("monthly_sales").stats().batches_applied,
            monthly_batches);
  MD_ASSERT_OK_AND_ASSIGN(Table view, warehouse.View("sales_by_product"));
  MD_ASSERT_OK_AND_ASSIGN(
      Table oracle,
      EvaluateGpsj(source, warehouse.engine("sales_by_product")
                               .derivation()
                               .view()));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

TEST(WarehouseTest, FootprintAndReport) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  EXPECT_GT(warehouse.TotalDetailPaperSizeBytes(), 0u);
  EXPECT_GT(warehouse.TotalDetailActualSizeBytes(), 0u);
  const std::string report = warehouse.Report();
  EXPECT_NE(report.find("monthly_sales"), std::string::npos);
  EXPECT_NE(report.find("eliminated"), std::string::npos);  // by_product.
  EXPECT_NE(report.find("Total current detail"), std::string::npos);
}

TEST(WarehouseTest, CombinedDetailStillBeatsReplication) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse = MakeWarehouse(retail.catalog);
  uint64_t replication = 0;
  for (const char* table : {"sale", "time", "product", "store"}) {
    replication += (*retail.catalog.GetTable(table))->PaperSizeBytes();
  }
  // Even with three views each holding private auxiliary data, the
  // total stays below replicating the base tables once.
  EXPECT_LT(warehouse.TotalDetailPaperSizeBytes(), replication);
}

}  // namespace
}  // namespace mindetail
