#include "gpsj/evaluator.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;
using test::TablesApproxEqual;

TEST(EvaluatorTest, ProductSalesOnPaperFixture) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .CountDistinct("product", "brand", "DifferentBrands");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));

  // All six sales fall in month 1 of 1997:
  //   TotalPrice = 10+10+30+10+25+30 = 115, TotalCount = 6, brands = 2.
  ASSERT_EQ(view.NumRows(), 1u);
  EXPECT_EQ(view.row(0)[0], Value(1));
  EXPECT_EQ(view.row(0)[1], Value(115));
  EXPECT_EQ(view.row(0)[2], Value(6));
  EXPECT_EQ(view.row(0)[3], Value(2));
}

TEST(EvaluatorTest, GroupByProductGivesPerProductRows) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("per_product");
  builder.From("sale")
      .GroupBy("sale", "productid")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt")
      .Max("sale", "price", "MaxPrice");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));

  ASSERT_EQ(view.NumRows(), 2u);
  // Sorted by productid: product 1 → 30/3/10, product 2 → 85/3/30.
  EXPECT_EQ(view.row(0)[0], Value(1));
  EXPECT_EQ(view.row(0)[1], Value(30));
  EXPECT_EQ(view.row(0)[2], Value(3));
  EXPECT_EQ(view.row(0)[3], Value(10));
  EXPECT_EQ(view.row(1)[0], Value(2));
  EXPECT_EQ(view.row(1)[1], Value(85));
  EXPECT_EQ(view.row(1)[2], Value(3));
  EXPECT_EQ(view.row(1)[3], Value(30));
}

TEST(EvaluatorTest, ScalarAggregatesOverEmptySelection) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("empty_scalar");
  builder.From("sale")
      .Where("sale", "price", CompareOp::kGt, Value(int64_t{1000}))
      .CountStar("Cnt")
      .Sum("sale", "price", "Total");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));

  ASSERT_EQ(view.NumRows(), 1u);
  EXPECT_EQ(view.row(0)[0], Value(0));
  EXPECT_TRUE(view.row(0)[1].is_null());
}

TEST(EvaluatorTest, AvgIsSumOverCount) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("avg_view");
  builder.From("sale").GroupBy("sale", "timeid").Avg("sale", "price",
                                                     "AvgPrice");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));

  ASSERT_EQ(view.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(view.row(0)[1].AsDouble(), 50.0 / 3.0);  // timeid 1.
  EXPECT_DOUBLE_EQ(view.row(1)[1].AsDouble(), 65.0 / 3.0);  // timeid 2.
}

TEST(EvaluatorTest, LocalConditionFiltersJoinResults) {
  Catalog catalog = PaperTable3Fixture();
  // Push year = 1996: nothing matches.
  GpsjViewBuilder builder("none");
  builder.From("sale")
      .From("time")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1996}))
      .Join("sale", "timeid", "time")
      .GroupBy("time", "month")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));
  EXPECT_EQ(view.NumRows(), 0u);
}

TEST(EvaluatorTest, MatchesPaperViewOnGeneratedRetail) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(warehouse.catalog, def));
  // 12 days / second half = 1997 → months 1..? month = ((i-1)/30)%12+1
  // with 12 days → all month 1; year 1997 covers days 7..12.
  ASSERT_EQ(view.NumRows(), 1u);
  // TotalCount = 6 days × 3 stores × 6 products × 2 transactions.
  EXPECT_EQ(view.row(0)[2], Value(6 * 3 * 6 * 2));
}

TEST(EvaluatorTest, DisconnectedJoinGraphRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("cross");
  builder.From("time").From("product").GroupBy("time", "month").CountStar(
      "Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  Result<Table> result = EvaluateGpsj(catalog, def);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mindetail
