#include "core/estimate.h"

#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;

TEST(TableStatsTest, ExactDistinctCounts) {
  Catalog catalog = PaperTable3Fixture();
  TableStats stats = ComputeTableStats(**catalog.GetTable("sale"));
  EXPECT_EQ(stats.rows, 6u);
  EXPECT_EQ(stats.distinct.at("id"), 6u);
  EXPECT_EQ(stats.distinct.at("timeid"), 2u);
  EXPECT_EQ(stats.distinct.at("productid"), 2u);
  EXPECT_EQ(stats.distinct.at("price"), 3u);  // {10, 25, 30}.
}

TEST(EstimateTest, FixtureEstimateMatchesActualExactly) {
  // On the six-tuple fixture everything is exact: no local conditions
  // on sale, and the group cap 2×2 = 4 is the true group count.
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  MD_ASSERT_OK_AND_ASSIGN(auto stats,
                          ComputeAllStats(catalog, derivation));
  MD_ASSERT_OK_AND_ASSIGN(AuxSizeEstimate estimate,
                          EstimateAuxSize(derivation, "sale", stats));
  EXPECT_DOUBLE_EQ(estimate.rows, 4.0);
  EXPECT_EQ(estimate.paper_bytes, 4u * 4 * 4);
}

TEST(EstimateTest, LocalConditionScalesDimension) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .From("time")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .GroupBy("time", "month")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  MD_ASSERT_OK_AND_ASSIGN(auto stats,
                          ComputeAllStats(catalog, derivation));
  // time has one distinct year (1997) → equality selectivity 1.0: both
  // rows retained.
  MD_ASSERT_OK_AND_ASSIGN(AuxSizeEstimate time_estimate,
                          EstimateAuxSize(derivation, "time", stats));
  EXPECT_DOUBLE_EQ(time_estimate.rows, 2.0);
}

TEST(EstimateTest, TracksActualOnGeneratedRetail) {
  RetailParams params;
  params.days = 30;
  params.stores = 3;
  params.products = 100;
  params.products_sold_per_store_day = 100;  // Worst case: all sell.
  params.transactions_per_product = 3;
  params.daily_distinct_fraction = 1.0;
  MD_ASSERT_OK_AND_ASSIGN(RetailWarehouse warehouse,
                          GenerateRetail(params));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(auto stats,
                          ComputeAllStats(warehouse.catalog, derivation));
  MD_ASSERT_OK_AND_ASSIGN(AuxSizeEstimate estimate,
                          EstimateAuxSize(derivation, "sale", stats));

  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(warehouse.catalog,
                                                        def));
  const double actual =
      static_cast<double>(engine.AuxContents("sale").NumRows());
  // The independence-assumption estimate should land within 2x.
  EXPECT_GT(estimate.rows, actual / 2.0);
  EXPECT_LT(estimate.rows, actual * 2.0);

  MD_ASSERT_OK_AND_ASSIGN(uint64_t total,
                          EstimateTotalDetailBytes(derivation, stats));
  const uint64_t actual_total = engine.AuxPaperSizeBytes();
  EXPECT_GT(total, actual_total / 2);
  EXPECT_LT(total, actual_total * 2);
}

TEST(EstimateTest, EliminatedViewsCostNothing) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          SalesByProductKeyView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(auto stats,
                          ComputeAllStats(warehouse.catalog, derivation));
  MD_ASSERT_OK_AND_ASSIGN(AuxSizeEstimate estimate,
                          EstimateAuxSize(derivation, "sale", stats));
  EXPECT_TRUE(estimate.eliminated);
  EXPECT_EQ(estimate.paper_bytes, 0u);
}

TEST(EstimateTest, MissingStatsSurfaceErrors) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  std::map<std::string, TableStats> empty;
  EXPECT_EQ(EstimateAuxSize(derivation, "sale", empty).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mindetail
