#include "gpsj/parser.h"

#include "common/rng.h"

#include "gpsj/evaluator.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;
using test::TablesApproxEqual;

constexpr char kPaperSql[] = R"sql(
  CREATE VIEW product_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice,
         COUNT(*) AS TotalCount,
         COUNT(DISTINCT product.brand) AS DifferentBrands
  FROM sale, time, product
  WHERE time.year = 1997
    AND sale.timeid = time.id
    AND sale.productid = product.id
  GROUP BY time.month
)sql";

TEST(ParserTest, ParsesThePaperViewVerbatim) {
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ParseGpsjView(kPaperSql, catalog));
  EXPECT_EQ(def.name(), "product_sales");
  EXPECT_EQ(def.tables(),
            (std::vector<std::string>{"sale", "time", "product"}));
  ASSERT_EQ(def.outputs().size(), 4u);
  EXPECT_EQ(def.outputs()[0].output_name, "month");
  EXPECT_EQ(def.outputs()[1].output_name, "TotalPrice");
  EXPECT_EQ(def.outputs()[2].output_name, "TotalCount");
  EXPECT_EQ(def.outputs()[3].output_name, "DifferentBrands");
  EXPECT_EQ(def.joins().size(), 2u);
  EXPECT_EQ(def.LocalConditions("time").ToString(), "year = 1997");
}

TEST(ParserTest, ParsedViewEvaluatesLikeBuilderView) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef parsed,
                          ParseGpsjView(kPaperSql, warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef built,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table a, EvaluateGpsj(warehouse.catalog, parsed));
  MD_ASSERT_OK_AND_ASSIGN(Table b, EvaluateGpsj(warehouse.catalog, built));
  EXPECT_TRUE(TablesApproxEqual(a, b));
}

TEST(ParserTest, JoinOrientationFollowsTheKey) {
  Catalog catalog = PaperTable3Fixture();
  // Written backwards: time.id = sale.timeid still orients sale → time.
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView(R"sql(
        CREATE VIEW v AS
        SELECT time.month, COUNT(*) AS Cnt
        FROM sale, time
        WHERE time.id = sale.timeid
        GROUP BY time.month
      )sql",
                    catalog));
  ASSERT_EQ(def.joins().size(), 1u);
  EXPECT_EQ(def.joins()[0].from_table, "sale");
  EXPECT_EQ(def.joins()[0].from_attr, "timeid");
  EXPECT_EQ(def.joins()[0].to_table, "time");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView("create view V as select sale.timeid, sum(sale.price) "
                    "from sale group by sale.timeid",
                    catalog));
  EXPECT_EQ(def.name(), "V");
  // Default aggregate name.
  EXPECT_EQ(def.outputs()[1].output_name, "sum_price");
}

TEST(ParserTest, LiteralsAndOperators) {
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView(R"sql(
        CREATE VIEW v AS
        SELECT sale.timeid, COUNT(*) AS Cnt
        FROM sale, product
        WHERE sale.price >= 10 AND sale.price <> 25
          AND product.brand != 'Gamma'
          AND sale.productid = product.id
        GROUP BY sale.timeid;
      )sql",
                    catalog));
  EXPECT_EQ(def.LocalConditions("sale").conditions().size(), 2u);
  EXPECT_EQ(def.LocalConditions("product").conditions().size(), 1u);
}

TEST(ParserTest, CommentsAndSemicolonAccepted) {
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView("-- the paper's example, trimmed\n"
                    "CREATE VIEW v AS\n"
                    "SELECT sale.timeid, COUNT(*) AS Cnt -- trailing\n"
                    "FROM sale\n"
                    "GROUP BY sale.timeid;",
                    catalog));
  EXPECT_EQ(def.name(), "v");
}

TEST(ParserTest, MinMaxAvgAndFloatLiterals) {
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView(R"sql(
        CREATE VIEW v AS
        SELECT sale.timeid, MIN(sale.price), MAX(sale.price),
               AVG(sale.price)
        FROM sale
        WHERE sale.price < 100.5
        GROUP BY sale.timeid
      )sql",
                    catalog));
  EXPECT_EQ(def.outputs()[1].output_name, "min_price");
  EXPECT_EQ(def.outputs()[2].output_name, "max_price");
  EXPECT_EQ(def.outputs()[3].output_name, "avg_price");
}

TEST(ParserTest, DuplicateDefaultNamesGetSuffixes) {
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView("CREATE VIEW v AS SELECT sale.timeid, "
                    "SUM(sale.price), SUM(sale.price) "
                    "FROM sale GROUP BY sale.timeid",
                    catalog));
  EXPECT_EQ(def.outputs()[1].output_name, "sum_price");
  EXPECT_EQ(def.outputs()[2].output_name, "sum_price2");
}

// --- Error paths --------------------------------------------------------

void ExpectParseError(const char* sql, const char* fragment) {
  Catalog catalog = PaperTable3Fixture();
  Result<GpsjViewDef> result = ParseGpsjView(sql, catalog);
  ASSERT_FALSE(result.ok()) << "parsed unexpectedly: " << sql;
  EXPECT_NE(result.status().message().find(fragment), std::string::npos)
      << result.status();
}

TEST(ParserErrorTest, MissingCreateView) {
  ExpectParseError("SELECT sale.price FROM sale", "expected CREATE");
}

TEST(ParserErrorTest, UnterminatedString) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT sale.timeid, COUNT(*) FROM sale "
      "WHERE product.brand = 'oops GROUP BY sale.timeid",
      "unterminated string");
}

TEST(ParserErrorTest, SelectedAttributeNotGrouped) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT sale.timeid, sale.price, COUNT(*) "
      "FROM sale GROUP BY sale.timeid",
      "not in GROUP BY");
}

TEST(ParserErrorTest, GroupByAttributeNotSelected) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT COUNT(*) AS Cnt "
      "FROM sale GROUP BY sale.timeid",
      "not selected");
}

TEST(ParserErrorTest, JoinWithoutKey) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT sale.timeid, COUNT(*) "
      "FROM sale, product WHERE sale.price = product.brand "
      "GROUP BY sale.timeid",
      "matches no primary key");
}

TEST(ParserErrorTest, NonEqualityJoinRejected) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT sale.timeid, COUNT(*) "
      "FROM sale, product WHERE sale.productid < product.id "
      "GROUP BY sale.timeid",
      "join conditions must use '='");
}

TEST(ParserErrorTest, TrailingGarbage) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT sale.timeid, COUNT(*) FROM sale "
      "GROUP BY sale.timeid EXTRA",
      "trailing input");
}

TEST(ParserErrorTest, UnqualifiedAttributeRejected) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT month, COUNT(*) FROM time GROUP BY month",
      "expected '.'");
}

TEST(ParserErrorTest, UnknownTableSurfacesBuilderError) {
  ExpectParseError(
      "CREATE VIEW v AS SELECT ghost.a, COUNT(*) FROM ghost "
      "GROUP BY ghost.a",
      "not in catalog");
}

// Robustness: mutated inputs must produce a Status, never a crash.
TEST(ParserErrorTest, MutationFuzzNeverCrashes) {
  Catalog catalog = PaperTable3Fixture();
  const std::string base(kPaperSql);
  Rng rng(4096);
  int parse_failures = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const int op = static_cast<int>(rng.NextBelow(3));
    const size_t pos = rng.NextBelow(mutated.size());
    if (op == 0 && mutated.size() > 2) {
      // Delete a random span.
      const size_t len =
          std::min<size_t>(1 + rng.NextBelow(10), mutated.size() - pos);
      mutated.erase(pos, len);
    } else if (op == 1) {
      // Insert random punctuation.
      const char* junk[] = {",", "(", ")", "'", "\"", ".", "*", "=", "<"};
      mutated.insert(pos, junk[rng.NextBelow(9)]);
    } else {
      // Flip a character.
      mutated[pos] = static_cast<char>('!' + rng.NextBelow(90));
    }
    Result<GpsjViewDef> result = ParseGpsjView(mutated, catalog);
    if (!result.ok()) ++parse_failures;
  }
  // Most mutations break the statement; none may crash.
  EXPECT_GT(parse_failures, 200);
}

TEST(ParserErrorTest, ErrorsCarryPositions) {
  Catalog catalog = PaperTable3Fixture();
  Result<GpsjViewDef> result =
      ParseGpsjView("CREATE VIEW v AS\nSELECT ?", catalog);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("2:8"), std::string::npos)
      << result.status();
}

}  // namespace
}  // namespace mindetail
