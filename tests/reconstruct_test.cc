#include "core/reconstruct.h"

#include "gpsj/evaluator.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;
using test::TablesApproxEqual;

// Reconstruction from auxiliary views must equal direct evaluation over
// base tables — the paper's Sec. 1.1 claim ("the product_sales view can
// now be reconstructed from these three auxiliary views without ever
// accessing the original fact and dimension tables").
void ExpectReconstructionMatchesOracle(const Catalog& catalog,
                                       const GpsjViewDef& def) {
  Result<Derivation> derivation = Derivation::Derive(def, catalog);
  ASSERT_TRUE(derivation.ok()) << derivation.status();
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(catalog, *derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  std::map<std::string, const Table*> aux;
  for (const auto& [name, table] : *materialized) {
    aux.emplace(name, &table);
  }
  Result<Table> reconstructed = ReconstructView(*derivation, aux);
  ASSERT_TRUE(reconstructed.ok()) << reconstructed.status();
  Result<Table> oracle = EvaluateGpsj(catalog, def);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_TRUE(TablesApproxEqual(*reconstructed, *oracle));
}

TEST(ReconstructTest, ProductSalesOnPaperFixture) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .CountDistinct("product", "brand", "DifferentBrands");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  ExpectReconstructionMatchesOracle(catalog, def);
}

TEST(ReconstructTest, ProductSalesOnGeneratedRetail) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  ExpectReconstructionMatchesOracle(warehouse.catalog, def);
}

// The f(a · cnt0) rule: SUM over an attribute that stayed plain because
// MAX also uses it (the paper's product_sales_max walkthrough).
TEST(ReconstructTest, ScaledSumForPlainAttribute) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesMaxView(warehouse.catalog));
  ExpectReconstructionMatchesOracle(warehouse.catalog, def);
}

// SUM over a dimension attribute: every joined row stands for cnt0
// duplicates of the dimension value.
TEST(ReconstructTest, ScaledSumForDimensionAttribute) {
  Catalog catalog = PaperTable3Fixture();
  // Give product a numeric attribute by reusing id as the measure: SUM
  // over product.id weighted by duplicates.
  GpsjViewBuilder builder("weighted");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("sale", "timeid")
      .Sum("product", "id", "IdMass")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  ExpectReconstructionMatchesOracle(catalog, def);
}

TEST(ReconstructTest, AvgAndDistinctAggregates) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("mixed");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("sale", "timeid")
      .Avg("sale", "price", "AvgPrice")
      .SumDistinct("sale", "price", "DistinctPriceSum")
      .CountDistinct("product", "brand", "Brands")
      .Min("sale", "price", "MinPrice");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  ExpectReconstructionMatchesOracle(catalog, def);
}

TEST(ReconstructTest, EliminatedRootCannotReconstruct) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          SalesByProductKeyView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(warehouse.catalog, derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  std::map<std::string, const Table*> aux;
  for (const auto& [name, table] : *materialized) {
    aux.emplace(name, &table);
  }
  Result<Table> reconstructed = ReconstructView(derivation, aux);
  ASSERT_FALSE(reconstructed.ok());
  EXPECT_EQ(reconstructed.status().code(),
            StatusCode::kFailedPrecondition);
}

// Group-restricted reconstruction returns exactly the requested groups.
TEST(ReconstructTest, ReconstructGroupsFiltersToRequested) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("per_time");
  builder.From("sale")
      .GroupBy("sale", "timeid")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt")
      .Max("sale", "price", "MaxPrice");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(catalog, derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  std::map<std::string, const Table*> aux;
  for (const auto& [name, table] : *materialized) {
    aux.emplace(name, &table);
  }
  GroupKeySet groups;
  groups.insert(Tuple{Value(2)});
  Result<Table> partial = ReconstructGroups(derivation, aux, groups);
  ASSERT_TRUE(partial.ok()) << partial.status();
  ASSERT_EQ(partial->NumRows(), 1u);
  EXPECT_EQ(partial->row(0)[0], Value(2));
  EXPECT_EQ(partial->row(0)[1], Value(65));
  EXPECT_EQ(partial->row(0)[2], Value(3));
  EXPECT_EQ(partial->row(0)[3], Value(30));
}

}  // namespace
}  // namespace mindetail
