#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include "gtest/gtest.h"

namespace mindetail {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  int ran = 0;
  negative.ParallelFor(3, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 3);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(2, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 2);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyParallelFors) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 200L * (16 * 17 / 2));
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    pool.ParallelFor(kInner, [&](size_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, ManyMoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.ParallelFor(100001, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i % 7));
  });
  long expected = 0;
  for (size_t i = 0; i < 100001; ++i) expected += static_cast<long>(i % 7);
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace mindetail
