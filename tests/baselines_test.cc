#include "maintenance/baselines.h"

#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesApproxEqual;

TEST(FullReplicationTest, ViewMatchesOracleThroughChanges) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(FullReplicationMaintainer maintainer,
                          FullReplicationMaintainer::Create(source, def));
  RetailDeltaGenerator gen(21);
  for (int round = 0; round < 3; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(source, 10, 8, 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(maintainer.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, maintainer.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    EXPECT_TRUE(TablesApproxEqual(view, oracle)) << "round " << round;
  }
}

TEST(FullReplicationTest, StoresCompleteBaseTables) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      FullReplicationMaintainer maintainer,
      FullReplicationMaintainer::Create(warehouse.catalog, def));
  const Table* sale = *warehouse.catalog.GetTable("sale");
  EXPECT_EQ(maintainer.ReplicaContents("sale").NumRows(), sale->NumRows());
  EXPECT_GE(maintainer.DetailPaperSizeBytes(), sale->PaperSizeBytes());
}

TEST(PsjStyleTest, ViewMatchesOracleThroughChanges) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(PsjStyleMaintainer maintainer,
                          PsjStyleMaintainer::Create(source, def));
  RetailDeltaGenerator gen(22);
  for (int round = 0; round < 3; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(source, 10, 8, 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(maintainer.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, maintainer.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    EXPECT_TRUE(TablesApproxEqual(view, oracle)) << "round " << round;
  }
}

TEST(PsjStyleTest, DetailRetainsKeyAndOneRowPerTuple) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      PsjStyleMaintainer maintainer,
      PsjStyleMaintainer::Create(warehouse.catalog, def));
  const Table& detail = maintainer.DetailContents("sale");
  EXPECT_TRUE(detail.schema().Contains("id"));
  // One row per 1997 sale (year filter halves the days).
  MD_ASSERT_OK_AND_ASSIGN(const Table* sale,
                          warehouse.catalog.GetTable("sale"));
  EXPECT_LT(detail.NumRows(), sale->NumRows());
  EXPECT_GT(detail.NumRows(), 0u);
}

// The paper's central size claim, at test scale: compressed auxiliary
// views < PSJ detail < full replication.
TEST(BaselineComparisonTest, StorageOrderingHolds) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      FullReplicationMaintainer replication,
      FullReplicationMaintainer::Create(warehouse.catalog, def));
  MD_ASSERT_OK_AND_ASSIGN(
      PsjStyleMaintainer psj,
      PsjStyleMaintainer::Create(warehouse.catalog, def));
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine engine,
      SelfMaintenanceEngine::Create(warehouse.catalog, def));

  EXPECT_LT(engine.AuxPaperSizeBytes(), psj.DetailPaperSizeBytes());
  EXPECT_LT(psj.DetailPaperSizeBytes(),
            replication.DetailPaperSizeBytes());
}

// All three maintainers agree with each other after identical streams.
TEST(BaselineComparisonTest, AllMaintainersAgree) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(FullReplicationMaintainer replication,
                          FullReplicationMaintainer::Create(source, def));
  MD_ASSERT_OK_AND_ASSIGN(PsjStyleMaintainer psj,
                          PsjStyleMaintainer::Create(source, def));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));

  RetailDeltaGenerator gen(23);
  for (int round = 0; round < 3; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(source, 12, 6, 4);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(replication.Apply("sale", *delta));
    MD_ASSERT_OK(psj.Apply("sale", *delta));
    MD_ASSERT_OK(engine.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
  }
  MD_ASSERT_OK_AND_ASSIGN(Table a, replication.View());
  MD_ASSERT_OK_AND_ASSIGN(Table b, psj.View());
  MD_ASSERT_OK_AND_ASSIGN(Table c, engine.View());
  EXPECT_TRUE(TablesApproxEqual(a, b));
  EXPECT_TRUE(TablesApproxEqual(b, c));
}

}  // namespace
}  // namespace mindetail
