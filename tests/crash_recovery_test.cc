// Crash-safety harness: kills a child warehouse process at every
// registered failpoint and asserts the reopened warehouse is
// bit-identical to a never-crashed oracle fed the same deterministic
// change stream.
//
// The child (CrashChildProcess.Run, driver-only) opens a durable
// warehouse, registers two views, applies a fixed batch stream with a
// mid-stream checkpoint, and records every acknowledged sequence in a
// fsync'd ack file. The parent re-executes this binary with
// MINDETAIL_FAILPOINT=<site>:crash:<trigger>, expects either a clean
// exit or Failpoints::kCrashExitCode, then recovers and verifies:
//   * no acknowledged batch is lost (recovered sequence >= last ack),
//   * recovered state equals the oracle replayed to the same sequence,
//   * the recovered warehouse keeps accepting batches to stream end.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "maintenance/wal.h"
#include "maintenance/warehouse.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesExactlyEqual;

constexpr char kMonthlySql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

constexpr char kPerStoreSql[] = R"sql(
  CREATE VIEW per_store AS
  SELECT store.city, COUNT(*) AS Cnt, AVG(sale.price) AS AvgPrice
  FROM sale, store
  WHERE sale.storeid = store.id
  GROUP BY store.city
)sql";

constexpr uint64_t kCrashSeed = 4242;
constexpr int kBatches = 10;

WarehouseOptions CrashOptions() {
  // Exercise both parallel levels (cross-view + intra-view sharding)
  // under TSan too, with the retry loop engaged — a crash failpoint
  // still kills the process on its first hit, so retries change
  // nothing for injected crashes, but the recovery path then runs with
  // the production retry configuration.
  return WarehouseOptions{}
      .WithEngineThreads(2)
      .WithParallelism(2)
      .WithRetries(2);
}

std::string BatchKey(uint64_t i) { return StrCat("batch-", i); }

Result<Delta> NextBatch(RetailDeltaGenerator& gen, Catalog& source) {
  return gen.MixedSaleBatch(source, 12, 6, 3);
}

std::string AckPath(const std::string& dir) { return dir + "/acked"; }

// Durably records an acknowledged sequence (8 bytes LE, O_APPEND).
void AppendAck(const std::string& path, uint64_t sequence) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&sequence, sizeof(sequence), 1, f), 1u);
  ASSERT_EQ(std::fflush(f), 0);
  ASSERT_EQ(::fsync(::fileno(f)), 0);
  ASSERT_EQ(std::fclose(f), 0);
}

uint64_t LastAckedSequence(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return 0;
  const auto size = static_cast<uint64_t>(in.tellg());
  if (size < sizeof(uint64_t)) return 0;
  in.seekg(size - sizeof(uint64_t));
  uint64_t sequence = 0;
  in.read(reinterpret_cast<char*>(&sequence), sizeof(sequence));
  return sequence;
}

std::map<std::string, Table> CaptureState(const Warehouse& warehouse) {
  std::map<std::string, Table> state;
  for (const std::string& name : warehouse.ViewNames()) {
    const SelfMaintenanceEngine& engine = warehouse.engine(name);
    Result<Table> view = warehouse.View(name);
    MD_CHECK(view.ok());
    state.emplace(name + "/view", std::move(view).value());
    Result<Table> augmented = engine.RenderAugmentedSummary();
    MD_CHECK(augmented.ok());
    state.emplace(name + "/summary", std::move(augmented).value());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      state.emplace(name + "/aux/" + aux.base_table,
                    engine.AuxContents(aux.base_table));
    }
  }
  return state;
}

void ExpectStatesIdentical(const std::map<std::string, Table>& oracle,
                           const std::map<std::string, Table>& recovered) {
  ASSERT_EQ(oracle.size(), recovered.size());
  for (const auto& [key, table] : oracle) {
    auto it = recovered.find(key);
    ASSERT_NE(it, recovered.end()) << key;
    EXPECT_TRUE(TablesExactlyEqual(table, it->second)) << key;
  }
}

// The scenario a child process runs; the parent's oracle replays the
// same code without the failpoint and without durability.
//
// Driver-only: skipped unless MINDETAIL_CRASH_DIR is set.
TEST(CrashChildProcess, Run) {
  const char* dir_env = std::getenv("MINDETAIL_CRASH_DIR");
  if (dir_env == nullptr) GTEST_SKIP() << "driver-only child scenario";
  const std::string dir = dir_env;
  MD_ASSERT_OK(Failpoints::ArmFromEnv());

  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse,
                          Warehouse::Open(dir, CrashOptions()));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kMonthlySql));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kPerStoreSql));

  RetailDeltaGenerator gen(kCrashSeed);
  for (int i = 1; i <= kBatches; ++i) {
    MD_ASSERT_OK_AND_ASSIGN(Delta delta, NextBatch(gen, source));
    // An explicit idempotency key per batch — the parent resends the
    // in-flight batch after recovery to prove exactly-once ingestion.
    std::map<std::string, Delta> changes;
    changes.emplace("sale", delta);
    MD_ASSERT_OK(warehouse.ApplyTransaction(changes, BatchKey(i)));
    AppendAck(AckPath(dir), warehouse.last_sequence());
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
    if (i == kBatches / 2) MD_ASSERT_OK(warehouse.Checkpoint());
  }
}

std::string SelfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

void VerifyRecovery(const std::string& dir) {
  MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered,
                          Warehouse::Open(dir, CrashOptions()));
  const uint64_t acked = LastAckedSequence(AckPath(dir));
  // Durability contract: every acknowledged batch survives the crash.
  ASSERT_GE(recovered.last_sequence(), acked);
  const uint64_t n = recovered.last_sequence();

  // The oracle: a never-crashed in-memory warehouse fed the identical
  // stream up to the recovered sequence.
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse oracle(CrashOptions());
  const std::vector<std::string> views = recovered.ViewNames();
  // A crash during registration legitimately recovers fewer views;
  // mirror whatever registrations became durable.
  if (std::count(views.begin(), views.end(), "monthly_sales") > 0) {
    MD_ASSERT_OK(oracle.AddViewSql(source, kMonthlySql));
  }
  if (std::count(views.begin(), views.end(), "per_store") > 0) {
    MD_ASSERT_OK(oracle.AddViewSql(source, kPerStoreSql));
  }
  ASSERT_EQ(oracle.ViewNames(), views);

  RetailDeltaGenerator gen(kCrashSeed);
  std::map<std::string, Delta> last_applied;
  for (uint64_t i = 1; i <= n; ++i) {
    MD_ASSERT_OK_AND_ASSIGN(Delta delta, NextBatch(gen, source));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", delta);
    MD_ASSERT_OK(oracle.ApplyTransaction(changes, BatchKey(i)));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
    last_applied = std::move(changes);
  }
  ExpectStatesIdentical(CaptureState(oracle), CaptureState(recovered));

  // Exactly-once across the crash: the source cannot distinguish "my
  // batch crashed before it landed" from "it landed but the ack was
  // lost", so it resends the last batch. Whether the batch was
  // recovered from a checkpoint or replayed from the WAL tail, its
  // idempotency key must survive and the resend must be a no-op.
  if (n >= 1) {
    const uint64_t duplicates_before =
        recovered.ingest_stats().duplicates;
    MD_ASSERT_OK(recovered.ApplyTransaction(last_applied, BatchKey(n)));
    EXPECT_EQ(recovered.ingest_stats().duplicates, duplicates_before + 1);
    EXPECT_EQ(recovered.last_sequence(), n);
    ExpectStatesIdentical(CaptureState(oracle), CaptureState(recovered));
  }

  // A crash during view registration leaves the setup incomplete; the
  // restarting operator finishes it. Register the missing views on both
  // warehouses (the source is at the same stream position for each) so
  // the stream below always has somewhere to land — an empty recovered
  // warehouse would otherwise reject 'sale' batches as referencing an
  // unknown table, by design.
  if (std::count(views.begin(), views.end(), "monthly_sales") == 0) {
    MD_ASSERT_OK(recovered.AddViewSql(source, kMonthlySql));
    MD_ASSERT_OK(oracle.AddViewSql(source, kMonthlySql));
  }
  if (std::count(views.begin(), views.end(), "per_store") == 0) {
    MD_ASSERT_OK(recovered.AddViewSql(source, kPerStoreSql));
    MD_ASSERT_OK(oracle.AddViewSql(source, kPerStoreSql));
  }

  // Recovery is not a dead end: drive the stream to its end on both.
  for (uint64_t i = n + 1; i <= kBatches; ++i) {
    MD_ASSERT_OK_AND_ASSIGN(Delta delta, NextBatch(gen, source));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", delta);
    MD_ASSERT_OK(recovered.ApplyTransaction(changes, BatchKey(i)));
    MD_ASSERT_OK(oracle.ApplyTransaction(changes, BatchKey(i)));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
  }
  ExpectStatesIdentical(CaptureState(oracle), CaptureState(recovered));
}

TEST(CrashRecoveryTest, KillAtEveryFailpointRecoversExactly) {
  const std::string exe = SelfExePath();
  ASSERT_FALSE(exe.empty());
  int crashes = 0;
  for (const std::string& site : Failpoints::KnownSites()) {
    for (int trigger : {1, 4}) {
      SCOPED_TRACE(StrCat(site, ":crash:", trigger));
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           StrCat("mindetail_crash_", site, "_", trigger))
              .string();
      std::filesystem::remove_all(dir);

      const std::string cmd = StrCat(
          "MINDETAIL_CRASH_DIR='", dir, "' MINDETAIL_FAILPOINT='", site,
          ":crash:", trigger, "' '", exe,
          "' --gtest_filter=CrashChildProcess.Run >/dev/null 2>&1");
      const int rc = std::system(cmd.c_str());
      ASSERT_TRUE(WIFEXITED(rc)) << "child did not exit normally";
      const int exit_code = WEXITSTATUS(rc);
      // kCrashExitCode when the site fired; 0 when the scenario never
      // reached it (e.g. trigger beyond the site's hit count). Any
      // other exit is a child-side assertion failure.
      ASSERT_TRUE(exit_code == 0 ||
                  exit_code == Failpoints::kCrashExitCode)
          << "child exit code " << exit_code;
      if (exit_code == Failpoints::kCrashExitCode) ++crashes;

      VerifyRecovery(dir);
      std::filesystem::remove_all(dir);
    }
  }
  // The loop must actually kill the child at (most of) the sites, or it
  // proves nothing.
  EXPECT_GE(crashes, 8) << "too few failpoints fired";
}

// -------------------------------------------------------------------
// WAL unit coverage: framing, torn tails, reset.
// -------------------------------------------------------------------

Delta TinyDelta(int64_t base) {
  Delta delta;
  delta.inserts.push_back({Value(base), Value(base + 1), Value(2.5)});
  delta.deletes.push_back({Value(base + 7), Value(), Value(-1.0)});
  Update update;
  update.before = {Value(base), Value(int64_t{1}), Value(1.0)};
  update.after = {Value(base), Value(int64_t{2}), Value(2.0)};
  delta.updates.push_back(update);
  return delta;
}

bool DeltasEqual(const Delta& a, const Delta& b) {
  auto tuples_equal = [](const Tuple& x, const Tuple& y) {
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      const bool equal = x[i].is_null() || y[i].is_null()
                             ? x[i].is_null() && y[i].is_null()
                             : x[i].Compare(y[i]) == 0;
      if (!equal) return false;
    }
    return true;
  };
  if (a.inserts.size() != b.inserts.size() ||
      a.deletes.size() != b.deletes.size() ||
      a.updates.size() != b.updates.size()) {
    return false;
  }
  for (size_t i = 0; i < a.inserts.size(); ++i) {
    if (!tuples_equal(a.inserts[i], b.inserts[i])) return false;
  }
  for (size_t i = 0; i < a.deletes.size(); ++i) {
    if (!tuples_equal(a.deletes[i], b.deletes[i])) return false;
  }
  for (size_t i = 0; i < a.updates.size(); ++i) {
    if (!tuples_equal(a.updates[i].before, b.updates[i].before) ||
        !tuples_equal(a.updates[i].after, b.updates[i].after)) {
      return false;
    }
  }
  return true;
}

std::string FreshWalPath(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove(path);
  return path;
}

TEST(WalTest, AppendReadRoundTrip) {
  const std::string path = FreshWalPath("mindetail_wal_roundtrip");
  {
    MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", TinyDelta(100));
    changes.emplace("time", TinyDelta(200));
    MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindApply, changes));
    MD_ASSERT_OK(
        wal.Append(2, WriteAheadLog::kKindTransaction, changes));
    // A non-empty key forces the keyed-transaction kind on disk.
    MD_ASSERT_OK(wal.Append(3, WriteAheadLog::kKindTransaction, changes,
                            "batch-3"));
    EXPECT_EQ(wal.num_records(), 3u);
    EXPECT_EQ(wal.last_sequence(), 3u);
    // Sequences must strictly increase: an equal or lower sequence is
    // an InvalidArgument, not a silent overwrite.
    EXPECT_EQ(wal.Append(3, WriteAheadLog::kKindApply, changes).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(wal.Append(1, WriteAheadLog::kKindApply, changes).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(wal.num_records(), 3u);
  }
  MD_ASSERT_OK_AND_ASSIGN(std::vector<WriteAheadLog::Record> records,
                          WriteAheadLog::ReadAll(path));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].sequence, 1u);
  EXPECT_EQ(records[0].kind, WriteAheadLog::kKindApply);
  EXPECT_EQ(records[1].kind, WriteAheadLog::kKindTransaction);
  ASSERT_EQ(records[1].changes.size(), 2u);
  EXPECT_TRUE(DeltasEqual(records[1].changes.at("sale"), TinyDelta(100)));
  EXPECT_TRUE(DeltasEqual(records[1].changes.at("time"), TinyDelta(200)));
  EXPECT_EQ(records[2].kind, WriteAheadLog::kKindKeyedTransaction);
  EXPECT_EQ(records[2].key, "batch-3");
  EXPECT_TRUE(DeltasEqual(records[2].changes.at("sale"), TinyDelta(100)));
  std::filesystem::remove(path);
}

TEST(WalTest, FailedAppendLeavesNoRecordAndSequenceIsReusable) {
  const std::string path = FreshWalPath("mindetail_wal_failed_append");
  std::map<std::string, Delta> changes;
  changes.emplace("sale", TinyDelta(11));
  MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
  MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindApply, changes));

  // Fail the append after its bytes hit the file but before the sync:
  // the frame must be rewound, or a crash recovery would replay a batch
  // the caller was told failed.
  MD_ASSERT_OK(Failpoints::Arm("wal.append.before_sync",
                               Failpoints::Action::kError));
  EXPECT_EQ(wal.Append(2, WriteAheadLog::kKindApply, changes).code(),
            StatusCode::kInternal);
  Failpoints::DisarmAll();
  EXPECT_EQ(wal.num_records(), 1u);
  EXPECT_EQ(wal.last_sequence(), 1u);
  MD_ASSERT_OK_AND_ASSIGN(std::vector<WriteAheadLog::Record> records,
                          WriteAheadLog::ReadAll(path));
  ASSERT_EQ(records.size(), 1u);

  // The failed sequence was not burned: the retry lands cleanly.
  MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindApply, changes));
  MD_ASSERT_OK_AND_ASSIGN(records, WriteAheadLog::ReadAll(path));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].sequence, 2u);
  std::filesystem::remove(path);
}

TEST(WalTest, TornTailDiscardedAndLogReusable) {
  const std::string path = FreshWalPath("mindetail_wal_torn");
  std::map<std::string, Delta> changes;
  changes.emplace("sale", TinyDelta(7));
  {
    MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
    MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindApply, changes));
    MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindApply, changes));
  }
  // Tear the final record: chop a few bytes off the file.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);

  MD_ASSERT_OK_AND_ASSIGN(std::vector<WriteAheadLog::Record> records,
                          WriteAheadLog::ReadAll(path));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, 1u);

  // Open() truncates the torn tail so later appends are clean.
  {
    MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
    EXPECT_EQ(wal.num_records(), 1u);
    EXPECT_EQ(wal.last_sequence(), 1u);
    MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindApply, changes));
  }
  MD_ASSERT_OK_AND_ASSIGN(records, WriteAheadLog::ReadAll(path));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].sequence, 2u);
  std::filesystem::remove(path);
}

TEST(WalTest, CorruptedPayloadStopsScan) {
  const std::string path = FreshWalPath("mindetail_wal_corrupt");
  std::map<std::string, Delta> changes;
  changes.emplace("sale", TinyDelta(9));
  {
    MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
    MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindApply, changes));
    MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindApply, changes));
  }
  // Flip a byte inside the second record's payload: CRC must catch it.
  const auto full_size = std::filesystem::file_size(path);
  {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(full_size - 3));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(full_size - 3));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(full_size - 3));
    f.write(&byte, 1);
  }
  MD_ASSERT_OK_AND_ASSIGN(std::vector<WriteAheadLog::Record> records,
                          WriteAheadLog::ReadAll(path));
  ASSERT_EQ(records.size(), 1u);
  std::filesystem::remove(path);
}

TEST(WalTest, ResetEmptiesLogButKeepsSequenceHighWaterMark) {
  const std::string path = FreshWalPath("mindetail_wal_reset");
  std::map<std::string, Delta> changes;
  changes.emplace("sale", TinyDelta(3));
  MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
  MD_ASSERT_OK(wal.Append(5, WriteAheadLog::kKindApply, changes));
  MD_ASSERT_OK(wal.Reset());
  EXPECT_EQ(wal.num_records(), 0u);
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  // The sequence high-water mark survives the truncation: recovery
  // keys replay off "record.sequence > checkpoint sequence", so a
  // reused sequence would make a replay skip or double-apply a batch.
  EXPECT_EQ(wal.Append(5, WriteAheadLog::kKindApply, changes).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(wal.Append(4, WriteAheadLog::kKindApply, changes).code(),
            StatusCode::kInvalidArgument);
  MD_ASSERT_OK(wal.Append(6, WriteAheadLog::kKindApply, changes));
  EXPECT_EQ(wal.num_records(), 1u);
  EXPECT_EQ(wal.last_sequence(), 6u);
  std::filesystem::remove(path);
}

// A frame landing exactly on (and spanning) every possible chunk
// boundary must decode identically: chunk_bytes=1 forces each frame
// through the partial-carry path one byte at a time, and a chunk size
// equal to the first frame's length puts the second frame's header
// exactly at a boundary.
TEST(WalStreamTest, FrameAtExactChunkBoundary) {
  const std::string path = FreshWalPath("mindetail_stream_boundary");
  std::map<std::string, Delta> changes;
  changes.emplace("sale", TinyDelta(5));
  size_t first_frame_size = 0;
  {
    MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
    MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindTransaction, changes));
    first_frame_size = static_cast<size_t>(wal.size_bytes());
    MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindTransaction, changes));
    MD_ASSERT_OK(wal.Append(3, WriteAheadLog::kKindTransaction, changes));
  }
  for (const size_t chunk :
       {size_t{1}, size_t{11}, first_frame_size - 1, first_frame_size,
        first_frame_size + 1}) {
    SCOPED_TRACE(chunk);
    WalStreamReader::Options options;
    options.chunk_bytes = chunk;
    WalStreamReader reader(path, options);
    MD_ASSERT_OK_AND_ASSIGN(WalStreamReader::Batch batch, reader.Poll());
    EXPECT_FALSE(batch.torn_tail);
    ASSERT_EQ(batch.records.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(batch.records[i].sequence, i + 1);
      EXPECT_TRUE(
          DeltasEqual(batch.records[i].changes.at("sale"), TinyDelta(5)));
    }
  }
  std::filesystem::remove(path);
}

// Unkeyed, keyed, and epoch-stamped frames interleaved in one log all
// stream back with their kind-specific metadata intact.
TEST(WalStreamTest, InterleavedKeyedUnkeyedAndEpochFrames) {
  const std::string path = FreshWalPath("mindetail_stream_kinds");
  std::map<std::string, Delta> changes;
  changes.emplace("sale", TinyDelta(9));
  {
    MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
    MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindApply, changes));
    MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindTransaction, changes,
                            "key-2"));
    MD_ASSERT_OK(wal.Append(3, WriteAheadLog::kKindTransaction, changes));
    MD_ASSERT_OK(wal.Append(4, WriteAheadLog::kKindTransaction, changes,
                            "key-4", /*epoch=*/7));
    MD_ASSERT_OK(wal.Append(5, WriteAheadLog::kKindTransaction, changes,
                            /*key=*/"", /*epoch=*/7));
  }
  WalStreamReader reader(path);
  MD_ASSERT_OK_AND_ASSIGN(WalStreamReader::Batch batch, reader.Poll());
  ASSERT_EQ(batch.records.size(), 5u);
  EXPECT_EQ(batch.records[0].kind, WriteAheadLog::kKindApply);
  EXPECT_EQ(batch.records[1].kind, WriteAheadLog::kKindKeyedTransaction);
  EXPECT_EQ(batch.records[1].key, "key-2");
  EXPECT_EQ(batch.records[1].epoch, 0u);
  EXPECT_EQ(batch.records[2].kind, WriteAheadLog::kKindTransaction);
  EXPECT_EQ(batch.records[2].key, "");
  EXPECT_EQ(batch.records[3].kind, WriteAheadLog::kKindEpochTransaction);
  EXPECT_EQ(batch.records[3].key, "key-4");
  EXPECT_EQ(batch.records[3].epoch, 7u);
  EXPECT_EQ(batch.records[4].kind, WriteAheadLog::kKindEpochTransaction);
  EXPECT_EQ(batch.records[4].key, "");
  EXPECT_EQ(batch.records[4].epoch, 7u);
  // ReadAll and the streaming reader agree frame for frame.
  MD_ASSERT_OK_AND_ASSIGN(std::vector<WriteAheadLog::Record> all,
                          WriteAheadLog::ReadAll(path));
  ASSERT_EQ(all.size(), batch.records.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].sequence, batch.records[i].sequence);
    EXPECT_EQ(all[i].kind, batch.records[i].kind);
    EXPECT_EQ(all[i].key, batch.records[i].key);
    EXPECT_EQ(all[i].epoch, batch.records[i].epoch);
  }
  std::filesystem::remove(path);
}

// Tailing a live log: every poll surfaces exactly the frames appended
// since the previous one, a checkpoint Reset() mid-stream restarts the
// scan without re-delivering, and post-reset appends arrive once.
TEST(WalStreamTest, PollWhileWriterAppendsAndResets) {
  const std::string path = FreshWalPath("mindetail_stream_tail");
  std::map<std::string, Delta> changes;
  changes.emplace("sale", TinyDelta(1));
  MD_ASSERT_OK_AND_ASSIGN(WriteAheadLog wal, WriteAheadLog::Open(path));
  WalStreamReader reader(path);

  // Nothing yet — an empty (or missing) log polls clean.
  MD_ASSERT_OK_AND_ASSIGN(WalStreamReader::Batch batch, reader.Poll());
  EXPECT_TRUE(batch.records.empty());

  MD_ASSERT_OK(wal.Append(1, WriteAheadLog::kKindTransaction, changes));
  MD_ASSERT_OK_AND_ASSIGN(batch, reader.Poll());
  ASSERT_EQ(batch.records.size(), 1u);
  EXPECT_EQ(batch.records[0].sequence, 1u);

  MD_ASSERT_OK(wal.Append(2, WriteAheadLog::kKindTransaction, changes));
  MD_ASSERT_OK(wal.Append(3, WriteAheadLog::kKindTransaction, changes));
  MD_ASSERT_OK_AND_ASSIGN(batch, reader.Poll());
  ASSERT_EQ(batch.records.size(), 2u);
  EXPECT_EQ(batch.records[0].sequence, 2u);
  EXPECT_EQ(batch.records[1].sequence, 3u);

  // An idle poll is a no-op, not a re-delivery.
  MD_ASSERT_OK_AND_ASSIGN(batch, reader.Poll());
  EXPECT_TRUE(batch.records.empty());

  // Checkpoint truncation: the file shrinks, the scan restarts from
  // zero, and only the genuinely new post-reset frame comes back.
  MD_ASSERT_OK(wal.Reset());
  MD_ASSERT_OK(wal.Append(4, WriteAheadLog::kKindTransaction, changes));
  MD_ASSERT_OK_AND_ASSIGN(batch, reader.Poll());
  EXPECT_TRUE(batch.restarted);
  ASSERT_EQ(batch.records.size(), 1u);
  EXPECT_EQ(batch.records[0].sequence, 4u);
  EXPECT_EQ(reader.last_sequence(), 4u);
  std::filesystem::remove(path);
}

// Recovery falls back to the previous durable checkpoint when the
// CURRENT one has gone missing, and reports DataLoss when nothing
// loadable remains — never silently restarting empty.
TEST(CheckpointFallbackTest, OpenFallsBackWhenCurrentCheckpointVanishes) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mindetail_cp_fallback")
          .string();
  std::filesystem::remove_all(dir);
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  RetailDeltaGenerator gen(kCrashSeed);
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse wh, Warehouse::Open(dir));
    MD_ASSERT_OK(wh.AddViewSql(source, kMonthlySql));
    MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                            gen.MixedSaleBatch(source, 12, 6, 3));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", delta);
    MD_ASSERT_OK(wh.ApplyTransaction(changes, "fallback-1"));
    MD_ASSERT_OK(wh.Checkpoint());
  }
  // Find the live checkpoint directory named by CURRENT.
  std::string current;
  {
    std::ifstream in(dir + "/CURRENT");
    ASSERT_TRUE(in.is_open());
    std::getline(in, current);
  }
  ASSERT_FALSE(current.empty());

  // Plant an older sibling (a stale checkpoint that escaped pruning),
  // then lose the current one.
  const std::string older = "checkpoint-1";
  ASSERT_NE(older, current);
  std::filesystem::copy(dir + "/" + current, dir + "/" + older,
                        std::filesystem::copy_options::recursive);
  std::filesystem::remove_all(dir + "/" + current);

  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered, Warehouse::Open(dir));
    EXPECT_EQ(recovered.recovery_stats().fallback_checkpoint, older);
    EXPECT_TRUE(recovered.HasView("monthly_sales"));
    MD_ASSERT_OK(recovered.View("monthly_sales").status());
  }

  // With the fallback gone too, recovery must refuse to invent an
  // empty warehouse over a directory that clearly held one.
  std::filesystem::remove_all(dir + "/" + older);
  const Status lost = Warehouse::Open(dir).status();
  EXPECT_EQ(lost.code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

// A fallback checkpoint that exists but is corrupt is as good as gone:
// recovery must surface kDataLoss rather than silently restarting
// empty or loading garbage past a failed content-hash check.
TEST(CheckpointFallbackTest, CorruptFallbackCheckpointSurfacesDataLoss) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       "mindetail_cp_fallback_corrupt")
          .string();
  std::filesystem::remove_all(dir);
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  RetailDeltaGenerator gen(kCrashSeed);
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse wh, Warehouse::Open(dir));
    MD_ASSERT_OK(wh.AddViewSql(source, kMonthlySql));
    MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                            gen.MixedSaleBatch(source, 12, 6, 3));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", delta);
    MD_ASSERT_OK(wh.ApplyTransaction(changes, "corrupt-fallback-1"));
    MD_ASSERT_OK(wh.Checkpoint());
  }
  std::string current;
  {
    std::ifstream in(dir + "/CURRENT");
    ASSERT_TRUE(in.is_open());
    std::getline(in, current);
  }
  ASSERT_FALSE(current.empty());

  // Plant an older sibling, then scribble over every CSV it holds so
  // its recorded content hashes can no longer verify.
  const std::string older = "checkpoint-1";
  ASSERT_NE(older, current);
  std::filesystem::copy(dir + "/" + current, dir + "/" + older,
                        std::filesystem::copy_options::recursive);
  int corrupted = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/" + older)) {
    if (entry.path().extension() != ".csv") continue;
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "garbage,that,hashes,differently\n";
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);
  std::filesystem::remove_all(dir + "/" + current);

  const Status lost = Warehouse::Open(dir).status();
  EXPECT_EQ(lost.code(), StatusCode::kDataLoss)
      << "a corrupt fallback must not restart empty: " << lost.message();
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Crashing around the cancelled-batch WAL withdrawal.
//
// A batch cancelled after its WAL append is un-logged via
// WriteAheadLog::AbortLast. A crash wedged between the append and the
// abort must resolve atomically to exactly one of the two legal
// outcomes: the batch fully applied (the record survived, recovery
// replays it — cancellation was never acknowledged) or the batch fully
// absent (the record was withdrawn first). Never half of each.
// -------------------------------------------------------------------

constexpr char kCancelViewSql[] = R"sql(
  CREATE VIEW cancel_by_brand AS
  SELECT product.brand, SUM(sale.price) AS Total, COUNT(*) AS Cnt
  FROM sale, time, product
  WHERE sale.timeid = time.id AND sale.productid = product.id
  GROUP BY product.brand
)sql";

std::map<std::string, Delta> CancelSale(int64_t id) {
  Delta delta;
  delta.inserts.push_back(
      {Value(id), Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{7})});
  std::map<std::string, Delta> changes;
  changes.emplace("sale", std::move(delta));
  return changes;
}

// A clock whose copies share one counter: 0 for the first `free_calls`
// reads, then far future — trips a Deadline::After deadline at the
// (free_calls+1)-th check, which for the warehouse apply path lands
// mid-engine, after the WAL append.
MonotonicClock CancelTripClock(int free_calls) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  return [calls, free_calls]() -> int64_t {
    return calls->fetch_add(1) < free_calls ? 0 : (int64_t{1} << 60);
  };
}

// Driver-only child: applies one committed batch, then one batch whose
// deadline trips mid-apply. With a cancel-site failpoint armed the
// process dies inside the withdrawal window.
TEST(CancelCrashChildProcess, Run) {
  const char* dir_env = std::getenv("MINDETAIL_CANCEL_CRASH_DIR");
  if (dir_env == nullptr) GTEST_SKIP() << "driver-only child scenario";
  MD_ASSERT_OK(Failpoints::ArmFromEnv());

  Catalog catalog = test::PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse,
                          Warehouse::Open(dir_env, CrashOptions()));
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, kCancelViewSql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(CancelSale(100)));

  CancellationToken token(Deadline::After(1, CancelTripClock(3)));
  const Status cancelled =
      warehouse.ApplyTransaction(CancelSale(101), "", token);
  // Only reached when no failpoint fired.
  EXPECT_EQ(cancelled.code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelCrashTest, KillAroundWalAbortResolvesAtomically) {
  const std::string exe = SelfExePath();
  ASSERT_FALSE(exe.empty());
  struct Scenario {
    const char* site;
    bool batch_survives;  // The legal recovered outcome at this site.
  };
  for (const Scenario& scenario :
       {Scenario{"warehouse.cancel.before_wal_abort", true},
        Scenario{"warehouse.cancel.after_wal_abort", false}}) {
    SCOPED_TRACE(scenario.site);
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         StrCat("mindetail_cancel_crash_",
                scenario.batch_survives ? "before" : "after"))
            .string();
    std::filesystem::remove_all(dir);

    const std::string cmd = StrCat(
        "MINDETAIL_CANCEL_CRASH_DIR='", dir, "' MINDETAIL_FAILPOINT='",
        scenario.site, ":crash:1' '", exe,
        "' --gtest_filter=CancelCrashChildProcess.Run >/dev/null 2>&1");
    const int rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc)) << "child did not exit normally";
    // The child always cancels mid-apply, so the armed site must fire.
    ASSERT_EQ(WEXITSTATUS(rc), Failpoints::kCrashExitCode);

    MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered,
                            Warehouse::Open(dir, CrashOptions()));
    Catalog catalog = test::PaperTable3Fixture();
    Warehouse oracle(CrashOptions());
    MD_ASSERT_OK(oracle.AddViewSql(catalog, kCancelViewSql));
    MD_ASSERT_OK(oracle.ApplyTransaction(CancelSale(100)));
    if (scenario.batch_survives) {
      // The record outlived the crash: recovery replays it to
      // completion, as if the cancel never happened.
      MD_ASSERT_OK(oracle.ApplyTransaction(CancelSale(101)));
      EXPECT_EQ(recovered.last_sequence(), 2u);
    } else {
      // The record was withdrawn first: the batch never happened.
      EXPECT_EQ(recovered.last_sequence(), 1u);
    }
    MD_ASSERT_OK_AND_ASSIGN(Table expected,
                            oracle.View("cancel_by_brand"));
    MD_ASSERT_OK_AND_ASSIGN(Table actual,
                            recovered.View("cancel_by_brand"));
    EXPECT_TRUE(TablesExactlyEqual(expected, actual));
    // Recovery is not a dead end either way.
    MD_ASSERT_OK(recovered.ApplyTransaction(CancelSale(102)));
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace mindetail
