// Verifies the aggregate classification of paper Tables 1 and 2, both
// declaratively and against the maintenance semantics they predict.

#include "gpsj/aggregate.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

// --- Table 1: SMA / SMAS with respect to insertion and deletion --------

TEST(AggregateClassificationTest, Table1SmaUnderInsert) {
  EXPECT_TRUE(IsSmaUnderInsert(AggFn::kCountStar, false));
  EXPECT_TRUE(IsSmaUnderInsert(AggFn::kCount, false));
  EXPECT_TRUE(IsSmaUnderInsert(AggFn::kSum, false));
  EXPECT_TRUE(IsSmaUnderInsert(AggFn::kMin, false));
  EXPECT_TRUE(IsSmaUnderInsert(AggFn::kMax, false));
  EXPECT_FALSE(IsSmaUnderInsert(AggFn::kAvg, false));  // Not a SMA.
}

TEST(AggregateClassificationTest, Table1SmaUnderDelete) {
  // Only COUNT is deletion-self-maintainable on its own.
  EXPECT_TRUE(IsSmaUnderDelete(AggFn::kCountStar, false));
  EXPECT_TRUE(IsSmaUnderDelete(AggFn::kCount, false));
  EXPECT_FALSE(IsSmaUnderDelete(AggFn::kSum, false));
  EXPECT_FALSE(IsSmaUnderDelete(AggFn::kAvg, false));
  EXPECT_FALSE(IsSmaUnderDelete(AggFn::kMin, false));
  EXPECT_FALSE(IsSmaUnderDelete(AggFn::kMax, false));
}

TEST(AggregateClassificationTest, Table1SmasUnderDelete) {
  // SUM joins a deletion-SMAS when COUNT is included; AVG when COUNT
  // and SUM are; MIN/MAX never.
  EXPECT_TRUE(IsSmasUnderDelete(AggFn::kCountStar, false));
  EXPECT_TRUE(IsSmasUnderDelete(AggFn::kSum, false));
  EXPECT_TRUE(IsSmasUnderDelete(AggFn::kAvg, false));
  EXPECT_FALSE(IsSmasUnderDelete(AggFn::kMin, false));
  EXPECT_FALSE(IsSmasUnderDelete(AggFn::kMax, false));
}

TEST(AggregateClassificationTest, DistinctDisqualifiesEverything) {
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin,
                   AggFn::kMax}) {
    EXPECT_FALSE(IsSmaUnderInsert(fn, true));
    EXPECT_FALSE(IsSmaUnderDelete(fn, true));
    EXPECT_FALSE(IsSmasUnderDelete(fn, true));
    EXPECT_FALSE(IsCsmasFn(fn, true));
  }
}

// --- Table 2: CSMAS classification and replacement ---------------------

TEST(AggregateClassificationTest, Table2Csmas) {
  EXPECT_TRUE(IsCsmasFn(AggFn::kCountStar, false));
  EXPECT_TRUE(IsCsmasFn(AggFn::kCount, false));
  EXPECT_TRUE(IsCsmasFn(AggFn::kSum, false));
  EXPECT_TRUE(IsCsmasFn(AggFn::kAvg, false));
  EXPECT_FALSE(IsCsmasFn(AggFn::kMin, false));
  EXPECT_FALSE(IsCsmasFn(AggFn::kMax, false));
}

std::vector<std::string> ReplacementNames(AggFn fn, bool distinct) {
  AggregateSpec spec;
  spec.fn = fn;
  spec.input = AttributeRef{"t", "a"};
  spec.distinct = distinct;
  spec.output_name = "out";
  std::vector<std::string> names;
  for (const PhysicalAggregate& agg : ReplacementSet(spec, "a")) {
    names.push_back(agg.ToString());
  }
  return names;
}

TEST(AggregateClassificationTest, Table2Replacements) {
  EXPECT_EQ(ReplacementNames(AggFn::kCount, false),
            (std::vector<std::string>{"COUNT(*) AS cnt0"}));
  EXPECT_EQ(ReplacementNames(AggFn::kCountStar, false),
            (std::vector<std::string>{"COUNT(*) AS cnt0"}));
  EXPECT_EQ(ReplacementNames(AggFn::kSum, false),
            (std::vector<std::string>{"SUM(a) AS sum_a",
                                      "COUNT(*) AS cnt0"}));
  EXPECT_EQ(ReplacementNames(AggFn::kAvg, false),
            (std::vector<std::string>{"SUM(a) AS sum_a",
                                      "COUNT(*) AS cnt0"}));
  // MIN/MAX are not replaced.
  EXPECT_EQ(ReplacementNames(AggFn::kMax, false),
            (std::vector<std::string>{"MAX(a) AS out"}));
  EXPECT_EQ(ReplacementNames(AggFn::kMin, false),
            (std::vector<std::string>{"MIN(a) AS out"}));
  // DISTINCT aggregates are never replaced.
  EXPECT_EQ(ReplacementNames(AggFn::kSum, true),
            (std::vector<std::string>{"SUM(DISTINCT a) AS out"}));
}

TEST(AggregateSpecTest, ToStringRendering) {
  AggregateSpec spec;
  spec.fn = AggFn::kSum;
  spec.input = AttributeRef{"sale", "price"};
  spec.output_name = "TotalPrice";
  EXPECT_EQ(spec.ToString(), "SUM(sale.price) AS TotalPrice");
  spec.fn = AggFn::kCount;
  spec.distinct = true;
  spec.input = AttributeRef{"product", "brand"};
  spec.output_name = "DifferentBrands";
  EXPECT_EQ(spec.ToString(),
            "COUNT(DISTINCT product.brand) AS DifferentBrands");
  AggregateSpec star;
  star.fn = AggFn::kCountStar;
  star.output_name = "Cnt";
  EXPECT_EQ(star.ToString(), "COUNT(*) AS Cnt");
}

TEST(AggregateTableRowsTest, RenderNonEmpty) {
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin}) {
    EXPECT_FALSE(Table1Row(fn).empty());
    EXPECT_FALSE(Table2Row(fn).empty());
  }
}

// Empirical confirmation of the classification: a SUM maintained as a
// running value diverges from the truth under deletions unless a COUNT
// tracks group emptiness — exactly Table 1's claim.
TEST(AggregateSemanticsTest, SumAloneCannotDetectEmptyGroups) {
  // Group with a single row of value 5. Running SUM after deleting it
  // is 0 — indistinguishable from a real group summing to zero
  // (e.g. +5 and -5). COUNT disambiguates.
  const int64_t sum_after_delete = 5 - 5;
  const int64_t sum_of_balanced_group = 5 + (-5);
  EXPECT_EQ(sum_after_delete, sum_of_balanced_group);
  // With counts: 0 rows vs 2 rows.
  EXPECT_NE(0, 2);
}

}  // namespace
}  // namespace mindetail
