// Replication: WAL log shipping, hot-standby followers, health-checked
// catch-up, and promotion failover.
//
// The differential oracle throughout is the leader itself: after any
// catch-up — from cold start, mid-stream, across checkpoints, after
// crashes of either side — the follower's maintained state must be
// bit-identical to the leader's at the same committed sequence, and
// its published snapshot must carry that sequence as its version.
//
// The crash harness (ReplicationChildProcess.Run + KillAtEveryFailpoint)
// extends tests/crash_recovery_test.cc to both ends of the ship/replay
// pipeline: the child runs a leader and a follower in one process and
// the parent kills it at every registered failpoint — leader apply,
// checkpoint, follower replay, checkpoint transfer — then proves the
// reopened pair reconverges bit-identically and that a fenced epoch is
// still refused.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "io/warehouse_io.h"
#include "maintenance/wal.h"
#include "maintenance/warehouse.h"
#include "replication/epoch.h"
#include "replication/follower.h"
#include "replication/health.h"
#include "replication/log_shipper.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using replication::CheckpointInfo;
using replication::EpochFence;
using replication::Follower;
using replication::HealthMonitor;
using replication::HealthOptions;
using replication::LogShipper;
using replication::ReplicaState;
using test::SmallRetail;
using test::TablesExactlyEqual;

constexpr char kMonthlySql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

constexpr char kPerStoreSql[] = R"sql(
  CREATE VIEW per_store AS
  SELECT store.city, COUNT(*) AS Cnt, AVG(sale.price) AS AvgPrice
  FROM sale, store
  WHERE sale.storeid = store.id
  GROUP BY store.city
)sql";

constexpr uint64_t kSeed = 7171;

std::string TempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::map<std::string, Table> CaptureState(const Warehouse& warehouse) {
  std::map<std::string, Table> state;
  for (const std::string& name : warehouse.ViewNames()) {
    const SelfMaintenanceEngine& engine = warehouse.engine(name);
    Result<Table> view = warehouse.View(name);
    MD_CHECK(view.ok());
    state.emplace(name + "/view", std::move(view).value());
    Result<Table> augmented = engine.RenderAugmentedSummary();
    MD_CHECK(augmented.ok());
    state.emplace(name + "/summary", std::move(augmented).value());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      state.emplace(name + "/aux/" + aux.base_table,
                    engine.AuxContents(aux.base_table));
    }
  }
  return state;
}

void ExpectBitIdentical(const Warehouse& leader, const Warehouse& follower) {
  ASSERT_EQ(leader.ViewNames(), follower.ViewNames());
  ASSERT_EQ(leader.last_sequence(), follower.last_sequence());
  const std::map<std::string, Table> a = CaptureState(leader);
  const std::map<std::string, Table> b = CaptureState(follower);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, table] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    EXPECT_TRUE(TablesExactlyEqual(table, it->second)) << key;
  }
  // Same committed boundary ⇒ same snapshot version: result-cache
  // entries keyed on it are shareable across the replicas.
  const auto leader_snap = leader.CurrentSnapshot();
  const auto follower_snap = follower.CurrentSnapshot();
  ASSERT_NE(leader_snap, nullptr);
  ASSERT_NE(follower_snap, nullptr);
  EXPECT_EQ(leader_snap->version, follower_snap->version);
}

// A leader warehouse with both views registered.
Result<Warehouse> OpenLeader(const std::string& dir, Catalog& source) {
  MD_ASSIGN_OR_RETURN(Warehouse leader, Warehouse::Open(dir));
  if (!leader.HasView("monthly_sales")) {
    MD_RETURN_IF_ERROR(leader.AddViewSql(source, kMonthlySql));
    MD_RETURN_IF_ERROR(leader.AddViewSql(source, kPerStoreSql));
  }
  return leader;
}

Status FeedBatches(Warehouse& leader, Catalog& source,
                   RetailDeltaGenerator& gen, int count, int first_id) {
  for (int i = 0; i < count; ++i) {
    MD_ASSIGN_OR_RETURN(Delta delta,
                        gen.MixedSaleBatch(source, 12, 6, 3));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", delta);
    MD_RETURN_IF_ERROR(leader.ApplyTransaction(
        changes, StrCat("batch-", first_id + i)));
    MD_RETURN_IF_ERROR(ApplyDelta(*source.MutableTable("sale"), delta));
  }
  return Status::Ok();
}

TEST(ReplicationTest, ShipReplayIsBitIdentical) {
  const std::string leader_dir = TempDir("mindetail_repl_ship_leader");
  const std::string follower_dir = TempDir("mindetail_repl_ship_follower");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 5, 1));

  MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                          Follower::Open(leader_dir, follower_dir));
  MD_ASSERT_OK_AND_ASSIGN(Follower::Progress progress, follower.CatchUp());
  // AddView checkpoints immediately, so a fresh follower bootstraps the
  // view definitions from the leader's checkpoint, then streams.
  EXPECT_TRUE(progress.bootstrapped);
  EXPECT_EQ(progress.applied, 5u);
  ExpectBitIdentical(leader, follower.warehouse());

  // Followers answer the same ad-hoc queries with the same bits.
  const char* query =
      "SELECT time.month, SUM(sale.price) AS TotalPrice FROM sale, time "
      "WHERE time.year = 1997 AND sale.timeid = time.id "
      "GROUP BY time.month";
  MD_ASSERT_OK_AND_ASSIGN(Table on_leader, leader.Query(query));
  MD_ASSERT_OK_AND_ASSIGN(Table on_follower,
                          follower.warehouse().Query(query));
  EXPECT_TRUE(TablesExactlyEqual(on_leader, on_follower));

  // Steady state: more batches, another round, still identical.
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 3, 6));
  MD_ASSERT_OK_AND_ASSIGN(progress, follower.CatchUp());
  EXPECT_EQ(progress.applied, 3u);
  EXPECT_FALSE(progress.bootstrapped);
  ExpectBitIdentical(leader, follower.warehouse());
}

TEST(ReplicationTest, CheckpointBootstrapCatchesUpLaggingFollower) {
  const std::string leader_dir = TempDir("mindetail_repl_boot_leader");
  const std::string follower_dir = TempDir("mindetail_repl_boot_follower");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 4, 1));
  // The checkpoint truncates the WAL: frames 1–4 are gone; streaming
  // alone can never deliver them to anyone.
  MD_ASSERT_OK(leader.Checkpoint());
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 5));

  MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                          Follower::Open(leader_dir, follower_dir));
  MD_ASSERT_OK_AND_ASSIGN(Follower::Progress progress, follower.CatchUp());
  EXPECT_TRUE(progress.bootstrapped);
  EXPECT_EQ(progress.applied, 2u);  // Only the post-checkpoint tail.
  ExpectBitIdentical(leader, follower.warehouse());

  // A leader checkpoint *between* rounds also heals: the stream
  // restarts, the bootstrap closes the gap, duplicates are filtered.
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 7));
  MD_ASSERT_OK(leader.Checkpoint());
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 9));
  MD_ASSERT_OK_AND_ASSIGN(progress, follower.CatchUp());
  ExpectBitIdentical(leader, follower.warehouse());
}

TEST(ReplicationTest, ReshippedFramesAreIdempotentNoOps) {
  const std::string leader_dir = TempDir("mindetail_repl_dup_leader");
  const std::string follower_dir = TempDir("mindetail_repl_dup_follower");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 4, 1));

  {
    MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                            Follower::Open(leader_dir, follower_dir));
    MD_ASSERT_OK(follower.CatchUp().status());
    ExpectBitIdentical(leader, follower.warehouse());
  }
  // A restarted follower process re-reads the whole leader WAL — every
  // frame arrives again. Exactly-once replay: all duplicates, nothing
  // re-applied, state unchanged.
  MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                          Follower::Open(leader_dir, follower_dir));
  MD_ASSERT_OK_AND_ASSIGN(Follower::Progress progress, follower.CatchUp());
  EXPECT_EQ(progress.applied, 0u);
  EXPECT_EQ(progress.duplicates, 4u);
  ExpectBitIdentical(leader, follower.warehouse());

  // Direct re-delivery of an old frame is an acknowledged no-op too.
  MD_ASSERT_OK_AND_ASSIGN(
      std::vector<WriteAheadLog::Record> records,
      WriteAheadLog::ReadAll(StrCat(leader_dir, "/", kWalFile)));
  ASSERT_FALSE(records.empty());
  MD_ASSERT_OK(follower.warehouse().ApplyReplicated(records.front()));
  ExpectBitIdentical(leader, follower.warehouse());
}

TEST(ReplicationTest, SequenceGapDemandsBootstrap) {
  const std::string dir = TempDir("mindetail_repl_gap");
  MD_ASSERT_OK_AND_ASSIGN(Warehouse follower,
                          Warehouse::Open(dir, WarehouseOptions{}
                                                   .WithReadOnly(true)));
  WriteAheadLog::Record record;
  record.sequence = 7;  // Local sequence is 0; frames 1–6 are missing.
  record.kind = WriteAheadLog::kKindTransaction;
  const Status status = follower.ApplyReplicated(record);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("bootstrap"), std::string::npos);
}

TEST(ReplicationTest, TornLeaderTailIsCarriedNeverApplied) {
  const std::string leader_dir = TempDir("mindetail_repl_torn_leader");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 1));

  // Simulate the leader dying mid-append: chop the last frame short,
  // keeping the full bytes around to "finish" the append later.
  const std::string wal_path = StrCat(leader_dir, "/", kWalFile);
  std::string full_bytes;
  {
    std::ifstream in(wal_path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    full_bytes.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
  }
  std::filesystem::resize_file(wal_path, full_bytes.size() - 5);

  LogShipper shipper(leader_dir);
  MD_ASSERT_OK_AND_ASSIGN(WalStreamReader::Batch batch, shipper.Poll());
  EXPECT_TRUE(batch.torn_tail);
  ASSERT_EQ(batch.records.size(), 1u);
  EXPECT_EQ(batch.records[0].sequence, 1u);

  // The writer "finishes" the append (restore the full file): the
  // carried tail completes and ships exactly once.
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
    out.write(full_bytes.data(),
              static_cast<std::streamsize>(full_bytes.size()));
  }
  MD_ASSERT_OK_AND_ASSIGN(batch, shipper.Poll());
  EXPECT_FALSE(batch.torn_tail);
  ASSERT_EQ(batch.records.size(), 1u);
  EXPECT_EQ(batch.records[0].sequence, 2u);
}

TEST(ReplicationTest, CorruptFrameIsDataLoss) {
  const std::string leader_dir = TempDir("mindetail_repl_corrupt_leader");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 1));

  // Flip a payload byte mid-file: a complete frame whose CRC cannot
  // match — permanent corruption, not a torn tail.
  const std::string wal_path = StrCat(leader_dir, "/", kWalFile);
  {
    std::fstream f(wal_path, std::ios::in | std::ios::out |
                                 std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(20);
    char byte = 0;
    f.seekg(20);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(20);
    f.write(&byte, 1);
  }
  LogShipper shipper(leader_dir);
  EXPECT_EQ(shipper.Poll().status().code(), StatusCode::kDataLoss);
}

TEST(ReplicationTest, LeaderRestartResumesShipping) {
  const std::string leader_dir = TempDir("mindetail_repl_restart_leader");
  const std::string follower_dir =
      TempDir("mindetail_repl_restart_follower");
  RetailWarehouse retail = SmallRetail();
  RetailDeltaGenerator gen(kSeed);
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                            OpenLeader(leader_dir, retail.catalog));
    MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 3, 1));
  }
  MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                          Follower::Open(leader_dir, follower_dir));
  MD_ASSERT_OK(follower.CatchUp().status());
  EXPECT_EQ(follower.applied_sequence(), 3u);

  // The leader restarts (recovery replays its WAL) and keeps going;
  // the follower picks up where it left off.
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 4));
  MD_ASSERT_OK_AND_ASSIGN(Follower::Progress progress, follower.CatchUp());
  EXPECT_EQ(progress.applied, 2u);
  ExpectBitIdentical(leader, follower.warehouse());
}

TEST(ReplicationTest, FollowerRefusesDirectWrites) {
  const std::string leader_dir = TempDir("mindetail_repl_ro_leader");
  const std::string follower_dir = TempDir("mindetail_repl_ro_follower");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 1));
  MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                          Follower::Open(leader_dir, follower_dir));
  MD_ASSERT_OK(follower.CatchUp().status());

  Warehouse& replica = follower.warehouse();
  EXPECT_TRUE(replica.read_only());
  MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                          gen.MixedSaleBatch(retail.catalog, 4, 0, 0));
  EXPECT_EQ(replica.Apply("sale", delta).code(),
            StatusCode::kFailedPrecondition);
  std::map<std::string, Delta> changes;
  changes.emplace("sale", delta);
  EXPECT_EQ(replica.ApplyTransaction(changes).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(replica.AddViewSql(retail.catalog, kMonthlySql).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(replica.RemoveView("monthly_sales").code(),
            StatusCode::kFailedPrecondition);
  // Reads keep working.
  MD_ASSERT_OK(replica.View("monthly_sales").status());
}

TEST(ReplicationTest, HealthMonitorTracksLagAndDisconnects) {
  const std::string leader_dir = TempDir("mindetail_repl_health_leader");
  const std::string follower_dir =
      TempDir("mindetail_repl_health_follower");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 3, 1));
  MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                          Follower::Open(leader_dir, follower_dir));

  HealthOptions options;
  options.lag_budget = 1;
  std::vector<int> slept;
  options.retry.sleeper = [&](int ms) { slept.push_back(ms); };
  HealthMonitor monitor(options);
  monitor.Register("replica-1", &follower);

  // Caught up within the budget → healthy, full strong-read contract.
  monitor.Tick(leader.last_sequence());
  const replication::ReplicaHealth* health = monitor.Find("replica-1");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->state, ReplicaState::kHealthy);
  EXPECT_EQ(health->applied_sequence, 3u);
  EXPECT_EQ(health->snapshot_version, 3u);
  EXPECT_EQ(health->lag, 0u);
  EXPECT_FALSE(monitor.DegradedRead("replica-1"));

  // The leader acknowledges frames the follower has not seen shipped
  // yet (e.g. the shipper runs behind): past the budget the replica's
  // reads are marked degraded — still consistent, just stale.
  monitor.Tick(leader.last_sequence() + 2);
  EXPECT_EQ(monitor.Find("replica-1")->state, ReplicaState::kDegraded);
  EXPECT_EQ(monitor.Find("replica-1")->lag, 2u);
  EXPECT_TRUE(monitor.DegradedRead("replica-1"));

  // Corrupt the leader's WAL: catch-up hits DataLoss — permanent, so
  // no backoff retries are burned and the replica shows disconnected.
  const std::string wal_path = StrCat(leader_dir, "/", kWalFile);
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out << "garbage-that-is-not-a-frame-and-never-will-be....";
  }
  monitor.Tick(leader.last_sequence());
  EXPECT_EQ(monitor.Find("replica-1")->state,
            ReplicaState::kDisconnected);
  EXPECT_TRUE(slept.empty());  // DataLoss skipped the retry budget.
  EXPECT_FALSE(monitor.Find("replica-1")->last_error.empty());
  EXPECT_TRUE(monitor.DegradedRead("replica-1"));
}

TEST(ReplicationTest, PromotionFencesTheOldLeader) {
  const std::string leader_dir = TempDir("mindetail_repl_fence_leader");
  const std::string follower_dir =
      TempDir("mindetail_repl_fence_follower");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse old_leader,
                          OpenLeader(leader_dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(old_leader, retail.catalog, gen, 3, 1));
  MD_ASSERT_OK_AND_ASSIGN(Follower follower,
                          Follower::Open(leader_dir, follower_dir));
  MD_ASSERT_OK(follower.CatchUp().status());

  // Failover: the follower takes over.
  Warehouse& promoted = follower.warehouse();
  MD_ASSERT_OK(promoted.PromoteToLeader());
  EXPECT_FALSE(promoted.read_only());
  EXPECT_EQ(promoted.leader_epoch(), 1u);
  EXPECT_EQ(promoted.PromoteToLeader().code(),
            StatusCode::kFailedPrecondition);  // Already a leader.

  // The deposed leader, unaware, keeps committing under epoch 0. Its
  // frames are refused by the promoted replica's epoch fence.
  MD_ASSERT_OK(FeedBatches(old_leader, retail.catalog, gen, 1, 4));
  MD_ASSERT_OK_AND_ASSIGN(
      std::vector<WriteAheadLog::Record> stale,
      WriteAheadLog::ReadAll(StrCat(leader_dir, "/", kWalFile)));
  ASSERT_FALSE(stale.empty());
  WriteAheadLog::Record last = stale.back();
  ASSERT_EQ(last.sequence, 4u);
  EXPECT_EQ(promoted.ApplyReplicated(last).code(),
            StatusCode::kFailedPrecondition);

  // The new leader accepts writes and stamps its epoch into them.
  MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                          gen.MixedSaleBatch(retail.catalog, 4, 0, 0));
  std::map<std::string, Delta> changes;
  changes.emplace("sale", delta);
  MD_ASSERT_OK(promoted.ApplyTransaction(changes, "after-failover"));
  MD_ASSERT_OK_AND_ASSIGN(
      std::vector<WriteAheadLog::Record> fresh,
      WriteAheadLog::ReadAll(StrCat(follower_dir, "/", kWalFile)));
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh.back().epoch, 1u);

  // The fence is durable: a restart of the promoted warehouse still
  // refuses the deposed leader's frames.
  MD_ASSERT_OK_AND_ASSIGN(Warehouse reopened,
                          Warehouse::Open(follower_dir));
  EXPECT_EQ(reopened.leader_epoch(), 1u);
  EXPECT_EQ(reopened.ApplyReplicated(last).code(),
            StatusCode::kFailedPrecondition);

  // And a second-generation follower of the *new* leader replicates
  // the fence itself: it too refuses the deposed leader.
  const std::string second_dir = TempDir("mindetail_repl_fence_second");
  MD_ASSERT_OK_AND_ASSIGN(Follower second,
                          Follower::Open(follower_dir, second_dir));
  MD_ASSERT_OK(second.CatchUp().status());
  EXPECT_EQ(second.warehouse().leader_epoch(), 1u);
  EXPECT_EQ(second.warehouse().ApplyReplicated(last).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReplicationTest, EpochFencePrimitives) {
  EpochFence fence;
  MD_EXPECT_OK(fence.Check(0));  // Unfenced accepts everything.
  EXPECT_TRUE(fence.Adopt(3));
  EXPECT_FALSE(fence.Adopt(2));  // Never moves backwards.
  EXPECT_EQ(fence.current(), 3u);
  EXPECT_EQ(fence.Check(2).code(), StatusCode::kFailedPrecondition);
  MD_EXPECT_OK(fence.Check(3));
  MD_EXPECT_OK(fence.Check(4));
}

TEST(ReplicationTest, PeekCurrentCheckpointReadsManifestHeader) {
  const std::string dir = TempDir("mindetail_repl_peek");
  EXPECT_EQ(replication::PeekCurrentCheckpoint(dir).status().code(),
            StatusCode::kNotFound);

  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader, OpenLeader(dir, retail.catalog));
  RetailDeltaGenerator gen(kSeed);
  MD_ASSERT_OK(FeedBatches(leader, retail.catalog, gen, 2, 1));
  MD_ASSERT_OK(leader.Checkpoint());

  MD_ASSERT_OK_AND_ASSIGN(CheckpointInfo info,
                          replication::PeekCurrentCheckpoint(dir));
  EXPECT_EQ(info.sequence, 2u);
  EXPECT_EQ(info.leader_epoch, 0u);
  EXPECT_EQ(info.views,
            (std::vector<std::string>{"monthly_sales", "per_store"}));

  // A vanished checkpoint directory peeks as DataLoss.
  std::filesystem::remove_all(StrCat(dir, "/", info.name));
  EXPECT_EQ(replication::PeekCurrentCheckpoint(dir).status().code(),
            StatusCode::kDataLoss);
}

// -------------------------------------------------------------------
// Kill-at-every-failpoint: the ship/replay pipeline, both ends.
// -------------------------------------------------------------------

// The scenario a child process runs: a leader and its follower in one
// process, catch-up after every batch, a mid-stream leader checkpoint
// (forcing a bootstrap for the late-joining follower). The armed
// failpoint kills the child wherever it lands — leader WAL append,
// checkpoint rename, follower replica log, checkpoint transfer.
//
// Driver-only: skipped unless MINDETAIL_REPL_DIR is set.
TEST(ReplicationChildProcess, Run) {
  const char* dir_env = std::getenv("MINDETAIL_REPL_DIR");
  if (dir_env == nullptr) GTEST_SKIP() << "driver-only child scenario";
  const std::string base = dir_env;
  MD_ASSERT_OK(Failpoints::ArmFromEnv());

  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          OpenLeader(base + "/leader", source));
  RetailDeltaGenerator gen(kSeed);

  // Two batches before the follower exists, then a checkpoint — the
  // follower must bootstrap, exercising the transfer failpoints.
  MD_ASSERT_OK(FeedBatches(leader, source, gen, 2, 1));
  MD_ASSERT_OK(leader.Checkpoint());

  MD_ASSERT_OK_AND_ASSIGN(
      Follower follower,
      Follower::Open(base + "/leader", base + "/follower"));
  MD_ASSERT_OK(follower.CatchUp().status());

  for (int i = 3; i <= 6; ++i) {
    MD_ASSERT_OK(FeedBatches(leader, source, gen, 1, i));
    MD_ASSERT_OK(follower.CatchUp().status());
  }
}

std::string SelfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

// After any crash: reopen both sides, reconnect, and the pair must
// reconverge bit-identically; then promote the follower and prove the
// epoch fence refuses the deposed leader.
void VerifyReconvergence(const std::string& base) {
  MD_ASSERT_OK_AND_ASSIGN(Warehouse leader,
                          Warehouse::Open(base + "/leader"));
  MD_ASSERT_OK_AND_ASSIGN(
      Follower follower,
      Follower::Open(base + "/leader", base + "/follower"));
  // One round bootstraps if needed, a second drains anything the first
  // raced with; both may be pure no-ops.
  MD_ASSERT_OK(follower.CatchUp().status());
  MD_ASSERT_OK(follower.CatchUp().status());
  ASSERT_EQ(follower.applied_sequence(), leader.last_sequence());
  ExpectBitIdentical(leader, follower.warehouse());

  // Failover after the crash: the promoted replica fences the old
  // leader's epoch, even for a frame with a plausible next sequence.
  Warehouse& promoted = follower.warehouse();
  const uint64_t fence_before = promoted.leader_epoch();
  MD_ASSERT_OK(promoted.PromoteToLeader());
  ASSERT_GT(promoted.leader_epoch(), fence_before);
  WriteAheadLog::Record stale;
  stale.sequence = promoted.last_sequence() + 1;
  stale.kind = WriteAheadLog::kKindTransaction;
  stale.epoch = fence_before;  // The deposed leader's epoch.
  EXPECT_EQ(promoted.ApplyReplicated(stale).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReplicationCrashTest, KillAtEveryFailpointReconverges) {
  const std::string exe = SelfExePath();
  ASSERT_FALSE(exe.empty());
  int crashes = 0;
  for (const std::string& site : Failpoints::KnownSites()) {
    for (int trigger : {1, 3}) {
      SCOPED_TRACE(StrCat(site, ":crash:", trigger));
      const std::string base =
          (std::filesystem::temp_directory_path() /
           StrCat("mindetail_repl_crash_", site, "_", trigger))
              .string();
      std::filesystem::remove_all(base);
      std::filesystem::create_directories(base);

      const std::string cmd = StrCat(
          "MINDETAIL_REPL_DIR='", base, "' MINDETAIL_FAILPOINT='", site,
          ":crash:", trigger, "' '", exe,
          "' --gtest_filter=ReplicationChildProcess.Run >/dev/null 2>&1");
      const int rc = std::system(cmd.c_str());
      ASSERT_TRUE(WIFEXITED(rc)) << "child did not exit normally";
      const int exit_code = WEXITSTATUS(rc);
      ASSERT_TRUE(exit_code == 0 ||
                  exit_code == Failpoints::kCrashExitCode)
          << "child exit code " << exit_code;
      if (exit_code == Failpoints::kCrashExitCode) ++crashes;

      VerifyReconvergence(base);
      std::filesystem::remove_all(base);
    }
  }
  // The harness must actually kill the child at (most of) the sites —
  // including the replication-specific ones — or it proves nothing.
  EXPECT_GE(crashes, 8) << "too few failpoints fired";
}

}  // namespace
}  // namespace mindetail
