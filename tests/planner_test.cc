// Serving-layer planner units: every CSMAS accept/reject rule of the
// summary roll-up rewriter, the auxiliary-view fallback, the
// invalidation-aware result cache, and the snapshot-backed View() path.
// All fixtures use int64 measures, so every comparison against direct
// GPSJ evaluation is exact (TablesExactlyEqual, no tolerance).

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "gpsj/evaluator.h"
#include "maintenance/warehouse.h"
#include "serve/planner.h"
#include "test_util.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::TablesExactlyEqual;

// The paper's Table 3 instance: sale(id, timeid, productid, price) with
// int64 prices, joined to time and product.
constexpr char kViewSql[] = R"sql(
  CREATE VIEW by_time_brand AS
  SELECT time.id, product.brand, SUM(sale.price) AS Total,
         COUNT(*) AS Cnt, AVG(sale.price) AS AvgPrice
  FROM sale, time, product
  WHERE sale.timeid = time.id AND sale.productid = product.id
  GROUP BY time.id, product.brand
)sql";

// Warehouse with the fixture view registered and its catalog.
struct Served {
  Catalog catalog;
  Warehouse warehouse;
};

Served MakeServed(WarehouseOptions options = WarehouseOptions{}) {
  Served s{PaperTable3Fixture(), Warehouse(std::move(options))};
  MD_CHECK(s.warehouse.AddViewSql(s.catalog, kViewSql).ok());
  return s;
}

// Oracle: evaluate the ad-hoc query directly over the base tables.
Table Oracle(const Catalog& catalog, const std::string& sql) {
  Result<GpsjViewDef> def = ParseServeQuery(catalog, sql);
  MD_CHECK(def.ok());
  Result<Table> table = EvaluateGpsj(catalog, *def);
  MD_CHECK(table.ok());
  return std::move(table).value();
}

// -------------------------------------------------------------------
// Summary roll-up: accepted rewrites.
// -------------------------------------------------------------------

TEST(PlannerTest, RollupCoarserGroupingMatchesOracleExactly) {
  Served s = MakeServed();
  const std::string sql =
      "SELECT product.brand, SUM(sale.price) AS T, COUNT(*) AS C, "
      "AVG(sale.price) AS A "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY product.brand";
  MD_ASSERT_OK_AND_ASSIGN(Table got, s.warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, sql), got));

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          s.warehouse.ExplainQuery(sql));
  EXPECT_TRUE(explain.answerable);
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kSummaryRollup);
  // The rendered report keeps the classic wording.
  EXPECT_NE(explain.ToString().find("via summary roll-up"),
            std::string::npos);
}

TEST(PlannerTest, RollupScalarQueryMatchesOracleExactly) {
  Served s = MakeServed();
  const std::string sql =
      "SELECT SUM(sale.price) AS T, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id";
  MD_ASSERT_OK_AND_ASSIGN(Table got, s.warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, sql), got));
}

TEST(PlannerTest, RollupExtraSelectionOnRetainedGroupBy) {
  Served s = MakeServed();
  // product.brand is a group-by output of the view, so the extra
  // selection filters summary rows directly.
  const std::string sql =
      "SELECT time.id, SUM(sale.price) AS T, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "AND product.brand = 'Alpha' "
      "GROUP BY time.id";
  MD_ASSERT_OK_AND_ASSIGN(Table got, s.warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, sql), got));

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          s.warehouse.ExplainQuery(sql));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kSummaryRollup);
}

TEST(PlannerTest, SameGroupingCopiesViewAggregates) {
  Served s = MakeServed();
  const std::string sql =
      "SELECT time.id, product.brand, AVG(sale.price) AS A, "
      "COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY time.id, product.brand";
  MD_ASSERT_OK_AND_ASSIGN(Table got, s.warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, sql), got));
}

TEST(PlannerTest, RollupAppliesQueryHaving) {
  Served s = MakeServed();
  const std::string sql =
      "SELECT product.brand, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY product.brand "
      "HAVING C >= 3";
  MD_ASSERT_OK_AND_ASSIGN(Table got, s.warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, sql), got));
}

// -------------------------------------------------------------------
// Auxiliary-view fallback.
// -------------------------------------------------------------------

TEST(PlannerTest, AuxJoinAnswersFinerGrouping) {
  Served s = MakeServed();
  // sale.productid is not a group-by output of the view, so the summary
  // is too coarse — but the root auxiliary view retains it (join attr).
  const std::string sql =
      "SELECT sale.productid, SUM(sale.price) AS T, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY sale.productid";
  MD_ASSERT_OK_AND_ASSIGN(Table got, s.warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, sql), got));

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          s.warehouse.ExplainQuery(sql));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kAuxJoin);
  EXPECT_NE(explain.ToString().find("via auxiliary-view join"),
            std::string::npos);
}

TEST(PlannerTest, AuxJoinAnswersSelectionOnNonRetainedAttribute) {
  Served s = MakeServed();
  // sale.productid is not retained by the summary, so the extra
  // selection forces the auxiliary-view path.
  const std::string sql =
      "SELECT time.id, SUM(sale.price) AS T, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "AND sale.productid = 2 "
      "GROUP BY time.id";
  MD_ASSERT_OK_AND_ASSIGN(Table got, s.warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, sql), got));

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          s.warehouse.ExplainQuery(sql));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kAuxJoin);
}

// -------------------------------------------------------------------
// Rejections.
// -------------------------------------------------------------------

TEST(PlannerTest, RejectsAggregateNeitherStrategySupports) {
  Served s = MakeServed();
  // The view has no MIN output, and smart duplicate compression folded
  // sale.price into sum_price — the plain column is gone from the root
  // auxiliary view, so neither strategy can answer MIN.
  const std::string sql =
      "SELECT product.brand, MIN(sale.price) AS M "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY product.brand";
  Result<Table> got = s.warehouse.Query(sql);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_NE(got.status().message().find(
                "no materialized view can answer the query"),
            std::string::npos);

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          s.warehouse.ExplainQuery(sql));
  EXPECT_FALSE(explain.answerable);
  EXPECT_FALSE(explain.unanswerable_reason.empty());
  EXPECT_NE(explain.ToString().find("unanswerable:"), std::string::npos);
}

TEST(PlannerTest, RejectsDifferentTableSet) {
  Served s = MakeServed();
  const std::string sql =
      "SELECT time.id, COUNT(*) AS C "
      "FROM sale, time "
      "WHERE sale.timeid = time.id "
      "GROUP BY time.id";
  Result<Table> got = s.warehouse.Query(sql);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("different table sets"),
            std::string::npos);
}

TEST(PlannerTest, RejectsWhenViewFiltersMoreThanQuery) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, R"sql(
    CREATE VIEW narrow AS
    SELECT product.brand, COUNT(*) AS Cnt
    FROM sale, time, product
    WHERE sale.timeid = time.id AND sale.productid = product.id
      AND time.year = 1998
    GROUP BY product.brand
  )sql"));
  const std::string sql =
      "SELECT product.brand, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY product.brand";
  Result<Table> got = warehouse.Query(sql);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("view filters"),
            std::string::npos);
}

TEST(PlannerTest, RejectsDistinctOverCoarserGroups) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, R"sql(
    CREATE VIEW with_distinct AS
    SELECT time.id, COUNT(DISTINCT product.brand) AS Brands,
           COUNT(*) AS Cnt
    FROM sale, time, product
    WHERE sale.timeid = time.id AND sale.productid = product.id
    GROUP BY time.id
  )sql"));
  // Coarser than the view: the per-group distinct sets cannot be
  // merged, so the summary rejects; the aux fallback answers instead
  // (product.brand survives in product's auxiliary view).
  const std::string sql =
      "SELECT COUNT(DISTINCT product.brand) AS B, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id";
  MD_ASSERT_OK_AND_ASSIGN(Table got, warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(catalog, sql), got));

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          warehouse.ExplainQuery(sql));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kAuxJoin);
}

TEST(PlannerTest, SameGroupingCopiesDistinctAggregate) {
  Catalog catalog = PaperTable3Fixture();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(catalog, R"sql(
    CREATE VIEW with_distinct AS
    SELECT time.id, COUNT(DISTINCT product.brand) AS Brands,
           COUNT(*) AS Cnt
    FROM sale, time, product
    WHERE sale.timeid = time.id AND sale.productid = product.id
    GROUP BY time.id
  )sql"));
  // Same grouping as the view: even the non-distributive DISTINCT
  // output carries over verbatim.
  const std::string sql =
      "SELECT time.id, COUNT(DISTINCT product.brand) AS B "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY time.id";
  MD_ASSERT_OK_AND_ASSIGN(Table got, warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(catalog, sql), got));

  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          warehouse.ExplainQuery(sql));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kSummaryRollup);
}

TEST(PlannerTest, NoViewsRegistered) {
  Warehouse warehouse;
  Result<Table> got = warehouse.Query("SELECT COUNT(*) AS C FROM sale");
  ASSERT_FALSE(got.ok());
  // An empty warehouse has no schema to parse against.
  EXPECT_NE(got.status().message().find("sale"), std::string::npos);
}

// -------------------------------------------------------------------
// Result cache.
// -------------------------------------------------------------------

constexpr char kBrandQuery[] =
    "SELECT product.brand, SUM(sale.price) AS T, COUNT(*) AS C "
    "FROM sale, time, product "
    "WHERE sale.timeid = time.id AND sale.productid = product.id "
    "GROUP BY product.brand";

TEST(ResultCacheTest, RepeatQueryHitsAndNormalizesSpelling) {
  Served s = MakeServed();
  MD_ASSERT_OK_AND_ASSIGN(Table first, s.warehouse.Query(kBrandQuery));
  EXPECT_EQ(s.warehouse.QueryCacheStats().misses, 1u);
  EXPECT_EQ(s.warehouse.QueryCacheStats().hits, 0u);

  // Same query, different whitespace/case — the parsed definition's
  // canonical rendering is the key, so this hits.
  const std::string variant =
      "select product.brand,  SUM(sale.price) AS T, COUNT(*) AS C\n"
      "FROM sale, time, product\n"
      "WHERE sale.timeid = time.id AND sale.productid = product.id\n"
      "GROUP BY product.brand;";
  MD_ASSERT_OK_AND_ASSIGN(Table second, s.warehouse.Query(variant));
  EXPECT_EQ(s.warehouse.QueryCacheStats().hits, 1u);
  EXPECT_TRUE(TablesExactlyEqual(first, second));
}

TEST(ResultCacheTest, BatchTouchingSourceViewInvalidates) {
  Served s = MakeServed();
  MD_ASSERT_OK_AND_ASSIGN(Table before, s.warehouse.Query(kBrandQuery));

  Delta delta;
  delta.inserts.push_back(
      {Value(int64_t{7}), Value(int64_t{1}), Value(int64_t{2}),
       Value(int64_t{50})});
  std::map<std::string, Delta> changes;
  changes.emplace("sale", delta);
  MD_ASSERT_OK(s.warehouse.ApplyTransaction(changes));
  EXPECT_GE(s.warehouse.QueryCacheStats().invalidations, 1u);

  // Re-query: a miss, and the fresh answer reflects the batch.
  MD_ASSERT_OK(ApplyDelta(*s.catalog.MutableTable("sale"), delta));
  MD_ASSERT_OK_AND_ASSIGN(Table after, s.warehouse.Query(kBrandQuery));
  EXPECT_EQ(s.warehouse.QueryCacheStats().misses, 2u);
  EXPECT_EQ(s.warehouse.QueryCacheStats().hits, 0u);
  EXPECT_TRUE(TablesExactlyEqual(Oracle(s.catalog, kBrandQuery), after));
  EXPECT_FALSE(TablesExactlyEqual(before, after));
}

TEST(ResultCacheTest, SurvivesBatchesTouchingOtherViews) {
  // Two views over different tables: a batch against `store` touches
  // per_store but not monthly_sales, so monthly answers stay cached.
  RetailWarehouse retail = test::SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, R"sql(
    CREATE VIEW monthly_sales AS
    SELECT time.month, COUNT(*) AS Cnt
    FROM sale, time
    WHERE sale.timeid = time.id
    GROUP BY time.month
  )sql"));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, R"sql(
    CREATE VIEW per_store AS
    SELECT store.city, COUNT(*) AS Cnt
    FROM sale, store
    WHERE sale.storeid = store.id
    GROUP BY store.city
  )sql"));
  const std::string sql =
      "SELECT COUNT(*) AS C FROM sale, time "
      "WHERE sale.timeid = time.id";
  MD_ASSERT_OK_AND_ASSIGN(Table first, warehouse.Query(sql));

  Delta delta;
  delta.inserts.push_back({Value(int64_t{900001}), Value("1 New St"),
                           Value("Springfield"), Value("US"),
                           Value("Kim")});
  std::map<std::string, Delta> changes;
  changes.emplace("store", std::move(delta));
  MD_ASSERT_OK(warehouse.ApplyTransaction(changes));

  MD_ASSERT_OK_AND_ASSIGN(Table second, warehouse.Query(sql));
  EXPECT_EQ(warehouse.QueryCacheStats().hits, 1u);
  EXPECT_TRUE(TablesExactlyEqual(first, second));
}

TEST(ResultCacheTest, LruEvictionUnderCapacityPressure) {
  Served s = MakeServed(WarehouseOptions{}.WithResultCache(1));
  MD_ASSERT_OK(s.warehouse.Query(kBrandQuery).status());
  const std::string other =
      "SELECT time.id, COUNT(*) AS C "
      "FROM sale, time, product "
      "WHERE sale.timeid = time.id AND sale.productid = product.id "
      "GROUP BY time.id";
  MD_ASSERT_OK(s.warehouse.Query(other).status());
  EXPECT_EQ(s.warehouse.QueryCacheStats().evictions, 1u);
  // The first query was evicted: asking again misses.
  MD_ASSERT_OK(s.warehouse.Query(kBrandQuery).status());
  EXPECT_EQ(s.warehouse.QueryCacheStats().hits, 0u);
  EXPECT_EQ(s.warehouse.QueryCacheStats().misses, 3u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  Served s = MakeServed(WarehouseOptions{}.WithResultCache(0));
  MD_ASSERT_OK(s.warehouse.Query(kBrandQuery).status());
  MD_ASSERT_OK(s.warehouse.Query(kBrandQuery).status());
  EXPECT_EQ(s.warehouse.QueryCacheStats().hits, 0u);
  EXPECT_EQ(s.warehouse.QueryCacheStats().insertions, 0u);
}

TEST(ResultCacheTest, ExplainReportsCacheState) {
  Served s = MakeServed();
  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation cold,
                          s.warehouse.ExplainQuery(kBrandQuery));
  ASSERT_TRUE(cold.has_cache);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_NE(cold.ToString().find("result cache: miss"), std::string::npos);
  MD_ASSERT_OK(s.warehouse.Query(kBrandQuery).status());
  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation warm,
                          s.warehouse.ExplainQuery(kBrandQuery));
  ASSERT_TRUE(warm.has_cache);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_NE(warm.ToString().find("result cache: hit"), std::string::npos);
}

// -------------------------------------------------------------------
// Snapshot-backed View() and the serving switch.
// -------------------------------------------------------------------

TEST(ServingSwitchTest, ViewMatchesEngineRenderExactly) {
  Served s = MakeServed();
  MD_ASSERT_OK_AND_ASSIGN(Table snapshot_view,
                          s.warehouse.View("by_time_brand"));
  MD_ASSERT_OK_AND_ASSIGN(Table engine_view,
                          s.warehouse.engine("by_time_brand").View());
  EXPECT_TRUE(TablesExactlyEqual(engine_view, snapshot_view));
}

TEST(ServingSwitchTest, DisabledServingRejectsQueryButServesView) {
  Served s = MakeServed(WarehouseOptions{}.WithServing(false));
  EXPECT_EQ(s.warehouse.CurrentSnapshot(), nullptr);
  Result<Table> q = s.warehouse.Query(kBrandQuery);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
  // View() falls back to the live engine render.
  MD_ASSERT_OK_AND_ASSIGN(Table view, s.warehouse.View("by_time_brand"));
  MD_ASSERT_OK_AND_ASSIGN(Table engine_view,
                          s.warehouse.engine("by_time_brand").View());
  EXPECT_TRUE(TablesExactlyEqual(engine_view, view));
}

TEST(ServingSwitchTest, RemoveViewDropsItFromSnapshotAndCache) {
  Served s = MakeServed();
  MD_ASSERT_OK(s.warehouse.Query(kBrandQuery).status());
  MD_ASSERT_OK(s.warehouse.RemoveView("by_time_brand"));
  EXPECT_FALSE(s.warehouse.CurrentSnapshot()->HasView("by_time_brand"));
  Result<Table> q = s.warehouse.Query(kBrandQuery);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mindetail
