// Shared snowflake-schema test harness: a parameterized GPSJ view over
// a generated snowflake, and a randomized referential-integrity-
// consistent delta stream against it. Used by the property tests
// (engine vs oracle, parallel vs serial) and the differential stress
// test (all maintainers against each other).

#ifndef MINDETAIL_TESTS_SNOWFLAKE_STREAM_H_
#define MINDETAIL_TESTS_SNOWFLAKE_STREAM_H_

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.h"
#include "gpsj/builder.h"
#include "relational/delta.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace test {

struct SnowflakeViewFlags {
  bool non_csmas = false;       // Add MAX and COUNT DISTINCT outputs.
  bool fact_condition = false;  // Selection on the fact's m1 measure.
  bool exposed_dim = false;     // Selection on dim0.a; updates to `a`
                                // then travel the exposed-update path.
};

// Builds a view over the whole snowflake: group by a couple of
// dimension attributes, aggregate the fact measures. `name` lets one
// warehouse register several variants side by side.
inline Result<GpsjViewDef> BuildSnowflakeView(
    const SnowflakeWarehouse& warehouse, const SnowflakeViewFlags& flags,
    const std::string& name = "property_view") {
  GpsjViewBuilder builder(name);
  builder.From(warehouse.fact);
  for (const std::string& dim : warehouse.dims) {
    builder.From(dim);
    builder.Join(warehouse.parent.at(dim), warehouse.link_attr.at(dim),
                 dim);
  }
  if (!warehouse.dims.empty()) {
    builder.GroupBy(warehouse.dims.front(), "a", "GroupA");
    if (warehouse.dims.size() > 1) {
      builder.GroupBy(warehouse.dims.back(), "a", "GroupB");
    }
    // SUM over m1 is only legal when m1 is not a group-by attribute.
    builder.Sum(warehouse.fact, "m1", "SumM1");
  } else {
    builder.GroupBy(warehouse.fact, "m1", "GroupM1");
  }
  builder.CountStar("Cnt").Avg(warehouse.fact, "m2", "AvgM2").Sum(
      warehouse.fact, "m2", "SumM2");
  if (flags.non_csmas) {
    builder.Max(warehouse.fact, "m2", "MaxM2");
    if (!warehouse.dims.empty()) {
      builder.CountDistinct(warehouse.dims.front(), "s", "DistinctS");
    }
  }
  if (flags.fact_condition) {
    builder.Where(warehouse.fact, "m1", CompareOp::kGe,
                  Value(int64_t{2}));
  }
  if (flags.exposed_dim && !warehouse.dims.empty()) {
    // A selection on the exposed dimension's `a` attribute; updates to
    // `a` flow through the exposed-update machinery (delete+insert with
    // join reductions disabled for that dimension).
    builder.Where(warehouse.dims.front(), "a", CompareOp::kLe,
                  Value(int64_t{2}));
  }
  return builder.Build(warehouse.catalog);
}

// One random, RI-consistent change batch against a random table.
struct GeneratedDelta {
  std::string table;
  Delta delta;
};

inline GeneratedDelta MakeSnowflakeDelta(const SnowflakeWarehouse& warehouse,
                                         const Catalog& source, Rng& rng,
                                         bool append_only) {
  GeneratedDelta out;
  const int choice = static_cast<int>(rng.NextBelow(10));
  const Table* fact = *source.GetTable(warehouse.fact);

  if (choice < 5 || warehouse.dims.empty()) {
    // Fact batch: inserts referencing existing dims, deletes, updates.
    // Append-only runs produce pure insert streams.
    out.table = warehouse.fact;
    int64_t next_id = 0;
    for (const Tuple& row : fact->rows()) {
      next_id = std::max(next_id, row[0].AsInt64());
    }
    ++next_id;
    const size_t ins = rng.NextBelow(12);
    const size_t del = append_only ? 0 : rng.NextBelow(8);
    const size_t upd = append_only ? 0 : rng.NextBelow(6);
    const size_t fk_count = fact->schema().size() - 3;  // id, …, m1, m2.
    for (size_t i = 0; i < ins; ++i) {
      Tuple row = {Value(next_id++)};
      for (size_t f = 0; f < fk_count; ++f) {
        // Reference an existing row of the corresponding dimension.
        const std::string fk_attr = fact->schema().attribute(1 + f).name;
        const std::string dim = fk_attr.substr(3);  // strip "fk_".
        const Table* dim_table = *source.GetTable(dim);
        row.push_back(
            dim_table->row(rng.NextBelow(dim_table->NumRows()))[0]);
      }
      row.push_back(Value(rng.NextInt(0, 9)));
      row.push_back(Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0));
      out.delta.inserts.push_back(std::move(row));
    }
    std::set<int64_t> touched;
    for (size_t i = 0; i < del && fact->NumRows() > 0; ++i) {
      const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
      if (!touched.insert(row[0].AsInt64()).second) continue;
      out.delta.deletes.push_back(row);
    }
    for (size_t i = 0; i < upd && fact->NumRows() > 0; ++i) {
      const Tuple& row = fact->row(rng.NextBelow(fact->NumRows()));
      if (!touched.insert(row[0].AsInt64()).second) continue;
      Tuple after = row;
      after[after.size() - 2] = Value(rng.NextInt(0, 9));
      after[after.size() - 1] =
          Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0);
      out.delta.updates.push_back(Update{row, std::move(after)});
    }
    return out;
  }

  // Dimension batch: updates to preserved attributes (a, b, s) and —
  // for leaf dimensions — fresh inserts. `a` of an exposed-flagged dim
  // exercises the exposed-update path when a condition references it;
  // here `a` is only preserved, so updates are protected, not exposed.
  const std::string dim =
      warehouse.dims[rng.NextBelow(warehouse.dims.size())];
  out.table = dim;
  const Table* dim_table = *source.GetTable(dim);
  const size_t upd = append_only ? 0 : 1 + rng.NextBelow(4);
  std::set<int64_t> touched;
  for (size_t i = 0; i < upd; ++i) {
    const Tuple& row = dim_table->row(rng.NextBelow(dim_table->NumRows()));
    if (!touched.insert(row[0].AsInt64()).second) continue;
    Tuple after = row;
    const size_t a_idx = *dim_table->schema().IndexOf("a");
    const size_t s_idx = *dim_table->schema().IndexOf("s");
    after[a_idx] = Value(rng.NextInt(0, 4));
    after[s_idx] = Value(std::string("v") +
                         std::to_string(rng.NextInt(0, 6)));
    out.delta.updates.push_back(Update{row, std::move(after)});
  }
  // Leaf dims (no children in the fact's FK list) can take fresh rows.
  if (warehouse.link_attr.count(dim) > 0 && rng.NextBool(0.4)) {
    int64_t next_id = 0;
    for (const Tuple& row : dim_table->rows()) {
      next_id = std::max(next_id, row[0].AsInt64());
    }
    Tuple fresh = {Value(next_id + 1)};
    // Child link attributes of this dim, if any, must reference
    // existing rows.
    for (size_t c = 1; c + 3 < dim_table->schema().size() + 0; ++c) {
      const std::string& name = dim_table->schema().attribute(c).name;
      if (name.rfind("fk_", 0) != 0) break;
      const Table* child = *source.GetTable(name.substr(3));
      fresh.push_back(child->row(rng.NextBelow(child->NumRows()))[0]);
    }
    fresh.push_back(Value(rng.NextInt(0, 4)));
    fresh.push_back(Value(static_cast<double>(rng.NextInt(2, 40)) / 2.0));
    fresh.push_back(
        Value(std::string("v") + std::to_string(rng.NextInt(0, 6))));
    out.delta.inserts.push_back(std::move(fresh));
  }
  return out;
}

}  // namespace test
}  // namespace mindetail

#endif  // MINDETAIL_TESTS_SNOWFLAKE_STREAM_H_
