// Derived attributes — "general expressions in the select clause"
// (paper Sec. 4 future work): per-row arithmetic over one table's
// attributes, usable in aggregates and group-bys and carried through
// reduction, compression, and maintenance.

#include "gpsj/parser.h"
#include "gtest/gtest.h"
#include "maintenance/baselines.h"
#include "maintenance/engine.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;
using test::TablesApproxEqual;

// A fixture with a quantity column so products of attributes are
// meaningful.
Catalog OrdersFixture() {
  Catalog catalog;
  MD_CHECK(catalog
               .CreateTable("orders",
                            Schema({{"id", ValueType::kInt64},
                                    {"custid", ValueType::kInt64},
                                    {"price", ValueType::kInt64},
                                    {"qty", ValueType::kInt64}}),
                            "id")
               .ok());
  MD_CHECK(catalog
               .CreateTable("customer",
                            Schema({{"id", ValueType::kInt64},
                                    {"region", ValueType::kString}}),
                            "id")
               .ok());
  MD_CHECK(catalog.AddForeignKey("orders", "custid", "customer").ok());
  Table* customer = *catalog.MutableTable("customer");
  MD_CHECK(customer->Insert({Value(1), Value("EU")}).ok());
  MD_CHECK(customer->Insert({Value(2), Value("US")}).ok());
  Table* orders = *catalog.MutableTable("orders");
  MD_CHECK(orders->Insert({Value(1), Value(1), Value(10), Value(3)}).ok());
  MD_CHECK(orders->Insert({Value(2), Value(1), Value(5), Value(2)}).ok());
  MD_CHECK(orders->Insert({Value(3), Value(2), Value(7), Value(4)}).ok());
  MD_CHECK(orders->Insert({Value(4), Value(2), Value(7), Value(4)}).ok());
  return catalog;
}

GpsjViewDef RevenueView(const Catalog& catalog) {
  GpsjViewBuilder builder("revenue_by_region");
  builder.From("orders")
      .From("customer")
      .Join("orders", "custid", "customer")
      .Derive("orders", "revenue", "price", DerivedAttr::Op::kMul, "qty")
      .GroupBy("customer", "region", "Region")
      .Sum("orders", "revenue", "Revenue")
      .CountStar("Orders");
  Result<GpsjViewDef> def = builder.Build(catalog);
  MD_CHECK(def.ok());
  return std::move(def).value();
}

TEST(DerivedTest, EvaluatorComputesExpressions) {
  Catalog catalog = OrdersFixture();
  GpsjViewDef def = RevenueView(catalog);
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));
  ASSERT_EQ(view.NumRows(), 2u);
  // EU: 10*3 + 5*2 = 40; US: 7*4 + 7*4 = 56.
  EXPECT_EQ(view.row(0)[0], Value("EU"));
  EXPECT_EQ(view.row(0)[1], Value(40));
  EXPECT_EQ(view.row(1)[1], Value(56));
}

TEST(DerivedTest, CompressionTreatsDerivedLikeBaseAttrs) {
  Catalog catalog = OrdersFixture();
  GpsjViewDef def = RevenueView(catalog);
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  const CompressionPlan& plan = derivation.aux_for("orders").plan;
  EXPECT_TRUE(plan.compressed);
  // revenue is used only in a CSMAS SUM → compressed into sum_revenue.
  EXPECT_GE(plan.SumColumnIndex("revenue"), 0);
  EXPECT_EQ(plan.PlainColumnIndex("revenue"), -1);
  // price/qty themselves are not stored at all.
  EXPECT_EQ(plan.PlainColumnIndex("price"), -1);
  EXPECT_EQ(plan.PlainColumnIndex("qty"), -1);
}

TEST(DerivedTest, EngineMaintainsThroughRootChanges) {
  Catalog catalog = OrdersFixture();
  GpsjViewDef def = RevenueView(catalog);
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(catalog, def));
  // Insert, update (price change reshapes revenue), delete.
  Delta delta;
  delta.inserts.push_back({Value(9), Value(1), Value(8), Value(5)});
  delta.updates.push_back(Update{{Value(3), Value(2), Value(7), Value(4)},
                                 {Value(3), Value(2), Value(9), Value(4)}});
  delta.deletes.push_back({Value(2), Value(1), Value(5), Value(2)});
  MD_ASSERT_OK(engine.Apply("orders", delta));
  MD_ASSERT_OK(ApplyDelta(*catalog.MutableTable("orders"), delta));
  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(catalog, def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
  // EU: 40 - 10 + 40 = 70; US: 56 - 28 + 36 = 64.
  EXPECT_EQ(view.row(0)[1], Value(70));
  EXPECT_EQ(view.row(1)[1], Value(64));
}

TEST(DerivedTest, ConstantExpression) {
  Catalog catalog = OrdersFixture();
  GpsjViewBuilder builder("with_tax");
  builder.From("orders")
      .DeriveConst("orders", "taxed", "price", DerivedAttr::Op::kMul,
                   Value(2.0))
      .GroupBy("orders", "custid", "Cust")
      .Sum("orders", "taxed", "Taxed")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));
  // Cust 1: (10+5)*2 = 30; cust 2: (7+7)*2 = 28.
  EXPECT_DOUBLE_EQ(view.row(0)[1].NumericAsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(view.row(1)[1].NumericAsDouble(), 28.0);
}

TEST(DerivedTest, AddAndSubOperators) {
  Catalog catalog = OrdersFixture();
  GpsjViewBuilder builder("spread");
  builder.From("orders")
      .Derive("orders", "total_plus", "price", DerivedAttr::Op::kAdd, "qty")
      .Derive("orders", "margin", "price", DerivedAttr::Op::kSub, "qty")
      .GroupBy("orders", "custid", "Cust")
      .Sum("orders", "total_plus", "Plus")
      .Sum("orders", "margin", "Minus");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));
  // Cust 1: plus (13 + 7) = 20, minus (7 + 3) = 10.
  EXPECT_EQ(view.row(0)[1], Value(20));
  EXPECT_EQ(view.row(0)[2], Value(10));
}

TEST(DerivedTest, BuilderValidation) {
  Catalog catalog = OrdersFixture();
  {
    // Name collision with a base attribute.
    GpsjViewBuilder builder("v");
    builder.From("orders")
        .Derive("orders", "price", "price", DerivedAttr::Op::kMul, "qty")
        .GroupBy("orders", "custid")
        .CountStar("Cnt");
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kAlreadyExists);
  }
  {
    // Missing operand.
    GpsjViewBuilder builder("v");
    builder.From("orders")
        .Derive("orders", "x", "ghost", DerivedAttr::Op::kMul, "qty")
        .GroupBy("orders", "custid")
        .CountStar("Cnt");
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kNotFound);
  }
  {
    // Non-numeric operand.
    GpsjViewBuilder builder("v");
    builder.From("customer")
        .Derive("customer", "x", "region", DerivedAttr::Op::kMul, "id")
        .GroupBy("customer", "id")
        .CountStar("Cnt");
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Derived attribute in a condition.
    GpsjViewBuilder builder("v");
    builder.From("orders")
        .Derive("orders", "rev", "price", DerivedAttr::Op::kMul, "qty")
        .Where("orders", "rev", CompareOp::kGt, Value(int64_t{10}))
        .GroupBy("orders", "custid")
        .CountStar("Cnt");
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Derivation on a table outside the FROM list.
    GpsjViewBuilder builder("v");
    builder.From("orders")
        .Derive("customer", "x", "id", DerivedAttr::Op::kMul, "id")
        .GroupBy("orders", "custid")
        .CountStar("Cnt");
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(DerivedTest, ParserExpressionsEndToEnd) {
  Catalog catalog = OrdersFixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView(R"sql(
        CREATE VIEW rev AS
        SELECT customer.region, SUM(orders.price * orders.qty) AS Revenue,
               COUNT(*) AS Cnt
        FROM orders, customer
        WHERE orders.custid = customer.id
        GROUP BY customer.region
        HAVING SUM(orders.price * orders.qty) > 45
      )sql",
                    catalog));
  EXPECT_EQ(def.DerivedAttrsOf("orders").size(), 1u);
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));
  ASSERT_EQ(view.NumRows(), 1u);  // Only US (56) passes HAVING > 45.
  EXPECT_EQ(view.row(0)[0], Value("US"));
  EXPECT_EQ(view.row(0)[1], Value(56));
}

TEST(DerivedTest, ParserConstantAndNegativeLiterals) {
  Catalog catalog = OrdersFixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView(R"sql(
        CREATE VIEW v AS
        SELECT orders.custid, SUM(orders.price - 1) AS Discounted
        FROM orders
        WHERE orders.price > -100
        GROUP BY orders.custid
      )sql",
                    catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));
  // Cust 1: (10-1)+(5-1) = 13.
  EXPECT_EQ(view.row(0)[1], Value(13));
}

TEST(DerivedTest, DimensionDerivedUpdateFlowsThroughDeltaJoin) {
  // Put the expression on the dimension side: customers carry a numeric
  // weight; the view sums weight*2 across orders.
  Catalog catalog;
  MD_CHECK(catalog
               .CreateTable("orders",
                            Schema({{"id", ValueType::kInt64},
                                    {"custid", ValueType::kInt64}}),
                            "id")
               .ok());
  MD_CHECK(catalog
               .CreateTable("customer",
                            Schema({{"id", ValueType::kInt64},
                                    {"tier", ValueType::kInt64},
                                    {"region", ValueType::kString}}),
                            "id")
               .ok());
  MD_CHECK(catalog.AddForeignKey("orders", "custid", "customer").ok());
  Table* customer = *catalog.MutableTable("customer");
  MD_CHECK(customer->Insert({Value(1), Value(2), Value("EU")}).ok());
  MD_CHECK(customer->Insert({Value(2), Value(5), Value("US")}).ok());
  Table* orders = *catalog.MutableTable("orders");
  for (int i = 1; i <= 6; ++i) {
    MD_CHECK(orders->Insert({Value(i), Value(i % 2 + 1)}).ok());
  }

  GpsjViewBuilder builder("weighted");
  builder.From("orders")
      .From("customer")
      .Join("orders", "custid", "customer")
      .DeriveConst("customer", "tier2", "tier", DerivedAttr::Op::kMul,
                   Value(int64_t{2}))
      .GroupBy("customer", "region", "Region")
      .Sum("customer", "tier2", "TierMass")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(catalog, def));

  // Update the base operand `tier` of customer 1: the stored derived
  // `tier2` must follow through the delta join.
  Delta delta;
  delta.updates.push_back(Update{{Value(1), Value(2), Value("EU")},
                                 {Value(1), Value(7), Value("EU")}});
  MD_ASSERT_OK(engine.Apply("customer", delta));
  MD_ASSERT_OK(ApplyDelta(*catalog.MutableTable("customer"), delta));
  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(catalog, def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

TEST(DerivedTest, BaselinesAgreeOnDerivedViews) {
  Catalog catalog = OrdersFixture();
  GpsjViewDef def = RevenueView(catalog);
  Catalog source = catalog;
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));
  MD_ASSERT_OK_AND_ASSIGN(PsjStyleMaintainer psj,
                          PsjStyleMaintainer::Create(source, def));
  MD_ASSERT_OK_AND_ASSIGN(FullReplicationMaintainer replication,
                          FullReplicationMaintainer::Create(source, def));

  Delta delta;
  delta.inserts.push_back({Value(10), Value(2), Value(3), Value(9)});
  delta.deletes.push_back({Value(1), Value(1), Value(10), Value(3)});
  MD_ASSERT_OK(engine.Apply("orders", delta));
  MD_ASSERT_OK(psj.Apply("orders", delta));
  MD_ASSERT_OK(replication.Apply("orders", delta));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("orders"), delta));

  MD_ASSERT_OK_AND_ASSIGN(Table a, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table b, psj.View());
  MD_ASSERT_OK_AND_ASSIGN(Table c, replication.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
  EXPECT_TRUE(TablesApproxEqual(a, oracle));
  EXPECT_TRUE(TablesApproxEqual(b, oracle));
  EXPECT_TRUE(TablesApproxEqual(c, oracle));
}

TEST(DerivedTest, GroupByOnDerivedAttribute) {
  Catalog catalog = OrdersFixture();
  GpsjViewBuilder builder("by_bucket");
  builder.From("orders")
      .DeriveConst("orders", "bucket", "price", DerivedAttr::Op::kSub,
                   Value(int64_t{5}))
      .GroupBy("orders", "bucket", "Bucket")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(catalog, def));
  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(catalog, def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
  // Buckets: 10-5=5 (1), 5-5=0 (1), 7-5=2 (2).
  EXPECT_EQ(view.NumRows(), 3u);
}

}  // namespace
}  // namespace mindetail
