#include "relational/schema.h"
#include "relational/table.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

Schema SaleSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"price", ValueType::kDouble},
                 {"note", ValueType::kString}});
}

TEST(SchemaTest, LookupAndContains) {
  Schema schema = SaleSchema();
  EXPECT_EQ(schema.size(), 3u);
  EXPECT_EQ(*schema.IndexOf("price"), 1u);
  EXPECT_FALSE(schema.IndexOf("missing").has_value());
  EXPECT_TRUE(schema.Contains("note"));
}

TEST(SchemaTest, AppendRejectsDuplicates) {
  Schema schema = SaleSchema();
  MD_ASSERT_OK(schema.Append({"extra", ValueType::kInt64}));
  Status status = schema.Append({"price", ValueType::kInt64});
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ValidateTupleChecksArityTypesAndNulls) {
  Schema schema = SaleSchema();
  MD_EXPECT_OK(schema.ValidateTuple({Value(1), Value(2.5), Value("x")}));
  // Arity.
  EXPECT_FALSE(schema.ValidateTuple({Value(1)}).ok());
  // Type.
  EXPECT_FALSE(
      schema.ValidateTuple({Value("s"), Value(2.5), Value("x")}).ok());
  // NULL rejected by default, allowed on request.
  Tuple with_null = {Value(1), Value(), Value("x")};
  EXPECT_FALSE(schema.ValidateTuple(with_null).ok());
  MD_EXPECT_OK(schema.ValidateTuple(with_null, /*allow_null=*/true));
  // Int literal into a double column is fine.
  MD_EXPECT_OK(schema.ValidateTuple({Value(1), Value(3), Value("x")}));
}

TEST(SchemaTest, ToStringRendersTypes) {
  EXPECT_EQ(SaleSchema().ToString(),
            "(id INT64, price DOUBLE, note STRING)");
}

TEST(TableTest, InsertAndKeyLookup) {
  MD_ASSERT_OK_AND_ASSIGN(Table table,
                          Table::WithKey("t", SaleSchema(), "id"));
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
  MD_ASSERT_OK(table.Insert({Value(2), Value(3.5), Value("b")}));
  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_TRUE(table.ContainsKey(Value(1)));
  EXPECT_FALSE(table.ContainsKey(Value(3)));
  const Tuple* row = table.FindByKey(Value(2));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[2], Value("b"));
}

TEST(TableTest, DuplicateKeyRejected) {
  MD_ASSERT_OK_AND_ASSIGN(Table table,
                          Table::WithKey("t", SaleSchema(), "id"));
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
  Status status = table.Insert({Value(1), Value(9.5), Value("z")});
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, WithKeyRequiresExistingAttribute) {
  Result<Table> table = Table::WithKey("t", SaleSchema(), "nope");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kNotFound);
}

TEST(TableTest, DeleteByKeyMaintainsIndex) {
  MD_ASSERT_OK_AND_ASSIGN(Table table,
                          Table::WithKey("t", SaleSchema(), "id"));
  for (int i = 1; i <= 5; ++i) {
    MD_ASSERT_OK(table.Insert({Value(i), Value(i + 0.5), Value("r")}));
  }
  MD_ASSERT_OK(table.DeleteByKey(Value(2)));
  EXPECT_EQ(table.NumRows(), 4u);
  EXPECT_FALSE(table.ContainsKey(Value(2)));
  // The swapped-in row (previously last) is still findable.
  for (int i : {1, 3, 4, 5}) {
    EXPECT_TRUE(table.ContainsKey(Value(i))) << i;
    EXPECT_EQ((*table.FindByKey(Value(i)))[0], Value(i));
  }
  EXPECT_EQ(table.DeleteByKey(Value(2)).code(), StatusCode::kNotFound);
}

TEST(TableTest, DeleteTupleRequiresExactMatch) {
  MD_ASSERT_OK_AND_ASSIGN(Table table,
                          Table::WithKey("t", SaleSchema(), "id"));
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
  // Right key, wrong payload.
  EXPECT_EQ(table.DeleteTuple({Value(1), Value(9.0), Value("a")}).code(),
            StatusCode::kNotFound);
  MD_ASSERT_OK(table.DeleteTuple({Value(1), Value(2.5), Value("a")}));
  EXPECT_EQ(table.NumRows(), 0u);
}

TEST(TableTest, KeylessDeleteTupleScans) {
  Table table("t", SaleSchema());
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
  MD_ASSERT_OK(table.DeleteTuple({Value(1), Value(2.5), Value("a")}));
  EXPECT_EQ(table.NumRows(), 1u);  // Bag semantics: one copy removed.
}

TEST(TableTest, ReplaceRowUpdatesKeyMap) {
  MD_ASSERT_OK_AND_ASSIGN(Table table,
                          Table::WithKey("t", SaleSchema(), "id"));
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
  MD_ASSERT_OK(table.Insert({Value(2), Value(3.5), Value("b")}));
  MD_ASSERT_OK(table.ReplaceRow(0, {Value(9), Value(1.5), Value("c")}));
  EXPECT_FALSE(table.ContainsKey(Value(1)));
  EXPECT_TRUE(table.ContainsKey(Value(9)));
  // Collision with another key is rejected.
  EXPECT_EQ(table.ReplaceRow(0, {Value(2), Value(0.5), Value("d")}).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, DeleteRowAtSwapsLast) {
  Table table("t", SaleSchema());
  MD_ASSERT_OK(table.Insert({Value(1), Value(1.5), Value("a")}));
  MD_ASSERT_OK(table.Insert({Value(2), Value(2.5), Value("b")}));
  MD_ASSERT_OK(table.Insert({Value(3), Value(3.5), Value("c")}));
  table.DeleteRowAt(0);
  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.row(0)[0], Value(3));  // Last row swapped in.
}

TEST(TableTest, PaperSizeBytesUsesFourBytesPerField) {
  Table table("t", SaleSchema());
  MD_ASSERT_OK(table.Insert({Value(1), Value(1.5), Value("a")}));
  MD_ASSERT_OK(table.Insert({Value(2), Value(2.5), Value("b")}));
  EXPECT_EQ(table.PaperSizeBytes(), 2u * 3 * 4);
  EXPECT_EQ(table.ActualSizeBytes(), 2u * (8 + 8 + 1));
}

TEST(TableTest, ToStringShowsHeaderAndTruncates) {
  Table table("demo", SaleSchema());
  for (int i = 0; i < 5; ++i) {
    MD_ASSERT_OK(table.Insert({Value(i), Value(0.5), Value("x")}));
  }
  const std::string rendering = table.ToString(2);
  EXPECT_NE(rendering.find("demo [5 rows]"), std::string::npos);
  EXPECT_NE(rendering.find("price"), std::string::npos);
  EXPECT_NE(rendering.find("3 more rows"), std::string::npos);
}

TEST(TableTest, ClearDropsRowsAndIndex) {
  MD_ASSERT_OK_AND_ASSIGN(Table table,
                          Table::WithKey("t", SaleSchema(), "id"));
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
  table.Clear();
  EXPECT_EQ(table.NumRows(), 0u);
  EXPECT_FALSE(table.ContainsKey(Value(1)));
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("a")}));
}

}  // namespace
}  // namespace mindetail
