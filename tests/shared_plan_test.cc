// Shared delta-join plans: join-signature canonicalization, the
// per-batch SharedJoinCache, the planned/executed/reused counter split,
// sibling-view lattice diff sharing, and — the oracle — a 200-batch
// differential stream proving a sharing warehouse stays bit-identical
// to a per-engine baseline at every thread count. Run under TSan via
// `ctest -L concurrency`.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/plan_signature.h"
#include "gpsj/evaluator.h"
#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "maintenance/shared_plan.h"
#include "maintenance/warehouse.h"
#include "snowflake_stream.h"
#include "test_util.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::GeneratedDelta;
using test::TablesExactlyEqual;

uint64_t StressSeed(uint64_t fallback) {
  const char* env = std::getenv("MINDETAIL_STRESS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

// A small snowflake plus one view variant, for signature tests.
struct SnowFixture {
  SnowflakeWarehouse warehouse;
  Catalog source;
};

SnowFixture MakeSnow(uint64_t seed) {
  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 60;
  sp.dim_rows = 8;
  sp.seed = seed;
  Result<SnowflakeWarehouse> warehouse = GenerateSnowflake(sp);
  MD_CHECK(warehouse.ok());
  SnowFixture fx{std::move(warehouse).value(), Catalog()};
  fx.source = fx.warehouse.catalog;
  return fx;
}

SelfMaintenanceEngine MakeEngine(const SnowFixture& fx,
                                 const test::SnowflakeViewFlags& flags,
                                 const std::string& name,
                                 EngineOptions options = EngineOptions{}) {
  Result<GpsjViewDef> def =
      test::BuildSnowflakeView(fx.warehouse, flags, name);
  MD_CHECK(def.ok());
  Result<SelfMaintenanceEngine> engine =
      SelfMaintenanceEngine::Create(fx.source, *def, options);
  MD_CHECK(engine.ok());
  return std::move(engine).value();
}

// -------------------------------------------------------------------
// Signature canonicalization.
// -------------------------------------------------------------------

TEST(PlanSignatureTest, SiblingsDifferingOnlyInNameShareSignatures) {
  SnowFixture fx = MakeSnow(4242);
  SelfMaintenanceEngine a =
      MakeEngine(fx, test::SnowflakeViewFlags{}, "sibling_a");
  SelfMaintenanceEngine b =
      MakeEngine(fx, test::SnowflakeViewFlags{}, "sibling_b");
  // The view name is presentation, not structure: every signature the
  // shared-plan cache keys on must be identical across the siblings.
  EXPECT_FALSE(a.root_fragment_signature().empty());
  EXPECT_FALSE(a.root_join_signature().empty());
  EXPECT_EQ(a.root_fragment_signature(), b.root_fragment_signature());
  EXPECT_EQ(a.root_join_signature(), b.root_join_signature());
  EXPECT_EQ(ViewStructuralSignature(a.derivation().view()),
            ViewStructuralSignature(b.derivation().view()));
}

TEST(PlanSignatureTest, DifferentOutputsChangeTheJoinSignature) {
  SnowFixture fx = MakeSnow(4243);
  SelfMaintenanceEngine plain =
      MakeEngine(fx, test::SnowflakeViewFlags{}, "plain");
  test::SnowflakeViewFlags non_csmas;
  non_csmas.non_csmas = true;
  SelfMaintenanceEngine fat = MakeEngine(fx, non_csmas, "fat");
  EXPECT_NE(plain.root_join_signature(), fat.root_join_signature());
  EXPECT_NE(ViewStructuralSignature(plain.derivation().view()),
            ViewStructuralSignature(fat.derivation().view()));
}

TEST(PlanSignatureTest, SelectionsChangeTheFragmentSignature) {
  SnowFixture fx = MakeSnow(4244);
  SelfMaintenanceEngine plain =
      MakeEngine(fx, test::SnowflakeViewFlags{}, "plain");
  test::SnowflakeViewFlags condition;
  condition.fact_condition = true;
  SelfMaintenanceEngine filtered = MakeEngine(fx, condition, "filtered");
  // The fact selection narrows the root auxiliary view, so neither the
  // fragment nor the join may be shared with the unfiltered sibling.
  EXPECT_NE(plain.root_fragment_signature(),
            filtered.root_fragment_signature());
  EXPECT_NE(plain.root_join_signature(), filtered.root_join_signature());
}

// -------------------------------------------------------------------
// SharedJoinCache mechanics.
// -------------------------------------------------------------------

TEST(SharedJoinCacheTest, ComputesOncePerKeyAndCountsReuse) {
  SharedJoinCache cache;
  int calls = 0;
  auto compute = [&]() -> Result<Table> {
    ++calls;
    return Table("t", Schema({Attribute{"x", ValueType::kInt64}}));
  };
  bool reused = false;
  MD_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const Table> first,
      cache.GetOrCompute(SharedJoinCache::Kind::kJoin, "k1", compute,
                         &reused));
  EXPECT_FALSE(reused);
  MD_ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<const Table> second,
      cache.GetOrCompute(SharedJoinCache::Kind::kJoin, "k1", compute,
                         &reused));
  EXPECT_TRUE(reused);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first.get(), second.get());  // One memoized table.
  MD_ASSERT_OK(cache
                   .GetOrCompute(SharedJoinCache::Kind::kFragment, "k2",
                                 compute, &reused)
                   .status());
  EXPECT_EQ(calls, 2);  // Distinct key computes afresh.
  const SharedJoinStats stats = cache.stats();
  EXPECT_EQ(stats.joins_computed, 1u);
  EXPECT_EQ(stats.joins_reused, 1u);
  EXPECT_EQ(stats.fragments_computed, 1u);
  EXPECT_EQ(stats.fragments_reused, 0u);
}

TEST(SharedJoinCacheTest, FailuresAreNotMemoized) {
  SharedJoinCache cache;
  int calls = 0;
  auto failing = [&]() -> Result<Table> {
    ++calls;
    return InternalError("transient");
  };
  EXPECT_FALSE(cache
                   .GetOrCompute(SharedJoinCache::Kind::kJoin, "k",
                                 failing)
                   .ok());
  // Every engine re-attempts — exactly the per-engine baseline
  // behavior — and a later success is memoized normally.
  EXPECT_FALSE(cache
                   .GetOrCompute(SharedJoinCache::Kind::kJoin, "k",
                                 failing)
                   .ok());
  EXPECT_EQ(calls, 2);
  auto succeeding = [&]() -> Result<Table> {
    return Table("t", Schema({Attribute{"x", ValueType::kInt64}}));
  };
  bool reused = true;
  MD_ASSERT_OK(cache
                   .GetOrCompute(SharedJoinCache::Kind::kJoin, "k",
                                 succeeding, &reused)
                   .status());
  EXPECT_FALSE(reused);
}

// -------------------------------------------------------------------
// Executed-once accounting across sibling views.
// -------------------------------------------------------------------

TEST(SharedJoinCounterTest, FourSiblingsComputeEachDistinctJoinOnce) {
  SnowFixture fx = MakeSnow(StressSeed(6010931));
  Warehouse warehouse;  // share_delta_joins defaults to true.
  constexpr int kSiblings = 4;
  for (int i = 0; i < kSiblings; ++i) {
    MD_ASSERT_OK_AND_ASSIGN(
        GpsjViewDef def,
        test::BuildSnowflakeView(fx.warehouse, test::SnowflakeViewFlags{},
                                 StrCat("sib", i)));
    MD_ASSERT_OK(warehouse.AddView(fx.source, def));
  }

  // Root (fact) batches only: dimension deltas stay per-engine by
  // design, which would blur the exact 1-computed/(N-1)-reused split.
  Rng rng(771203);
  int applied = 0;
  for (int attempt = 0; applied < 25 && attempt < 400; ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        fx.warehouse, fx.source, rng, /*append_only=*/false);
    if (generated.table != fx.warehouse.fact || generated.delta.Empty()) {
      continue;
    }
    ++applied;
    MD_ASSERT_OK(warehouse.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(
        ApplyDelta(*fx.source.MutableTable(generated.table),
                   generated.delta));
  }
  ASSERT_GE(applied, 25);

  uint64_t planned = 0, executed = 0, reused = 0;
  for (int i = 0; i < kSiblings; ++i) {
    const EngineStats& stats = warehouse.engine(StrCat("sib", i)).stats();
    EXPECT_EQ(stats.delta_joins_planned,
              stats.delta_joins_executed + stats.delta_joins_reused)
        << "sib" << i;
    planned += stats.delta_joins_planned;
    executed += stats.delta_joins_executed;
    reused += stats.delta_joins_reused;
  }
  ASSERT_GT(planned, 0u);
  // Identical siblings plan identical joins: each distinct join runs
  // exactly once per batch, the other N-1 engines reuse it.
  EXPECT_EQ(executed * kSiblings, planned);
  EXPECT_EQ(reused, executed * (kSiblings - 1));

  const MaintenanceStats totals = warehouse.maintenance_stats();
  EXPECT_EQ(totals.delta_joins_planned, planned);
  EXPECT_EQ(totals.delta_joins_executed, executed);
  EXPECT_EQ(totals.delta_joins_reused, reused);
  EXPECT_EQ(totals.shared.joins_computed, executed);
  EXPECT_EQ(totals.shared.joins_reused, reused);
  EXPECT_GT(totals.shared.fragments_reused, 0u);

  // Views stay correct, not just fast: every sibling matches the
  // direct evaluation oracle.
  for (int i = 0; i < kSiblings; ++i) {
    MD_ASSERT_OK_AND_ASSIGN(Table got, warehouse.View(StrCat("sib", i)));
    MD_ASSERT_OK_AND_ASSIGN(
        Table oracle,
        EvaluateGpsj(fx.source,
                     warehouse.engine(StrCat("sib", i)).derivation().view()));
    EXPECT_TRUE(test::TablesApproxEqual(oracle, got)) << "sib" << i;
  }
}

TEST(SharedJoinCounterTest, LaterRegistrationDisablesSharingSafely) {
  SnowFixture fx = MakeSnow(6010932);
  Warehouse warehouse;
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef first,
      test::BuildSnowflakeView(fx.warehouse, test::SnowflakeViewFlags{},
                               "early"));
  MD_ASSERT_OK(warehouse.AddView(fx.source, first));

  // A batch lands between the registrations, so the late sibling's
  // lineage token differs even though its structure is identical —
  // sharing must not kick in on trust alone.
  Rng rng(88114);
  GeneratedDelta generated;
  do {
    generated = test::MakeSnowflakeDelta(fx.warehouse, fx.source, rng,
                                         /*append_only=*/false);
  } while (generated.table != fx.warehouse.fact || generated.delta.Empty());
  MD_ASSERT_OK(warehouse.Apply(generated.table, generated.delta));
  MD_ASSERT_OK(ApplyDelta(*fx.source.MutableTable(generated.table),
                          generated.delta));

  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef second,
      test::BuildSnowflakeView(fx.warehouse, test::SnowflakeViewFlags{},
                               "late"));
  MD_ASSERT_OK(warehouse.AddView(fx.source, second));

  for (int i = 0; i < 6;) {
    generated = test::MakeSnowflakeDelta(fx.warehouse, fx.source, rng,
                                         /*append_only=*/false);
    if (generated.table != fx.warehouse.fact || generated.delta.Empty()) {
      continue;
    }
    ++i;
    MD_ASSERT_OK(warehouse.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*fx.source.MutableTable(generated.table),
                            generated.delta));
  }
  // Different lineage tokens → different cache keys → no reuse, and
  // both views still match the oracle.
  EXPECT_EQ(warehouse.maintenance_stats().shared.joins_reused, 0u);
  for (const char* name : {"early", "late"}) {
    MD_ASSERT_OK_AND_ASSIGN(Table got, warehouse.View(name));
    MD_ASSERT_OK_AND_ASSIGN(
        Table oracle,
        EvaluateGpsj(fx.source,
                     warehouse.engine(name).derivation().view()));
    EXPECT_TRUE(test::TablesApproxEqual(oracle, got)) << name;
  }
}

// -------------------------------------------------------------------
// Lattice diff sharing across sibling nodes.
// -------------------------------------------------------------------

TEST(LatticeDiffSharingTest, SiblingNodesFoldFromOneSummaryDiff) {
  SnowFixture fx = MakeSnow(6010933);
  Warehouse warehouse(WarehouseOptions{}.WithLatticeBudget(SIZE_MAX));
  for (const char* name : {"sib_a", "sib_b"}) {
    MD_ASSERT_OK_AND_ASSIGN(
        GpsjViewDef def,
        test::BuildSnowflakeView(fx.warehouse, test::SnowflakeViewFlags{},
                                 name));
    MD_ASSERT_OK(warehouse.AddView(fx.source, def));
  }
  MD_ASSERT_OK(warehouse.LatticePromote("sib_a", {"GroupA"}));
  MD_ASSERT_OK(warehouse.LatticePromote("sib_b", {"GroupA"}));

  Rng rng(515253);
  GeneratedDelta generated;
  do {
    generated = test::MakeSnowflakeDelta(fx.warehouse, fx.source, rng,
                                         /*append_only=*/false);
  } while (generated.table != fx.warehouse.fact || generated.delta.Empty());
  MD_ASSERT_OK(warehouse.Apply(generated.table, generated.delta));
  MD_ASSERT_OK(ApplyDelta(*fx.source.MutableTable(generated.table),
                          generated.delta));

  // Both nodes folded, but the (byte-identical) parent summary diff was
  // computed once and shared by the sibling.
  const LatticeStats stats = warehouse.lattice_stats();
  EXPECT_GE(stats.folds, 2u);
  EXPECT_GE(stats.diffs_shared, 1u);
  EXPECT_GE(stats.diffs_computed, 1u);
  EXPECT_LT(stats.diffs_computed, stats.folds);
}

// -------------------------------------------------------------------
// The oracle: sharing is bit-identical to the per-engine baseline at
// every thread count, across a 200-batch mixed stream with multi-table
// transactions.
// -------------------------------------------------------------------

std::map<std::string, Table> CaptureState(const Warehouse& warehouse) {
  std::map<std::string, Table> state;
  for (const std::string& name : warehouse.ViewNames()) {
    const SelfMaintenanceEngine& engine = warehouse.engine(name);
    Result<Table> view = warehouse.View(name);
    MD_CHECK(view.ok());
    state.emplace(name + "/view", std::move(view).value());
    Result<Table> augmented = engine.RenderAugmentedSummary();
    MD_CHECK(augmented.ok());
    state.emplace(name + "/summary", std::move(augmented).value());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      state.emplace(name + "/aux/" + aux.base_table,
                    engine.AuxContents(aux.base_table));
    }
  }
  return state;
}

TEST(SharedPlanDifferentialStress, BitIdenticalToBaselineAtEveryThreadCount) {
  const uint64_t seed = StressSeed(77120411ULL);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 150;
  sp.dim_rows = 16;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;

  // Two identical siblings (the sharing hot path) plus two structural
  // variants (never shared with them) in one warehouse.
  std::vector<GpsjViewDef> defs;
  {
    MD_ASSERT_OK_AND_ASSIGN(
        GpsjViewDef def,
        test::BuildSnowflakeView(warehouse, test::SnowflakeViewFlags{},
                                 "twin_a"));
    defs.push_back(std::move(def));
    MD_ASSERT_OK_AND_ASSIGN(
        def, test::BuildSnowflakeView(warehouse, test::SnowflakeViewFlags{},
                                      "twin_b"));
    defs.push_back(std::move(def));
    test::SnowflakeViewFlags non_csmas;
    non_csmas.non_csmas = true;
    MD_ASSERT_OK_AND_ASSIGN(
        def, test::BuildSnowflakeView(warehouse, non_csmas, "variant_fat"));
    defs.push_back(std::move(def));
    test::SnowflakeViewFlags condition;
    condition.fact_condition = true;
    MD_ASSERT_OK_AND_ASSIGN(
        def, test::BuildSnowflakeView(warehouse, condition,
                                      "variant_filtered"));
    defs.push_back(std::move(def));
  }

  // Baseline: sharing off, serial. Players: sharing on, at serial and
  // {2, 4} cross-view threads.
  auto make = [&](WarehouseOptions options) {
    auto wh = std::make_unique<Warehouse>(std::move(options));
    for (const GpsjViewDef& def : defs) {
      MD_CHECK(wh->AddView(source, def).ok());
    }
    return wh;
  };
  std::unique_ptr<Warehouse> baseline =
      make(WarehouseOptions{}.WithSharedJoins(false));
  std::vector<std::unique_ptr<Warehouse>> players;
  std::vector<std::string> labels;
  for (int threads : {1, 2, 4}) {
    players.push_back(
        make(WarehouseOptions{}.WithParallelism(threads)));
    labels.push_back(StrCat("shared x", threads));
  }

  constexpr int kBatches = 200;
  constexpr int kTransactionEvery = 10;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 29);
  int applied = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta first = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (first.delta.Empty()) continue;
    ++applied;
    std::map<std::string, Delta> changes;
    changes.emplace(first.table, std::move(first.delta));
    if (applied % kTransactionEvery == 0) {
      for (int tries = 0; tries < 8; ++tries) {
        GeneratedDelta second = test::MakeSnowflakeDelta(
            warehouse, source, rng, /*append_only=*/false);
        if (second.delta.Empty() || changes.count(second.table) > 0) {
          continue;
        }
        changes.emplace(second.table, std::move(second.delta));
        break;
      }
    }
    SCOPED_TRACE(::testing::Message()
                 << "batch " << applied << ", " << changes.size()
                 << " table(s), first on " << changes.begin()->first);

    MD_ASSERT_OK(baseline->ApplyTransaction(changes));
    for (std::unique_ptr<Warehouse>& player : players) {
      MD_ASSERT_OK(player->ApplyTransaction(changes));
    }
    for (const auto& [table, delta] : changes) {
      MD_ASSERT_OK(ApplyDelta(*source.MutableTable(table), delta));
    }

    for (const GpsjViewDef& def : defs) {
      MD_ASSERT_OK_AND_ASSIGN(Table base_view, baseline->View(def.name()));
      for (size_t p = 0; p < players.size(); ++p) {
        MD_ASSERT_OK_AND_ASSIGN(Table player_view,
                                players[p]->View(def.name()));
        ASSERT_TRUE(TablesExactlyEqual(base_view, player_view))
            << labels[p] << " diverged on " << def.name() << ", seed "
            << seed << ", batch " << applied;
      }
    }
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;

  // Full maintained state — summaries, hidden accumulators, every
  // auxiliary view — must agree bit-for-bit at the end of the stream.
  const std::map<std::string, Table> base_state = CaptureState(*baseline);
  for (size_t p = 0; p < players.size(); ++p) {
    const std::map<std::string, Table> player_state =
        CaptureState(*players[p]);
    ASSERT_EQ(base_state.size(), player_state.size()) << labels[p];
    for (const auto& [key, table] : base_state) {
      auto it = player_state.find(key);
      ASSERT_NE(it, player_state.end()) << labels[p] << " " << key;
      EXPECT_TRUE(TablesExactlyEqual(table, it->second))
          << labels[p] << " " << key;
    }
  }

  // The sharing path actually ran: the twins reused joins; the
  // baseline shared nothing.
  EXPECT_EQ(baseline->maintenance_stats().shared.joins_reused, 0u);
  for (size_t p = 0; p < players.size(); ++p) {
    const MaintenanceStats stats = players[p]->maintenance_stats();
    EXPECT_GT(stats.shared.joins_reused, 0u) << labels[p];
    EXPECT_EQ(stats.delta_joins_planned,
              stats.delta_joins_executed + stats.delta_joins_reused)
        << labels[p];
  }
}

}  // namespace
}  // namespace mindetail
