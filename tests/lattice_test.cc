// Adaptive roll-up lattice system tests.
//
// The centerpiece is a skewed differential stress: a 200-batch mixed
// update stream (snowflake deltas) with a Zipf/bursty query mix on
// top, run at lattice budgets {0, small, unbounded}. Every Query() a
// boundary issues is checked against direct GPSJ evaluation of a
// lock-step source twin — integer measures bit for bit, doubles with
// tolerance (incremental ± accumulation drifts like every other
// incremental path here). The remaining cases pin down the result
// cache interplay (promotions/demotions never serve stale entries),
// ExplainQuery's lattice hit/miss reporting, readers racing the
// maintenance writer (run under TSan via the `concurrency` label), and
// a kill-at-failpoint child that proves promoted-node state survives
// Open() bit-correctly.

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gpsj/evaluator.h"
#include "gtest/gtest.h"
#include "maintenance/warehouse.h"
#include "serve/lattice.h"
#include "serve/planner.h"
#include "snowflake_stream.h"
#include "test_util.h"
#include "workload/snowflake.h"
#include "workload/zipf.h"

namespace mindetail {
namespace {

using test::GeneratedDelta;
using test::TablesApproxEqual;
using test::TablesExactlyEqual;

constexpr char kSnowViewSql[] = R"sql(
  CREATE VIEW snow AS
  SELECT dim0.a AS GroupA, dim1.a AS GroupB, SUM(fact.m1) AS SumM1,
         COUNT(*) AS Cnt, SUM(fact.m2) AS SumM2
  FROM fact, dim0, dim1
  WHERE fact.fk_dim0 = dim0.id AND dim0.fk_dim1 = dim1.id
  GROUP BY dim0.a, dim1.a
)sql";

constexpr char kSnowJoin[] =
    "FROM fact, dim0, dim1 "
    "WHERE fact.fk_dim0 = dim0.id AND dim0.fk_dim1 = dim1.id ";

std::map<std::string, Delta> OneTable(const std::string& table,
                                      Delta delta) {
  std::map<std::string, Delta> changes;
  changes.emplace(table, std::move(delta));
  return changes;
}

SnowflakeParams StreamParams(uint64_t seed) {
  SnowflakeParams sp;
  sp.depth = 2;
  sp.fanout = 1;
  sp.fact_rows = 200;
  sp.dim_rows = 15;
  sp.seed = seed;
  return sp;
}

// The query pool the Zipf stream draws from. Integer-measure entries
// must match the oracle bit for bit; double-measure entries drift by
// accumulation order and compare with tolerance.
struct PoolQuery {
  std::string sql;
  bool exact;
};

std::vector<PoolQuery> QueryPool() {
  return {
      {StrCat("SELECT dim0.a, SUM(fact.m1) AS S, COUNT(*) AS C, "
              "AVG(fact.m1) AS A ",
              kSnowJoin, "GROUP BY dim0.a"),
       true},
      {StrCat("SELECT dim1.a, SUM(fact.m1) AS S, COUNT(*) AS C ",
              kSnowJoin, "GROUP BY dim1.a"),
       true},
      {StrCat("SELECT SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin),
       true},
      {StrCat("SELECT dim0.a, SUM(fact.m2) AS S2, AVG(fact.m2) AS A2 ",
              kSnowJoin, "GROUP BY dim0.a"),
       false},
      // Filter on GroupA while grouping by GroupB: consumes the full
      // parent grouping, so it is never promotable and exercises
      // lattice-node rejection on every planned boundary.
      {StrCat("SELECT dim1.a, SUM(fact.m1) AS S, COUNT(*) AS C ",
              kSnowJoin, "AND dim0.a >= 2 GROUP BY dim1.a"),
       true},
      {StrCat("SELECT dim1.a, AVG(fact.m2) AS AD ", kSnowJoin,
              "GROUP BY dim1.a"),
       false},
  };
}

Table Oracle(const Catalog& source, const std::string& sql) {
  Result<GpsjViewDef> def = ParseServeQuery(source, sql);
  MD_CHECK(def.ok());
  Result<Table> table = EvaluateGpsj(source, *def);
  MD_CHECK(table.ok());
  return std::move(table).value();
}

// -------------------------------------------------------------------
// Differential stress: the same skewed 200-batch stream at three
// budgets. Answer correctness must not depend on what the lattice
// chose to promote or evict.
// -------------------------------------------------------------------

LatticeStats RunSkewedDifferentialStream(size_t budget_bytes) {
  Result<SnowflakeWarehouse> generated_warehouse =
      GenerateSnowflake(StreamParams(20260809));
  MD_CHECK(generated_warehouse.ok());
  SnowflakeWarehouse snowflake = std::move(*generated_warehouse);
  Catalog source = snowflake.catalog;  // The twin, kept in lock-step.

  Warehouse warehouse(WarehouseOptions{}
                          .WithLatticeBudget(budget_bytes)
                          .WithLatticePromoteHits(2));
  MD_EXPECT_OK(warehouse.AddViewSql(source, kSnowViewSql));

  const std::vector<PoolQuery> pool = QueryPool();
  BurstyZipfParams zp;
  zp.num_items = pool.size();
  zp.exponent = 1.2;
  zp.calm_len = 9;
  zp.burst_len = 5;
  zp.seed = 13;
  BurstyZipfStream picks(zp);

  auto check = [&](const PoolQuery& q) {
    Result<Table> got = warehouse.Query(q.sql);
    ASSERT_TRUE(got.ok()) << q.sql << ": " << got.status().message();
    if (q.exact) {
      ASSERT_TRUE(TablesExactlyEqual(Oracle(source, q.sql), *got))
          << q.sql;
    } else {
      ASSERT_TRUE(TablesApproxEqual(Oracle(source, q.sql), *got))
          << q.sql;
    }
  };

  constexpr int kBatches = 200;
  Rng rng(0x5eed1a77u ^ budget_bytes);
  int applied = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        snowflake, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;
    SCOPED_TRACE(::testing::Message() << "budget " << budget_bytes
                                      << ", batch " << applied
                                      << ", delta on " << generated.table);
    MD_EXPECT_OK(warehouse.ApplyTransaction(
        OneTable(generated.table, generated.delta)));
    MD_EXPECT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    // The skewed query mix: three Zipf draws per boundary keep a hot
    // grouping hot; every 10th boundary sweeps the whole pool so cold
    // queries stay covered too.
    for (int draw = 0; draw < 3; ++draw) check(pool[picks.Next()]);
    if (applied % 10 == 0) {
      for (const PoolQuery& q : pool) check(q);
    }
    if (::testing::Test::HasFatalFailure()) break;
  }
  EXPECT_EQ(applied, kBatches);
  return warehouse.lattice_stats();
}

TEST(LatticeDifferentialTest, BudgetZeroMatchesOracle) {
  const LatticeStats stats = RunSkewedDifferentialStream(0);
  // Budget 0 disables the lattice entirely: nothing promoted, nothing
  // answered from a node, yet every answer above already matched.
  EXPECT_EQ(stats.nodes, 0u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(LatticeDifferentialTest, SmallBudgetMatchesOracleWithinBudget) {
  constexpr size_t kBudget = 2048;
  const LatticeStats stats = RunSkewedDifferentialStream(kBudget);
  // Eviction keeps the footprint at or under budget at every publish.
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_GT(stats.promotions, 0u);
}

TEST(LatticeDifferentialTest, UnboundedBudgetMatchesOracleAndServesHits) {
  const LatticeStats stats = RunSkewedDifferentialStream(SIZE_MAX);
  EXPECT_GT(stats.nodes, 0u);
  EXPECT_GT(stats.promotions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.folds, 0u);  // Incremental fold-ups, not rebuilds.
  EXPECT_GT(stats.bytes, 0u);
}

// -------------------------------------------------------------------
// Result-cache interplay: entries answered from a node are keyed to
// that node's key and version, so promotions, demotions, and folds can
// never serve a stale cached table.
// -------------------------------------------------------------------

TEST(LatticeCacheInterplayTest, PromotionsAndDemotionsNeverServeStale) {
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(StreamParams(771)));
  Catalog source = snowflake.catalog;
  Warehouse warehouse(WarehouseOptions{}
                          .WithLatticeBudget(SIZE_MAX)
                          .WithLatticePromoteHits(1));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kSnowViewSql));

  const std::string sql = StrCat(
      "SELECT dim0.a, SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin,
      "GROUP BY dim0.a");
  const std::string node_key = LatticeNodeKey("snow", {"GroupA"});
  Rng rng(9001);

  auto next_batch = [&] {
    for (;;) {
      GeneratedDelta generated = test::MakeSnowflakeDelta(
          snowflake, source, rng, /*append_only=*/false);
      if (generated.delta.Empty()) continue;
      MD_ASSERT_OK(warehouse.ApplyTransaction(
          OneTable(generated.table, generated.delta)));
      MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                              generated.delta));
      return;
    }
  };

  // Heat the grouping on the summary path, then commit: the publish
  // promotes it.
  MD_ASSERT_OK_AND_ASSIGN(Table first, warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, sql), first));
  next_batch();
  ASSERT_GE(warehouse.lattice_stats().promotions, 1u);
  ASSERT_FALSE(warehouse.LatticeNodes().empty());

  // Answered from the node now, and cached under the node's key.
  MD_ASSERT_OK_AND_ASSIGN(Table from_node, warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, sql), from_node));
  EXPECT_GE(warehouse.lattice_stats().hits, 1u);
  const uint64_t cache_hits_before = warehouse.QueryCacheStats().hits;
  MD_ASSERT_OK_AND_ASSIGN(Table from_cache, warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(from_node, from_cache));
  EXPECT_GT(warehouse.QueryCacheStats().hits, cache_hits_before);

  // A commit folds the node and invalidates its cached answers: the
  // next read must show the new data, not the cached table.
  for (int i = 0; i < 5; ++i) {
    next_batch();
    MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.Query(sql));
    ASSERT_TRUE(TablesExactlyEqual(Oracle(source, sql), after));
  }

  // Demotion drops the node and its cached answers; the query falls
  // back to the parent summary with the same (fresh) result.
  MD_ASSERT_OK(warehouse.LatticeDemote(node_key));
  EXPECT_TRUE(warehouse.LatticeNodes().empty());
  MD_ASSERT_OK_AND_ASSIGN(Table demoted, warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, sql), demoted));
  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          warehouse.ExplainQuery(sql));
  EXPECT_NE(explain.strategy, QueryPlan::Strategy::kLatticeRollup);

  // Manual re-promotion: served from the node again, still fresh.
  MD_ASSERT_OK(warehouse.LatticePromote("snow", {"GroupA"}));
  next_batch();
  MD_ASSERT_OK_AND_ASSIGN(Table repromoted, warehouse.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, sql), repromoted));
  MD_ASSERT_OK_AND_ASSIGN(explain, warehouse.ExplainQuery(sql));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kLatticeRollup);

  // Guard rails: duplicate promotion and unknown demotion fail loudly.
  EXPECT_FALSE(warehouse.LatticePromote("snow", {"GroupA"}).ok());
  EXPECT_FALSE(warehouse.LatticeDemote("snow@NoSuchGroup").ok());
}

TEST(LatticeCacheInterplayTest, DisabledLatticeRejectsManagementCalls) {
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(StreamParams(772)));
  Warehouse warehouse;  // Default options: lattice_budget_bytes == 0.
  MD_ASSERT_OK(warehouse.AddViewSql(snowflake.catalog, kSnowViewSql));
  EXPECT_EQ(warehouse.LatticePromote("snow", {"GroupA"}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(warehouse.LatticeDemote("snow@GroupA").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(warehouse.LatticeNodes().empty());
  EXPECT_NE(warehouse.LatticeReport().find("disabled"),
            std::string::npos);
}

// -------------------------------------------------------------------
// ExplainQuery reporting: node answers name the node; underivable
// aggregates surface as "lattice miss" with the rejection reason and
// fall through to the parent summary.
// -------------------------------------------------------------------

constexpr char kSnowMaxViewSql[] = R"sql(
  CREATE VIEW snowmax AS
  SELECT dim0.a AS GroupA, dim1.a AS GroupB, SUM(fact.m1) AS SumM1,
         COUNT(*) AS Cnt, MAX(fact.m1) AS MaxM1
  FROM fact, dim0, dim1
  WHERE fact.fk_dim0 = dim0.id AND dim0.fk_dim1 = dim1.id
  GROUP BY dim0.a, dim1.a
)sql";

TEST(LatticeExplainTest, ReportsNodeHitsAndRejectionReasons) {
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(StreamParams(773)));
  Catalog source = snowflake.catalog;
  Warehouse warehouse(WarehouseOptions{}.WithLatticeBudget(SIZE_MAX));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kSnowMaxViewSql));
  MD_ASSERT_OK(warehouse.LatticePromote("snowmax", {"GroupA"}));
  const std::string node_key = LatticeNodeKey("snowmax", {"GroupA"});

  // Derivable: SUM/COUNT by the retained grouping — a node answer,
  // named in the explain output along with the lattice footer.
  const std::string q_sum = StrCat(
      "SELECT dim0.a, SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin,
      "GROUP BY dim0.a");
  MD_ASSERT_OK_AND_ASSIGN(QueryExplanation explain,
                          warehouse.ExplainQuery(q_sum));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kLatticeRollup);
  EXPECT_EQ(explain.lattice_node, node_key);
  ASSERT_TRUE(explain.has_lattice);
  EXPECT_EQ(explain.lattice.nodes, 1u);
  // The rendered report keeps the classic wording and footers.
  EXPECT_NE(explain.ToString().find("lattice roll-up"), std::string::npos);
  EXPECT_NE(explain.ToString().find(node_key), std::string::npos);
  EXPECT_NE(explain.ToString().find("lattice: 1 node(s)"),
            std::string::npos);
  MD_ASSERT_OK_AND_ASSIGN(Table got, warehouse.Query(q_sum));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, q_sum), got));

  // A scalar roll-up is coarser than any node, so the node answers it
  // too — from its handful of rows instead of the parent summary.
  const std::string q_scalar =
      StrCat("SELECT SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin);
  MD_ASSERT_OK_AND_ASSIGN(explain, warehouse.ExplainQuery(q_scalar));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kLatticeRollup);
  MD_ASSERT_OK_AND_ASSIGN(got, warehouse.Query(q_scalar));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, q_scalar), got));

  // MAX folds away in a node: rejected with a reason, answered by the
  // parent's summary roll-up instead — and still correct.
  const std::string q_max = StrCat(
      "SELECT dim0.a, MAX(fact.m1) AS M ", kSnowJoin, "GROUP BY dim0.a");
  MD_ASSERT_OK_AND_ASSIGN(explain, warehouse.ExplainQuery(q_max));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kSummaryRollup);
  ASSERT_FALSE(explain.lattice_rejected.empty());
  EXPECT_NE(explain.lattice_rejected[0].reason.find("MAX"),
            std::string::npos);
  EXPECT_NE(explain.ToString().find("lattice miss: "), std::string::npos);
  MD_ASSERT_OK_AND_ASSIGN(got, warehouse.Query(q_max));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, q_max), got));

  // Grouping the node does not retain: rejected, parent answers.
  const std::string q_other = StrCat(
      "SELECT dim1.a, SUM(fact.m1) AS S ", kSnowJoin, "GROUP BY dim1.a");
  MD_ASSERT_OK_AND_ASSIGN(explain, warehouse.ExplainQuery(q_other));
  EXPECT_EQ(explain.strategy, QueryPlan::Strategy::kSummaryRollup);
  EXPECT_FALSE(explain.lattice_rejected.empty());
  MD_ASSERT_OK_AND_ASSIGN(got, warehouse.Query(q_other));
  EXPECT_TRUE(TablesExactlyEqual(Oracle(source, q_other), got));
}

// -------------------------------------------------------------------
// Readers vs. the maintenance writer with the lattice folding on every
// commit. Run under TSan via `ctest -L concurrency`. Every concurrent
// read must equal some committed batch boundary — a reader must never
// observe a half-folded node.
// -------------------------------------------------------------------

// Table::ToString truncates at 50 rows by default; boundary
// fingerprints must cover every row.
constexpr size_t kAllRows = 1u << 20;

TEST(LatticeConcurrencyTest, ReadersSeeOnlyCommittedFoldBoundaries) {
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(StreamParams(774)));
  Catalog source = snowflake.catalog;

  const std::string sql = StrCat(
      "SELECT dim0.a, SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin,
      "GROUP BY dim0.a");

  // Precompute the delta stream and the oracle answer at every
  // boundary (including the initial one) before any thread starts.
  constexpr int kBatches = 30;
  Rng rng(5150);
  std::vector<GeneratedDelta> deltas;
  std::set<std::string> boundaries;
  boundaries.insert(Oracle(source, sql).ToString(kAllRows));
  while (deltas.size() < kBatches) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        snowflake, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));
    boundaries.insert(Oracle(source, sql).ToString(kAllRows));
    deltas.push_back(std::move(generated));
  }

  Warehouse warehouse(WarehouseOptions{}
                          .WithLatticeBudget(SIZE_MAX)
                          .WithLatticePromoteHits(1));
  MD_ASSERT_OK(warehouse.AddViewSql(snowflake.catalog, kSnowViewSql));
  // Heat + one early commit so readers race against a promoted node.
  MD_ASSERT_OK(warehouse.Query(sql).status());

  std::atomic<bool> done{false};
  std::vector<std::string> observed;
  std::mutex observed_mu;
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Result<Table> got = warehouse.Query(sql);
        MD_CHECK(got.ok());
        std::string fingerprint = got->ToString(kAllRows);
        std::lock_guard<std::mutex> lock(observed_mu);
        observed.push_back(std::move(fingerprint));
      }
    });
  }
  for (const GeneratedDelta& generated : deltas) {
    MD_ASSERT_OK(warehouse.ApplyTransaction(
        OneTable(generated.table, generated.delta)));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_FALSE(observed.empty());
  for (const std::string& fingerprint : observed) {
    EXPECT_EQ(boundaries.count(fingerprint), 1u)
        << "reader observed a non-boundary state:\n" << fingerprint;
  }
  EXPECT_GT(warehouse.lattice_stats().folds, 0u);
}

// -------------------------------------------------------------------
// Crash recovery: the promoted-node directory and heat live in the
// checkpoint (io/lattice.bin, atomic with the checkpoint rename);
// node tables are rebuilt from the recovered summaries on Open. Kill
// the child at every failpoint and verify the reopened warehouse
// answers exactly like a never-crashed oracle — and keeps folding.
// -------------------------------------------------------------------

constexpr uint64_t kCrashSeed = 20260808;
constexpr int kCrashBatches = 8;

WarehouseOptions LatticeCrashOptions() {
  return WarehouseOptions{}
      .WithLatticeBudget(SIZE_MAX)
      .WithLatticePromoteHits(1);
}

std::string CrashQueryA() {
  return StrCat("SELECT dim0.a, SUM(fact.m1) AS S, COUNT(*) AS C ",
                kSnowJoin, "GROUP BY dim0.a");
}

std::string CrashQueryScalar() {
  return StrCat("SELECT SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin);
}

std::string BatchKey(uint64_t i) { return StrCat("lattice-batch-", i); }

std::string AckPath(const std::string& dir) { return dir + "/acked"; }

void AppendAck(const std::string& path, uint64_t sequence) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&sequence, sizeof(sequence), 1, f), 1u);
  ASSERT_EQ(std::fflush(f), 0);
  ASSERT_EQ(::fsync(::fileno(f)), 0);
  ASSERT_EQ(std::fclose(f), 0);
}

uint64_t LastAckedSequence(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return 0;
  const auto size = static_cast<uint64_t>(in.tellg());
  if (size < sizeof(uint64_t)) return 0;
  in.seekg(size - sizeof(uint64_t));
  uint64_t sequence = 0;
  in.read(reinterpret_cast<char*>(&sequence), sizeof(sequence));
  return sequence;
}

// The deterministic batch stream both the child and the oracle replay:
// delta i depends only on the source state after deltas 1..i-1, so a
// fresh Rng at the same seed regenerates the identical stream.
GeneratedDelta NextCrashBatch(const SnowflakeWarehouse& snowflake,
                              const Catalog& source, Rng& rng) {
  for (;;) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        snowflake, source, rng, /*append_only=*/false);
    if (!generated.delta.Empty()) return generated;
  }
}

// Driver-only: skipped unless MINDETAIL_LATTICE_CRASH_DIR is set. The
// scenario heats a coarse grouping every batch (so a node is promoted
// from the first publish on), checkpoints mid-stream with the node
// directory in the payload, and acknowledges every applied sequence.
TEST(LatticeCrashChild, Run) {
  const char* dir_env = std::getenv("MINDETAIL_LATTICE_CRASH_DIR");
  if (dir_env == nullptr) GTEST_SKIP() << "driver-only child scenario";
  const std::string dir = dir_env;
  MD_ASSERT_OK(Failpoints::ArmFromEnv());

  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(StreamParams(kCrashSeed)));
  Catalog source = snowflake.catalog;
  MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse,
                          Warehouse::Open(dir, LatticeCrashOptions()));
  MD_ASSERT_OK(warehouse.AddViewSql(source, kSnowViewSql));

  Rng rng(kCrashSeed);
  for (int i = 1; i <= kCrashBatches; ++i) {
    MD_ASSERT_OK(warehouse.Query(CrashQueryA()).status());
    MD_ASSERT_OK(warehouse.Query(CrashQueryScalar()).status());
    GeneratedDelta generated = NextCrashBatch(snowflake, source, rng);
    MD_ASSERT_OK(warehouse.ApplyTransaction(
        OneTable(generated.table, generated.delta), BatchKey(i)));
    AppendAck(AckPath(dir), warehouse.last_sequence());
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));
    if (i == kCrashBatches / 2) MD_ASSERT_OK(warehouse.Checkpoint());
  }
}

std::string SelfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

void VerifyLatticeRecovery(const std::string& dir) {
  MD_ASSERT_OK_AND_ASSIGN(
      Warehouse recovered, Warehouse::Open(dir, LatticeCrashOptions()));
  ASSERT_GE(recovered.last_sequence(), LastAckedSequence(AckPath(dir)));
  const uint64_t n = recovered.last_sequence();

  // Replay the identical stream into a source twin up to the recovered
  // sequence; the recovered warehouse must answer from it exactly.
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(StreamParams(kCrashSeed)));
  Catalog source = snowflake.catalog;
  Rng rng(kCrashSeed);
  for (uint64_t i = 1; i <= n; ++i) {
    GeneratedDelta generated = NextCrashBatch(snowflake, source, rng);
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));
  }

  const bool has_view = !recovered.ViewNames().empty();
  if (has_view) {
    for (const std::string& sql : {CrashQueryA(), CrashQueryScalar()}) {
      MD_ASSERT_OK_AND_ASSIGN(Table got, recovered.Query(sql));
      ASSERT_TRUE(TablesExactlyEqual(Oracle(source, sql), got)) << sql;
    }
  }

  // Every node restored from the checkpoint was re-materialized by the
  // recovery publish — promotions survive Open. A checkpoint written
  // after the mid-stream batch always carries the promoted directory.
  for (const LatticeNodeInfo& node : recovered.LatticeNodes()) {
    EXPECT_TRUE(node.materialized) << node.key;
    EXPECT_GT(node.rows, 0u) << node.key;
    EXPECT_EQ(node.view, "snow");
  }
  if (recovered.recovery_stats().checkpoint_sequence >=
      static_cast<uint64_t>(kCrashBatches / 2)) {
    EXPECT_FALSE(recovered.LatticeNodes().empty());
  }

  // Recovery is not a dead end: the rebuilt nodes keep folding. A
  // crash during registration legitimately recovers no view; finish
  // the setup like a restarting operator would.
  if (!has_view) {
    MD_ASSERT_OK(recovered.AddViewSql(source, kSnowViewSql));
  }
  for (uint64_t i = n + 1; i <= static_cast<uint64_t>(kCrashBatches) + 2;
       ++i) {
    MD_ASSERT_OK(recovered.Query(CrashQueryA()).status());
    GeneratedDelta generated = NextCrashBatch(snowflake, source, rng);
    MD_ASSERT_OK(recovered.ApplyTransaction(
        OneTable(generated.table, generated.delta), BatchKey(i)));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));
    for (const std::string& sql : {CrashQueryA(), CrashQueryScalar()}) {
      MD_ASSERT_OK_AND_ASSIGN(Table got, recovered.Query(sql));
      ASSERT_TRUE(TablesExactlyEqual(Oracle(source, sql), got)) << sql;
    }
  }
}

TEST(LatticeCrashRecoveryTest, KillAtFailpointsPreservesLatticeState) {
  const std::string exe = SelfExePath();
  ASSERT_FALSE(exe.empty());
  int crashes = 0;
  for (const std::string& site : Failpoints::KnownSites()) {
    // Trigger 1 lands in setup (AddViewSql writes a checkpoint);
    // trigger 2 lands mid-stream, after nodes are promoted — for the
    // checkpoint.* sites that is the checkpoint carrying lattice state.
    for (int trigger : {1, 2}) {
      SCOPED_TRACE(StrCat(site, ":crash:", trigger));
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           StrCat("mindetail_lattice_crash_", site, "_", trigger))
              .string();
      std::filesystem::remove_all(dir);

      const std::string cmd = StrCat(
          "MINDETAIL_LATTICE_CRASH_DIR='", dir,
          "' MINDETAIL_FAILPOINT='", site, ":crash:", trigger, "' '",
          exe, "' --gtest_filter=LatticeCrashChild.Run >/dev/null 2>&1");
      const int rc = std::system(cmd.c_str());
      ASSERT_TRUE(WIFEXITED(rc)) << "child did not exit normally";
      const int exit_code = WEXITSTATUS(rc);
      ASSERT_TRUE(exit_code == 0 ||
                  exit_code == Failpoints::kCrashExitCode)
          << "child exit code " << exit_code;
      if (exit_code == Failpoints::kCrashExitCode) ++crashes;

      VerifyLatticeRecovery(dir);
      std::filesystem::remove_all(dir);
    }
  }
  EXPECT_GE(crashes, 8) << "too few failpoints fired";
}

}  // namespace
}  // namespace mindetail
