// Randomized differential stress harness: one long mixed
// insert/delete/update stream against a depth-3 snowflake, applied in
// lock-step to every maintainer in the repo —
//
//   * the serial self-maintenance engine,
//   * the parallel sharded engine (4 threads), which must stay EXACTLY
//     equal to the serial engine (same rows, same order, bit-for-bit
//     aggregate values),
//   * FullReplicationMaintainer (recompute-from-replicas oracle),
//   * PsjStyleMaintainer (reduction without compression),
//
// with all four compared after every batch. The seed is printed on
// failure; rerun a failing stream with
//   MINDETAIL_STRESS_SEED=<seed> ./stress_test

#include <cstdlib>
#include <map>
#include <string>

#include "common/failpoint.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "maintenance/baselines.h"
#include "maintenance/engine.h"
#include "maintenance/warehouse.h"
#include "snowflake_stream.h"
#include "test_util.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::GeneratedDelta;
using test::TablesApproxEqual;
using test::TablesExactlyEqual;

uint64_t StressSeed(uint64_t fallback) {
  const char* env = std::getenv("MINDETAIL_STRESS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

struct StressVariant {
  const char* name;
  bool non_csmas;
  bool fact_condition;
  uint64_t fallback_seed;
};

class DifferentialStress
    : public ::testing::TestWithParam<StressVariant> {};

TEST_P(DifferentialStress, AllMaintainersAgreeOnLongMixedStream) {
  const StressVariant& variant = GetParam();
  const uint64_t seed = StressSeed(variant.fallback_seed);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 250;
  sp.dim_rows = 20;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;

  test::SnowflakeViewFlags flags;
  flags.non_csmas = variant.non_csmas;
  flags.fact_condition = variant.fact_condition;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          test::BuildSnowflakeView(warehouse, flags));

  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine serial,
                          SelfMaintenanceEngine::Create(source, def));
  EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine parallel,
      SelfMaintenanceEngine::Create(source, def, parallel_options));
  MD_ASSERT_OK_AND_ASSIGN(FullReplicationMaintainer full,
                          FullReplicationMaintainer::Create(source, def));
  MD_ASSERT_OK_AND_ASSIGN(PsjStyleMaintainer psj,
                          PsjStyleMaintainer::Create(source, def));

  constexpr int kBatches = 200;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  int applied = 0;
  // Bounded retry loop so empty random batches don't count against the
  // 200 applied-batch floor.
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;

    // SCOPED_TRACE above carries the seed; MD_ASSERT_OK takes no
    // stream suffix.
    SCOPED_TRACE(::testing::Message() << "batch " << applied
                                      << ", delta on " << generated.table);
    MD_ASSERT_OK(serial.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(parallel.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(full.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(psj.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    MD_ASSERT_OK_AND_ASSIGN(Table serial_view, serial.View());
    MD_ASSERT_OK_AND_ASSIGN(Table parallel_view, parallel.View());
    MD_ASSERT_OK_AND_ASSIGN(Table full_view, full.View());
    MD_ASSERT_OK_AND_ASSIGN(Table psj_view, psj.View());

    // The parallel engine must match the serial one exactly; the
    // recomputing baselines accumulate in a different order, so they
    // get the usual numeric tolerance.
    ASSERT_TRUE(TablesExactlyEqual(parallel_view, serial_view))
        << "parallel/serial divergence, seed " << seed << ", batch "
        << applied << ", delta on " << generated.table;
    ASSERT_TRUE(TablesApproxEqual(serial_view, full_view))
        << "engine/full-replication divergence, seed " << seed
        << ", batch " << applied << ", delta on " << generated.table;
    ASSERT_TRUE(TablesApproxEqual(serial_view, psj_view))
        << "engine/psj divergence, seed " << seed << ", batch "
        << applied << ", delta on " << generated.table;
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;
}

// Everything observable about a warehouse's maintenance state, for
// bit-identical before/after comparison around an injected failure.
std::map<std::string, Table> CaptureState(const Warehouse& warehouse) {
  std::map<std::string, Table> state;
  for (const std::string& name : warehouse.ViewNames()) {
    const SelfMaintenanceEngine& engine = warehouse.engine(name);
    Result<Table> view = warehouse.View(name);
    MD_CHECK(view.ok());
    state.emplace(name + "/view", std::move(view).value());
    Result<Table> augmented = engine.RenderAugmentedSummary();
    MD_CHECK(augmented.ok());
    state.emplace(name + "/summary", std::move(augmented).value());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      state.emplace(name + "/aux/" + aux.base_table,
                    engine.AuxContents(aux.base_table));
    }
  }
  return state;
}

void ExpectStatesIdentical(const std::map<std::string, Table>& before,
                           const std::map<std::string, Table>& after) {
  ASSERT_EQ(before.size(), after.size());
  for (const auto& [key, table] : before) {
    auto it = after.find(key);
    ASSERT_NE(it, after.end()) << key;
    EXPECT_TRUE(TablesExactlyEqual(table, it->second)) << key;
  }
}

// Transient-failure mode of the stress harness: a warehouse running the
// sharded (num_threads = 4) engine takes the same mixed stream as a
// clean twin, but every few batches an error failpoint fires mid-apply.
// Each failed batch must leave the victim bit-identical to its pre-batch
// state, and retrying the identical batch must succeed — after which the
// victim and the never-failing twin must agree exactly. Run under the
// TSan preset via `ctest -L concurrency`.
TEST(TransientFailureStress, RollbackThenRetryMatchesCleanTwin) {
  const uint64_t seed = StressSeed(5511782027ULL);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 200;
  sp.dim_rows = 16;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      test::BuildSnowflakeView(warehouse, test::SnowflakeViewFlags{}));

  EngineOptions options;
  options.num_threads = 4;
  Warehouse victim;
  Warehouse twin;
  MD_ASSERT_OK(victim.AddView(source, def, options));
  MD_ASSERT_OK(twin.AddView(source, def, options));
  const std::string& view = def.name();

  constexpr int kBatches = 80;
  constexpr int kInjectEvery = 5;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  int applied = 0;
  int injected = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;
    SCOPED_TRACE(::testing::Message() << "batch " << applied
                                      << ", delta on " << generated.table);

    if (applied % kInjectEvery == 0) {
      // Alternate between an engine-internal failure and one after all
      // engines applied but before the warehouse acknowledged.
      const char* site = (injected % 2 == 0) ? "engine.apply.commit"
                                             : "warehouse.apply.before_ack";
      ++injected;
      const std::map<std::string, Table> before = CaptureState(victim);
      MD_ASSERT_OK(
          Failpoints::Arm(site, Failpoints::Action::kError, 1));
      const Status failure =
          victim.Apply(generated.table, generated.delta);
      Failpoints::DisarmAll();
      ASSERT_FALSE(failure.ok()) << site;
      EXPECT_NE(failure.message().find("failpoint"), std::string::npos)
          << failure.message();
      ExpectStatesIdentical(before, CaptureState(victim));
      if (::testing::Test::HasFatalFailure()) return;
    }

    MD_ASSERT_OK(victim.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(twin.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    MD_ASSERT_OK_AND_ASSIGN(Table victim_view, victim.View(view));
    MD_ASSERT_OK_AND_ASSIGN(Table twin_view, twin.View(view));
    ASSERT_TRUE(TablesExactlyEqual(victim_view, twin_view))
        << "victim/twin divergence, seed " << seed << ", batch "
        << applied;
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;
  ASSERT_GE(injected, kBatches / kInjectEvery) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Streams, DifferentialStress,
    ::testing::Values(
        StressVariant{"csmas_only", false, false, 81498201ULL},
        StressVariant{"non_csmas_with_condition", true, true,
                      271828183ULL}),
    [](const ::testing::TestParamInfo<StressVariant>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mindetail
