// Randomized differential stress harness: one long mixed
// insert/delete/update stream against a depth-3 snowflake, applied in
// lock-step to every maintainer in the repo —
//
//   * the serial self-maintenance engine,
//   * the parallel sharded engine (4 threads), which must stay EXACTLY
//     equal to the serial engine (same rows, same order, bit-for-bit
//     aggregate values),
//   * FullReplicationMaintainer (recompute-from-replicas oracle),
//   * PsjStyleMaintainer (reduction without compression),
//
// with all four compared after every batch. The seed is printed on
// failure; rerun a failing stream with
//   MINDETAIL_STRESS_SEED=<seed> ./stress_test

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "maintenance/baselines.h"
#include "maintenance/engine.h"
#include "maintenance/warehouse.h"
#include "snowflake_stream.h"
#include "test_util.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::GeneratedDelta;
using test::TablesApproxEqual;
using test::TablesExactlyEqual;

uint64_t StressSeed(uint64_t fallback) {
  const char* env = std::getenv("MINDETAIL_STRESS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

struct StressVariant {
  const char* name;
  bool non_csmas;
  bool fact_condition;
  uint64_t fallback_seed;
};

class DifferentialStress
    : public ::testing::TestWithParam<StressVariant> {};

TEST_P(DifferentialStress, AllMaintainersAgreeOnLongMixedStream) {
  const StressVariant& variant = GetParam();
  const uint64_t seed = StressSeed(variant.fallback_seed);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 250;
  sp.dim_rows = 20;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;

  test::SnowflakeViewFlags flags;
  flags.non_csmas = variant.non_csmas;
  flags.fact_condition = variant.fact_condition;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          test::BuildSnowflakeView(warehouse, flags));

  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine serial,
                          SelfMaintenanceEngine::Create(source, def));
  EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine parallel,
      SelfMaintenanceEngine::Create(source, def, parallel_options));
  MD_ASSERT_OK_AND_ASSIGN(FullReplicationMaintainer full,
                          FullReplicationMaintainer::Create(source, def));
  MD_ASSERT_OK_AND_ASSIGN(PsjStyleMaintainer psj,
                          PsjStyleMaintainer::Create(source, def));

  constexpr int kBatches = 200;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  int applied = 0;
  // Bounded retry loop so empty random batches don't count against the
  // 200 applied-batch floor.
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;

    // SCOPED_TRACE above carries the seed; MD_ASSERT_OK takes no
    // stream suffix.
    SCOPED_TRACE(::testing::Message() << "batch " << applied
                                      << ", delta on " << generated.table);
    MD_ASSERT_OK(serial.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(parallel.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(full.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(psj.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    MD_ASSERT_OK_AND_ASSIGN(Table serial_view, serial.View());
    MD_ASSERT_OK_AND_ASSIGN(Table parallel_view, parallel.View());
    MD_ASSERT_OK_AND_ASSIGN(Table full_view, full.View());
    MD_ASSERT_OK_AND_ASSIGN(Table psj_view, psj.View());

    // The parallel engine must match the serial one exactly; the
    // recomputing baselines accumulate in a different order, so they
    // get the usual numeric tolerance.
    ASSERT_TRUE(TablesExactlyEqual(parallel_view, serial_view))
        << "parallel/serial divergence, seed " << seed << ", batch "
        << applied << ", delta on " << generated.table;
    ASSERT_TRUE(TablesApproxEqual(serial_view, full_view))
        << "engine/full-replication divergence, seed " << seed
        << ", batch " << applied << ", delta on " << generated.table;
    ASSERT_TRUE(TablesApproxEqual(serial_view, psj_view))
        << "engine/psj divergence, seed " << seed << ", batch "
        << applied << ", delta on " << generated.table;
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;
}

// Everything observable about a warehouse's maintenance state, for
// bit-identical before/after comparison around an injected failure.
std::map<std::string, Table> CaptureState(const Warehouse& warehouse) {
  std::map<std::string, Table> state;
  for (const std::string& name : warehouse.ViewNames()) {
    const SelfMaintenanceEngine& engine = warehouse.engine(name);
    Result<Table> view = warehouse.View(name);
    MD_CHECK(view.ok());
    state.emplace(name + "/view", std::move(view).value());
    Result<Table> augmented = engine.RenderAugmentedSummary();
    MD_CHECK(augmented.ok());
    state.emplace(name + "/summary", std::move(augmented).value());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      state.emplace(name + "/aux/" + aux.base_table,
                    engine.AuxContents(aux.base_table));
    }
  }
  return state;
}

void ExpectStatesIdentical(const std::map<std::string, Table>& before,
                           const std::map<std::string, Table>& after) {
  ASSERT_EQ(before.size(), after.size());
  for (const auto& [key, table] : before) {
    auto it = after.find(key);
    ASSERT_NE(it, after.end()) << key;
    EXPECT_TRUE(TablesExactlyEqual(table, it->second)) << key;
  }
}

// Transient-failure mode of the stress harness: a warehouse running the
// sharded (num_threads = 4) engine takes the same mixed stream as a
// clean twin, but every few batches an error failpoint fires mid-apply.
// Each failed batch must leave the victim bit-identical to its pre-batch
// state, and retrying the identical batch must succeed — after which the
// victim and the never-failing twin must agree exactly. Run under the
// TSan preset via `ctest -L concurrency`.
TEST(TransientFailureStress, RollbackThenRetryMatchesCleanTwin) {
  const uint64_t seed = StressSeed(5511782027ULL);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 200;
  sp.dim_rows = 16;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      test::BuildSnowflakeView(warehouse, test::SnowflakeViewFlags{}));

  EngineOptions options;
  options.num_threads = 4;
  Warehouse victim;
  Warehouse twin;
  MD_ASSERT_OK(victim.AddView(source, def, options));
  MD_ASSERT_OK(twin.AddView(source, def, options));
  const std::string& view = def.name();

  constexpr int kBatches = 80;
  constexpr int kInjectEvery = 5;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  int applied = 0;
  int injected = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;
    SCOPED_TRACE(::testing::Message() << "batch " << applied
                                      << ", delta on " << generated.table);

    if (applied % kInjectEvery == 0) {
      // Alternate between an engine-internal failure and one after all
      // engines applied but before the warehouse acknowledged.
      const char* site = (injected % 2 == 0) ? "engine.apply.commit"
                                             : "warehouse.apply.before_ack";
      ++injected;
      const std::map<std::string, Table> before = CaptureState(victim);
      MD_ASSERT_OK(
          Failpoints::Arm(site, Failpoints::Action::kError, 1));
      const Status failure =
          victim.Apply(generated.table, generated.delta);
      Failpoints::DisarmAll();
      ASSERT_FALSE(failure.ok()) << site;
      EXPECT_NE(failure.message().find("failpoint"), std::string::npos)
          << failure.message();
      ExpectStatesIdentical(before, CaptureState(victim));
      if (::testing::Test::HasFatalFailure()) return;
    }

    MD_ASSERT_OK(victim.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(twin.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    MD_ASSERT_OK_AND_ASSIGN(Table victim_view, victim.View(view));
    MD_ASSERT_OK_AND_ASSIGN(Table twin_view, twin.View(view));
    ASSERT_TRUE(TablesExactlyEqual(victim_view, twin_view))
        << "victim/twin divergence, seed " << seed << ", batch "
        << applied;
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;
  ASSERT_GE(injected, kBatches / kInjectEvery) << "seed " << seed;
}

// Cancellation mode of the stress harness: the victim takes the same
// 200-batch mixed stream as a never-cancelled twin, but random batches
// (and queries) get a deadline that trips mid-flight — at a rotating
// pipeline depth, so trips land everywhere from the pre-log check to
// deep inside the sharded engine apply. Every cancelled batch must
// leave the victim bit-identical to its pre-batch state, the identical
// batch must then apply cleanly, and the victim and twin must agree
// exactly at every committed boundary. Run under the TSan preset via
// `ctest -L concurrency`.
TEST(CancellationStress, CancelledBatchesLeaveTwinsBitIdentical) {
  const uint64_t seed = StressSeed(9182736450ULL);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 200;
  sp.dim_rows = 16;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      test::BuildSnowflakeView(warehouse, test::SnowflakeViewFlags{}));

  EngineOptions options;
  options.num_threads = 4;
  Warehouse victim;
  Warehouse twin;
  MD_ASSERT_OK(victim.AddView(source, def, options));
  MD_ASSERT_OK(twin.AddView(source, def, options));
  const std::string& view = def.name();
  // A coarser roll-up of the view, written as plain SQL (the view
  // def's rendered SQL is not round-trippable — join targets render as
  // a "<key>" placeholder).
  std::string query_sql = StrCat(
      "SELECT ", warehouse.dims.front(), ".a, SUM(", warehouse.fact,
      ".m1) AS S, COUNT(*) AS C FROM ", warehouse.fact);
  for (const std::string& dim : warehouse.dims) {
    query_sql = StrCat(query_sql, ", ", dim);
  }
  std::string separator = " WHERE ";
  for (const std::string& dim : warehouse.dims) {
    MD_ASSERT_OK_AND_ASSIGN(std::string key, source.KeyAttr(dim));
    query_sql =
        StrCat(query_sql, separator, warehouse.parent.at(dim), ".",
               warehouse.link_attr.at(dim), " = ", dim, ".", key);
    separator = " AND ";
  }
  query_sql =
      StrCat(query_sql, " GROUP BY ", warehouse.dims.front(), ".a");

  // A shared-counter clock: 0 for the first `free` reads, then far
  // future — the deadline trips at the (free+1)-th check, wherever in
  // the pipeline that lands.
  auto trip_after = [](int free) -> MonotonicClock {
    auto calls = std::make_shared<std::atomic<int>>(0);
    return [calls, free]() -> int64_t {
      return calls->fetch_add(1) < free ? 0 : (int64_t{1} << 60);
    };
  };

  constexpr int kBatches = 200;
  constexpr int kCancelEvery = 4;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  int applied = 0;
  int cancelled_batches = 0;
  int cancelled_queries = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;
    SCOPED_TRACE(::testing::Message() << "batch " << applied
                                      << ", delta on " << generated.table);
    std::map<std::string, Delta> changes;
    changes.emplace(generated.table, generated.delta);

    if (applied % kCancelEvery == 0) {
      // Rotate the trip depth so cancellation lands at a different
      // pipeline stage each round.
      const int depth = 1 + (applied / kCancelEvery) % 6;
      const std::map<std::string, Table> before = CaptureState(victim);
      CancellationToken token(Deadline::After(1, trip_after(depth)));
      const Status outcome = victim.ApplyTransaction(changes, "", token);
      if (outcome.ok()) {
        // A deep enough trip depth can outlast the whole apply; the
        // batch then committed normally and the twin must follow.
        MD_ASSERT_OK(twin.ApplyTransaction(changes));
      } else {
        ASSERT_TRUE(outcome.code() == StatusCode::kDeadlineExceeded ||
                    outcome.code() == StatusCode::kCancelled)
            << outcome.message();
        ++cancelled_batches;
        ExpectStatesIdentical(before, CaptureState(victim));
        if (::testing::Test::HasFatalFailure()) return;
        // The identical batch, resent verbatim, applies cleanly.
        MD_ASSERT_OK(victim.ApplyTransaction(changes));
        MD_ASSERT_OK(twin.ApplyTransaction(changes));
      }
    } else {
      MD_ASSERT_OK(victim.ApplyTransaction(changes));
      MD_ASSERT_OK(twin.ApplyTransaction(changes));
    }
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    if (applied % 7 == 0) {
      // A query cancelled mid-flight must publish nothing; the same
      // query uncancelled answers identically on victim and twin.
      CancellationToken token(
          Deadline::After(1, trip_after(1 + applied % 3)));
      Result<Table> governed = victim.Query(query_sql, token);
      if (!governed.ok()) {
        ASSERT_EQ(governed.status().code(), StatusCode::kDeadlineExceeded)
            << governed.status().message();
        ++cancelled_queries;
      }
      MD_ASSERT_OK_AND_ASSIGN(Table victim_answer,
                              victim.Query(query_sql));
      MD_ASSERT_OK_AND_ASSIGN(Table twin_answer, twin.Query(query_sql));
      ASSERT_TRUE(TablesExactlyEqual(victim_answer, twin_answer))
          << "query divergence, seed " << seed << ", batch " << applied;
    }

    MD_ASSERT_OK_AND_ASSIGN(Table victim_view, victim.View(view));
    MD_ASSERT_OK_AND_ASSIGN(Table twin_view, twin.View(view));
    ASSERT_TRUE(TablesExactlyEqual(victim_view, twin_view))
        << "victim/twin divergence, seed " << seed << ", batch "
        << applied;
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;
  // The rotating depths must actually cancel most rounds, or the run
  // proves nothing.
  ASSERT_GE(cancelled_batches, kBatches / kCancelEvery / 2)
      << "seed " << seed;
  EXPECT_GE(cancelled_queries, 0);
  EXPECT_EQ(victim.Report().overload.cancelled_batches,
            static_cast<uint64_t>(cancelled_batches));
}

// -------------------------------------------------------------------
// Warehouse grid stress: cross-view parallelism × engine sharding.
// -------------------------------------------------------------------

std::string FreshGridDir(const std::string& tag) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           StrCat("mindetail_grid_", tag))
                              .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// A 200-batch mixed stream over three views, applied in lock-step to a
// serial warehouse and to every point of the {2,4} view-thread ×
// {1,4} engine-thread grid (all durable). Every grid point must stay
// bit-identical to the serial warehouse — through occasional
// multi-table transactions, transient injected failures (whose
// rollback must restore the victim exactly), mid-stream checkpoints,
// and a final checkpoint + reopen with default options. Runs under the
// TSan preset via `ctest -L concurrency`.
TEST(WarehouseGridStress, ParallelGridBitIdenticalToSerialWarehouse) {
  const uint64_t seed = StressSeed(97311443ULL);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 150;
  sp.dim_rows = 16;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;

  std::vector<GpsjViewDef> defs;
  {
    test::SnowflakeViewFlags plain;
    MD_ASSERT_OK_AND_ASSIGN(
        GpsjViewDef def, test::BuildSnowflakeView(warehouse, plain,
                                                  "grid_plain"));
    defs.push_back(std::move(def));
    test::SnowflakeViewFlags non_csmas;
    non_csmas.non_csmas = true;
    MD_ASSERT_OK_AND_ASSIGN(
        def, test::BuildSnowflakeView(warehouse, non_csmas,
                                      "grid_non_csmas"));
    defs.push_back(std::move(def));
    test::SnowflakeViewFlags condition;
    condition.fact_condition = true;
    MD_ASSERT_OK_AND_ASSIGN(
        def, test::BuildSnowflakeView(warehouse, condition,
                                      "grid_condition"));
    defs.push_back(std::move(def));
  }

  struct GridPoint {
    int view_threads;
    int engine_threads;
  };
  const std::vector<GridPoint> grid = {{2, 1}, {2, 4}, {4, 1}, {4, 4}};

  const std::string serial_dir = FreshGridDir("serial");
  std::unique_ptr<Warehouse> serial;
  {
    MD_ASSERT_OK_AND_ASSIGN(
        Warehouse opened,
        Warehouse::Open(serial_dir, WarehouseOptions{}.WithSyncWal(false)));
    serial = std::make_unique<Warehouse>(std::move(opened));
  }
  for (const GpsjViewDef& def : defs) {
    MD_ASSERT_OK(serial->AddView(source, def));
  }

  std::vector<std::unique_ptr<Warehouse>> players;
  std::vector<std::string> player_dirs;
  for (const GridPoint& point : grid) {
    const std::string dir = FreshGridDir(
        StrCat("v", point.view_threads, "e", point.engine_threads));
    MD_ASSERT_OK_AND_ASSIGN(
        Warehouse opened,
        Warehouse::Open(dir, WarehouseOptions{}
                                 .WithParallelism(point.view_threads)
                                 .WithEngineThreads(point.engine_threads)
                                 .WithSyncWal(false)));
    players.push_back(std::make_unique<Warehouse>(std::move(opened)));
    player_dirs.push_back(dir);
    for (const GpsjViewDef& def : defs) {
      MD_ASSERT_OK(players.back()->AddView(source, def));
    }
  }

  constexpr int kBatches = 200;
  constexpr int kTransactionEvery = 10;
  constexpr int kInjectEvery = 7;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 13);
  int applied = 0;
  int injected = 0;
  int transactions = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta first = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (first.delta.Empty()) continue;
    ++applied;
    std::map<std::string, Delta> changes;
    changes.emplace(first.table, std::move(first.delta));
    if (applied % kTransactionEvery == 0) {
      // Promote to a multi-table transaction: add a batch against a
      // second table (the combined change set stays RI-consistent —
      // dimension batches never delete rows).
      for (int tries = 0; tries < 8; ++tries) {
        GeneratedDelta second = test::MakeSnowflakeDelta(
            warehouse, source, rng, /*append_only=*/false);
        if (second.delta.Empty() || changes.count(second.table) > 0) {
          continue;
        }
        changes.emplace(second.table, std::move(second.delta));
        ++transactions;
        break;
      }
    }
    SCOPED_TRACE(::testing::Message()
                 << "batch " << applied << ", " << changes.size()
                 << " table(s), first on " << changes.begin()->first);

    if (applied % kInjectEvery == 0) {
      // A transient failure on a rotating grid victim: mid-engine or
      // after all engines applied. Rollback must be exact; the retry
      // below must succeed.
      Warehouse& victim = *players[injected % players.size()];
      const char* site = (injected % 2 == 0)
                             ? "engine.apply.commit"
                             : "warehouse.apply.before_ack";
      ++injected;
      const std::map<std::string, Table> before = CaptureState(victim);
      MD_ASSERT_OK(Failpoints::Arm(site, Failpoints::Action::kError, 1));
      const Status failure = victim.ApplyTransaction(changes);
      Failpoints::DisarmAll();
      ASSERT_FALSE(failure.ok()) << site;
      EXPECT_NE(failure.message().find("failpoint"), std::string::npos)
          << failure.message();
      ExpectStatesIdentical(before, CaptureState(victim));
      if (::testing::Test::HasFatalFailure()) return;
    }

    MD_ASSERT_OK(serial->ApplyTransaction(changes));
    for (std::unique_ptr<Warehouse>& player : players) {
      MD_ASSERT_OK(player->ApplyTransaction(changes));
    }
    for (const auto& [table, delta] : changes) {
      MD_ASSERT_OK(ApplyDelta(*source.MutableTable(table), delta));
    }

    for (const GpsjViewDef& def : defs) {
      MD_ASSERT_OK_AND_ASSIGN(Table serial_view,
                              serial->View(def.name()));
      for (size_t p = 0; p < players.size(); ++p) {
        MD_ASSERT_OK_AND_ASSIGN(Table player_view,
                                players[p]->View(def.name()));
        ASSERT_TRUE(TablesExactlyEqual(serial_view, player_view))
            << "grid point " << grid[p].view_threads << "x"
            << grid[p].engine_threads << " diverged on " << def.name()
            << ", seed " << seed << ", batch " << applied;
      }
    }
    if (applied % 50 == 0) {
      MD_ASSERT_OK(serial->Checkpoint());
      for (std::unique_ptr<Warehouse>& player : players) {
        MD_ASSERT_OK(player->Checkpoint());
      }
    }
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;
  ASSERT_GE(injected, kBatches / kInjectEvery) << "seed " << seed;
  ASSERT_GE(transactions, kBatches / kTransactionEvery - 2)
      << "seed " << seed;

  // Full state (summaries, hidden accumulators, aux stores) must agree
  // bit-for-bit at the end of the stream.
  const std::map<std::string, Table> serial_state = CaptureState(*serial);
  for (std::unique_ptr<Warehouse>& player : players) {
    ExpectStatesIdentical(serial_state, CaptureState(*player));
  }

  // Checkpoints written from any grid point must recover — with plain
  // default options — into the identical warehouse.
  MD_ASSERT_OK(serial->Checkpoint());
  for (std::unique_ptr<Warehouse>& player : players) {
    MD_ASSERT_OK(player->Checkpoint());
  }
  serial.reset();
  players.clear();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse serial_recovered,
                          Warehouse::Open(serial_dir));
  const std::map<std::string, Table> recovered_state =
      CaptureState(serial_recovered);
  for (const std::string& dir : player_dirs) {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered, Warehouse::Open(dir));
    ExpectStatesIdentical(recovered_state, CaptureState(recovered));
    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(serial_dir);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, DifferentialStress,
    ::testing::Values(
        StressVariant{"csmas_only", false, false, 81498201ULL},
        StressVariant{"non_csmas_with_condition", true, true,
                      271828183ULL}),
    [](const ::testing::TestParamInfo<StressVariant>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mindetail
