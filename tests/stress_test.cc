// Randomized differential stress harness: one long mixed
// insert/delete/update stream against a depth-3 snowflake, applied in
// lock-step to every maintainer in the repo —
//
//   * the serial self-maintenance engine,
//   * the parallel sharded engine (4 threads), which must stay EXACTLY
//     equal to the serial engine (same rows, same order, bit-for-bit
//     aggregate values),
//   * FullReplicationMaintainer (recompute-from-replicas oracle),
//   * PsjStyleMaintainer (reduction without compression),
//
// with all four compared after every batch. The seed is printed on
// failure; rerun a failing stream with
//   MINDETAIL_STRESS_SEED=<seed> ./stress_test

#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "maintenance/baselines.h"
#include "maintenance/engine.h"
#include "snowflake_stream.h"
#include "test_util.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::GeneratedDelta;
using test::TablesApproxEqual;
using test::TablesExactlyEqual;

uint64_t StressSeed(uint64_t fallback) {
  const char* env = std::getenv("MINDETAIL_STRESS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

struct StressVariant {
  const char* name;
  bool non_csmas;
  bool fact_condition;
  uint64_t fallback_seed;
};

class DifferentialStress
    : public ::testing::TestWithParam<StressVariant> {};

TEST_P(DifferentialStress, AllMaintainersAgreeOnLongMixedStream) {
  const StressVariant& variant = GetParam();
  const uint64_t seed = StressSeed(variant.fallback_seed);
  SCOPED_TRACE(::testing::Message()
               << "stress seed " << seed << " (rerun with "
               << "MINDETAIL_STRESS_SEED=" << seed << ")");

  SnowflakeParams sp;
  sp.depth = 3;
  sp.fanout = 1;
  sp.fact_rows = 250;
  sp.dim_rows = 20;
  sp.seed = seed;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(sp));
  Catalog source = warehouse.catalog;

  test::SnowflakeViewFlags flags;
  flags.non_csmas = variant.non_csmas;
  flags.fact_condition = variant.fact_condition;
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          test::BuildSnowflakeView(warehouse, flags));

  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine serial,
                          SelfMaintenanceEngine::Create(source, def));
  EngineOptions parallel_options;
  parallel_options.num_threads = 4;
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine parallel,
      SelfMaintenanceEngine::Create(source, def, parallel_options));
  MD_ASSERT_OK_AND_ASSIGN(FullReplicationMaintainer full,
                          FullReplicationMaintainer::Create(source, def));
  MD_ASSERT_OK_AND_ASSIGN(PsjStyleMaintainer psj,
                          PsjStyleMaintainer::Create(source, def));

  constexpr int kBatches = 200;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  int applied = 0;
  // Bounded retry loop so empty random batches don't count against the
  // 200 applied-batch floor.
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        warehouse, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;

    // SCOPED_TRACE above carries the seed; MD_ASSERT_OK takes no
    // stream suffix.
    SCOPED_TRACE(::testing::Message() << "batch " << applied
                                      << ", delta on " << generated.table);
    MD_ASSERT_OK(serial.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(parallel.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(full.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(psj.Apply(generated.table, generated.delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    MD_ASSERT_OK_AND_ASSIGN(Table serial_view, serial.View());
    MD_ASSERT_OK_AND_ASSIGN(Table parallel_view, parallel.View());
    MD_ASSERT_OK_AND_ASSIGN(Table full_view, full.View());
    MD_ASSERT_OK_AND_ASSIGN(Table psj_view, psj.View());

    // The parallel engine must match the serial one exactly; the
    // recomputing baselines accumulate in a different order, so they
    // get the usual numeric tolerance.
    ASSERT_TRUE(TablesExactlyEqual(parallel_view, serial_view))
        << "parallel/serial divergence, seed " << seed << ", batch "
        << applied << ", delta on " << generated.table;
    ASSERT_TRUE(TablesApproxEqual(serial_view, full_view))
        << "engine/full-replication divergence, seed " << seed
        << ", batch " << applied << ", delta on " << generated.table;
    ASSERT_TRUE(TablesApproxEqual(serial_view, psj_view))
        << "engine/psj divergence, seed " << seed << ", batch "
        << applied << ", delta on " << generated.table;
  }
  ASSERT_GE(applied, kBatches) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Streams, DifferentialStress,
    ::testing::Values(
        StressVariant{"csmas_only", false, false, 81498201ULL},
        StressVariant{"non_csmas_with_condition", true, true,
                      271828183ULL}),
    [](const ::testing::TestParamInfo<StressVariant>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mindetail
