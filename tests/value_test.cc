#include "relational/value.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace mindetail {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(7).type(), ValueType::kInt64);
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(2).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(2).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(3)), 0);
  EXPECT_EQ(Value(int64_t{1} << 40), Value(static_cast<double>(1LL << 40)));
}

TEST(ValueTest, NullOrdering) {
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_LT(Value().Compare(Value(0)), 0);
  EXPECT_GT(Value("").Compare(Value()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("alpha").Compare(Value("beta")), 0);
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // int64 and the equal double must hash identically because they
  // compare equal.
  EXPECT_EQ(Value(42).Hash(), Value(42.0).Hash());
  EXPECT_EQ(Value("q").Hash(), Value("q").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value(2.5).ToString(), "2.5000");
  EXPECT_EQ(Value(3.0).ToString(), "3.0");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(ValueTest, AddValuesPreservesInt) {
  EXPECT_EQ(AddValues(Value(2), Value(3)).type(), ValueType::kInt64);
  EXPECT_EQ(AddValues(Value(2), Value(3)).AsInt64(), 5);
  EXPECT_EQ(AddValues(Value(2), Value(0.5)).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(AddValues(Value(2), Value(0.5)).AsDouble(), 2.5);
}

TEST(ValueTest, AddValuesTreatsNullAsIdentity) {
  EXPECT_EQ(AddValues(Value(), Value(4)), Value(4));
  EXPECT_EQ(AddValues(Value(4), Value()), Value(4));
  EXPECT_TRUE(AddValues(Value(), Value()).is_null());
}

TEST(ValueTest, NegateAndScale) {
  EXPECT_EQ(NegateValue(Value(5)), Value(-5));
  EXPECT_DOUBLE_EQ(NegateValue(Value(2.5)).AsDouble(), -2.5);
  EXPECT_TRUE(NegateValue(Value()).is_null());
  EXPECT_EQ(ScaleValue(Value(3), 4), Value(12));
  EXPECT_DOUBLE_EQ(ScaleValue(Value(1.5), 3).AsDouble(), 4.5);
  EXPECT_TRUE(ScaleValue(Value(), 3).is_null());
}

TEST(TupleTest, HashAndEqualityForContainers) {
  std::unordered_set<Tuple, TupleHash, TupleEqual> set;
  set.insert({Value(1), Value("a")});
  set.insert({Value(1), Value("a")});
  set.insert({Value(1), Value("b")});
  set.insert({Value(1.0), Value("a")});  // Equals the int64 variant.
  EXPECT_EQ(set.size(), 2u);
}

TEST(TupleTest, ToStringRendering) {
  EXPECT_EQ(TupleToString({Value(1), Value("x"), Value()}),
            "(1, 'x', NULL)");
  EXPECT_EQ(TupleToString({}), "()");
}

}  // namespace
}  // namespace mindetail
