// Hardened-ingestion coverage: admission control (BatchValidator /
// KeyLedger), exactly-once idempotency across resends and crash
// recovery, bounded retry with deterministic backoff, the quarantine
// dead-letter log, and the integrity scrubber.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "io/log_format.h"
#include "io/warehouse_io.h"
#include "maintenance/ingest.h"
#include "maintenance/quarantine.h"
#include "maintenance/warehouse.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesExactlyEqual;

constexpr char kMonthlySql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE time.year = 1997 AND sale.timeid = time.id
  GROUP BY time.month
)sql";

constexpr char kPerStoreSql[] = R"sql(
  CREATE VIEW per_store AS
  SELECT store.city, COUNT(*) AS Cnt, AVG(sale.price) AS AvgPrice
  FROM sale, store
  WHERE sale.storeid = store.id
  GROUP BY store.city
)sql";

// A valid fresh sale row: (id, timeid, productid, storeid, price).
Tuple FreshSale(int64_t id, int64_t timeid = 1) {
  return {Value(id), Value(timeid), Value(int64_t{1}), Value(int64_t{1}),
          Value(9.5)};
}

std::map<std::string, Delta> SaleInserts(std::vector<Tuple> rows) {
  Delta delta;
  delta.inserts = std::move(rows);
  std::map<std::string, Delta> changes;
  changes.emplace("sale", std::move(delta));
  return changes;
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// -------------------------------------------------------------------
// KeyLedger units.
// -------------------------------------------------------------------

TEST(KeyLedgerTest, TracksFoldsAndRoundTrips) {
  RetailWarehouse retail = SmallRetail();
  const Table* sale = retail.catalog.GetTable("sale").value();
  KeyLedger ledger;
  EXPECT_FALSE(ledger.Tracks("sale"));
  ledger.Track("sale", 0, *sale);
  EXPECT_TRUE(ledger.Tracks("sale"));
  EXPECT_EQ(ledger.NumKeys("sale"), sale->NumRows());
  EXPECT_TRUE(ledger.Contains("sale", sale->row(0)[0]));
  EXPECT_FALSE(ledger.Contains("sale", Value(int64_t{900001})));

  // Fold: delete one existing row, insert one fresh, move one key.
  Delta delta;
  delta.deletes.push_back(sale->row(0));
  delta.inserts.push_back(FreshSale(900001));
  Update move;
  move.before = sale->row(1);
  move.after = sale->row(1);
  move.after[0] = Value(int64_t{900002});
  delta.updates.push_back(move);
  std::map<std::string, Delta> changes;
  changes.emplace("sale", std::move(delta));
  ledger.Fold(changes);
  EXPECT_FALSE(ledger.Contains("sale", sale->row(0)[0]));
  EXPECT_FALSE(ledger.Contains("sale", sale->row(1)[0]));
  EXPECT_TRUE(ledger.Contains("sale", Value(int64_t{900001})));
  EXPECT_TRUE(ledger.Contains("sale", Value(int64_t{900002})));
  // One delete (-1), one insert (+1), one key move (net 0).
  EXPECT_EQ(ledger.NumKeys("sale"), sale->NumRows());

  // Serialization round trip preserves every key.
  std::string blob;
  ledger.SerializeInto(&blob);
  size_t consumed = 0;
  MD_ASSERT_OK_AND_ASSIGN(KeyLedger restored,
                          KeyLedger::Deserialize(blob, &consumed));
  EXPECT_EQ(consumed, blob.size());
  EXPECT_EQ(restored.NumKeys("sale"), ledger.NumKeys("sale"));
  EXPECT_TRUE(restored.Contains("sale", Value(int64_t{900002})));
}

// -------------------------------------------------------------------
// Admission control.
// -------------------------------------------------------------------

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    retail_ = SmallRetail();
    MD_ASSERT_OK(warehouse_.AddViewSql(retail_.catalog, kMonthlySql));
  }

  RetailWarehouse retail_;
  Warehouse warehouse_;
};

TEST_F(AdmissionTest, AcceptsValidBatchWithoutConsumingExtraSequence) {
  MD_ASSERT_OK(warehouse_.ApplyTransaction(SaleInserts({FreshSale(900001)})));
  EXPECT_EQ(warehouse_.last_sequence(), 1u);
  EXPECT_EQ(warehouse_.ingest_stats().accepted, 1u);
}

TEST_F(AdmissionTest, RejectsUnknownTable) {
  Delta delta;
  delta.inserts.push_back({Value(int64_t{1}), Value("x")});
  std::map<std::string, Delta> changes;
  changes.emplace("no_such_table", std::move(delta));
  const Status status = warehouse_.ApplyTransaction(changes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown table"), std::string::npos);
}

TEST_F(AdmissionTest, RejectsWrongArityAndWrongType) {
  // Four values instead of five.
  Status status = warehouse_.ApplyTransaction(SaleInserts(
      {{Value(int64_t{900001}), Value(int64_t{1}), Value(int64_t{1}),
        Value(9.5)}}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // String where the double price belongs.
  status = warehouse_.ApplyTransaction(SaleInserts(
      {{Value(int64_t{900001}), Value(int64_t{1}), Value(int64_t{1}),
        Value(int64_t{1}), Value("cheap")}}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // Neither invalid batch consumed a sequence number or reached a view.
  EXPECT_EQ(warehouse_.last_sequence(), 0u);
  EXPECT_EQ(warehouse_.ingest_stats().rejected, 2u);
  EXPECT_EQ(warehouse_.ingest_stats().accepted, 0u);
}

TEST_F(AdmissionTest, RejectsDeleteOfNonexistentRow) {
  Delta delta;
  delta.deletes.push_back(FreshSale(900001));
  std::map<std::string, Delta> changes;
  changes.emplace("sale", std::move(delta));
  const Status status = warehouse_.ApplyTransaction(changes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("does not exist"), std::string::npos);
}

TEST_F(AdmissionTest, RejectsDuplicateInsertAgainstLedgerAndWithinBatch) {
  // Against the ledger: key 900001 goes live with the first batch.
  MD_ASSERT_OK(warehouse_.ApplyTransaction(SaleInserts({FreshSale(900001)})));
  Status status =
      warehouse_.ApplyTransaction(SaleInserts({FreshSale(900001, 2)}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicates key"), std::string::npos);

  // Within one batch.
  status = warehouse_.ApplyTransaction(
      SaleInserts({FreshSale(900002), FreshSale(900002, 2)}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(AdmissionTest, RejectsDanglingForeignKey) {
  const Status status = warehouse_.ApplyTransaction(
      SaleInserts({FreshSale(900001, /*timeid=*/9999)}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("missing or deleted"), std::string::npos);
}

TEST_F(AdmissionTest, AcceptsChildOfParentInsertedInSameBatch) {
  std::map<std::string, Delta> changes;
  Delta time_delta;
  time_delta.inserts.push_back(
      {Value(int64_t{500}), Value(int64_t{1}), Value(int64_t{1}),
       Value(int64_t{1997})});
  changes.emplace("time", std::move(time_delta));
  Delta sale_delta;
  sale_delta.inserts.push_back(FreshSale(900001, /*timeid=*/500));
  changes.emplace("sale", std::move(sale_delta));
  MD_ASSERT_OK(warehouse_.ApplyTransaction(changes));
}

TEST_F(AdmissionTest, RejectsChildOfParentDeletedInSameBatch) {
  const Table* time = retail_.catalog.GetTable("time").value();
  std::map<std::string, Delta> changes;
  Delta time_delta;
  time_delta.deletes.push_back(time->row(0));
  changes.emplace("time", std::move(time_delta));
  Delta sale_delta;
  sale_delta.inserts.push_back(
      FreshSale(900001, /*timeid=*/time->row(0)[0].AsInt64()));
  changes.emplace("sale", std::move(sale_delta));
  const Status status = warehouse_.ApplyTransaction(changes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(AdmissionTest, ValidationCanBeDisabled) {
  // With admission control on, re-inserting an existing sale key is
  // rejected. With it off, the same batch sails through: the engines
  // maintain aggregates, not key constraints, so nothing else catches
  // it — which is exactly why admission control exists.
  const Table* sale = retail_.catalog.GetTable("sale").value();
  Tuple dup = sale->row(0);
  const std::map<std::string, Delta> batch = SaleInserts({dup});
  EXPECT_EQ(warehouse_.ApplyTransaction(batch).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(warehouse_.ingest_stats().rejected, 1u);

  warehouse_.set_options(WarehouseOptions{}.WithValidation(false));
  MD_ASSERT_OK(warehouse_.ApplyTransaction(batch));
  EXPECT_EQ(warehouse_.ingest_stats().accepted, 1u);
}

// -------------------------------------------------------------------
// Exactly-once idempotency.
// -------------------------------------------------------------------

TEST(IdempotencyTest, ExplicitKeyDetectsResend) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)}),
                                          "batch-1"));
  MD_ASSERT_OK_AND_ASSIGN(Table before, warehouse.View("monthly_sales"));

  // The resend — even with different (here: invalid) content — is
  // acknowledged as a no-op on the key alone.
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)}),
                                          "batch-1"));
  MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.View("monthly_sales"));
  EXPECT_TRUE(TablesExactlyEqual(before, after));
  EXPECT_EQ(warehouse.ingest_stats().accepted, 1u);
  EXPECT_EQ(warehouse.ingest_stats().duplicates, 1u);
  EXPECT_EQ(warehouse.last_sequence(), 1u);
}

TEST(IdempotencyTest, ContentHashFallbackDetectsIdenticalResend) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  const std::map<std::string, Delta> batch =
      SaleInserts({FreshSale(900001)});
  MD_ASSERT_OK(warehouse.ApplyTransaction(batch));
  MD_ASSERT_OK(warehouse.ApplyTransaction(batch));  // Resent verbatim.
  EXPECT_EQ(warehouse.ingest_stats().accepted, 1u);
  EXPECT_EQ(warehouse.ingest_stats().duplicates, 1u);
}

TEST(IdempotencyTest, WindowEvictsOldestKeys) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse(WarehouseOptions{}.WithIdempotencyWindow(2));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)}),
                                          "k1"));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900002)}),
                                          "k2"));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900003)}),
                                          "k3"));
  // k1 was evicted (window 2), so its resend is no longer recognized —
  // it re-enters the pipeline and is rejected as a duplicate insert by
  // admission control, proving it was not deduplicated.
  const Status status = warehouse.ApplyTransaction(
      SaleInserts({FreshSale(900001)}), "k1");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(warehouse.ingest_stats().duplicates, 0u);
}

TEST(IdempotencyTest, KeySurvivesCheckpointAndReopen) {
  const std::string dir = FreshDir("mindetail_idem_checkpoint");
  RetailWarehouse retail = SmallRetail();
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
    MD_ASSERT_OK(warehouse.ApplyTransaction(
        SaleInserts({FreshSale(900001)}), "batch-1"));
    MD_ASSERT_OK(warehouse.Checkpoint());
  }
  MD_ASSERT_OK_AND_ASSIGN(Warehouse reopened, Warehouse::Open(dir));
  MD_ASSERT_OK_AND_ASSIGN(Table before, reopened.View("monthly_sales"));
  MD_ASSERT_OK(reopened.ApplyTransaction(SaleInserts({FreshSale(900001)}),
                                         "batch-1"));
  MD_ASSERT_OK_AND_ASSIGN(Table after, reopened.View("monthly_sales"));
  EXPECT_TRUE(TablesExactlyEqual(before, after));
  EXPECT_EQ(reopened.ingest_stats().duplicates, 1u);
  std::filesystem::remove_all(dir);
}

TEST(IdempotencyTest, KeySurvivesWalReplayRecovery) {
  const std::string dir = FreshDir("mindetail_idem_replay");
  RetailWarehouse retail = SmallRetail();
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
    // No checkpoint after this batch: recovery must replay it from the
    // WAL and re-learn its idempotency key from the keyed record.
    MD_ASSERT_OK(warehouse.ApplyTransaction(
        SaleInserts({FreshSale(900001)}), "batch-1"));
  }
  MD_ASSERT_OK_AND_ASSIGN(Warehouse reopened, Warehouse::Open(dir));
  EXPECT_EQ(reopened.recovery_stats().replayed_batches, 1u);
  MD_ASSERT_OK_AND_ASSIGN(Table before, reopened.View("monthly_sales"));
  MD_ASSERT_OK(reopened.ApplyTransaction(SaleInserts({FreshSale(900001)}),
                                         "batch-1"));
  MD_ASSERT_OK_AND_ASSIGN(Table after, reopened.View("monthly_sales"));
  EXPECT_TRUE(TablesExactlyEqual(before, after));
  EXPECT_EQ(reopened.ingest_stats().duplicates, 1u);
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Bounded retry with deterministic backoff.
// -------------------------------------------------------------------

TEST(RetryTest, TransientEngineFailureRetriesAndSucceeds) {
  RetailWarehouse retail = SmallRetail();
  std::vector<int> sleeps;
  Warehouse warehouse(WarehouseOptions{}
                          .WithRetries(2)
                          .WithRetryBackoff(8, 64)
                          .WithRetryJitterSeed(123)
                          .WithRetrySleeper(
                              [&sleeps](int ms) { sleeps.push_back(ms); }));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  MD_ASSERT_OK(
      Failpoints::Arm("engine.apply.commit", Failpoints::Action::kError));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)})));
  EXPECT_EQ(warehouse.ingest_stats().retries, 1u);
  EXPECT_EQ(warehouse.ingest_stats().accepted, 1u);
  ASSERT_EQ(sleeps.size(), 1u);
  // First retry backs off at most base_delay_ms, at least half of it.
  EXPECT_GE(sleeps[0], 4);
  EXPECT_LE(sleeps[0], 8);
  Failpoints::DisarmAll();
}

TEST(RetryTest, BackoffScheduleIsDeterministicForAGivenSeed) {
  auto record_schedule = [](std::vector<int>* sleeps) {
    RetailWarehouse retail = SmallRetail();
    Warehouse warehouse(
        WarehouseOptions{}
            .WithRetries(3)
            .WithRetryBackoff(16, 1000)
            .WithRetryJitterSeed(777)
            .WithRetrySleeper([sleeps](int ms) { sleeps->push_back(ms); }));
    MD_CHECK(warehouse.AddViewSql(retail.catalog, kMonthlySql).ok());
    // Each armed site fires once then disarms, so two sites fail the
    // first two attempts; the third succeeds within the budget of 3.
    MD_CHECK(Failpoints::Arm("engine.apply.commit",
                             Failpoints::Action::kError)
                 .ok());
    MD_CHECK(Failpoints::Arm("warehouse.apply.before_ack",
                             Failpoints::Action::kError)
                 .ok());
    Status s =
        warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)}));
    MD_CHECK(s.ok());
  };
  std::vector<int> first, second;
  record_schedule(&first);
  Failpoints::DisarmAll();
  record_schedule(&second);
  Failpoints::DisarmAll();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first, second);
}

TEST(RetryTest, WalAppendFailureRetriesWithoutDuplicateRecords) {
  const std::string dir = FreshDir("mindetail_retry_wal");
  RetailWarehouse retail = SmallRetail();
  std::vector<int> sleeps;
  MD_ASSERT_OK_AND_ASSIGN(
      Warehouse warehouse,
      Warehouse::Open(dir, WarehouseOptions{}.WithRetries(2).WithRetrySleeper(
                               [&sleeps](int ms) { sleeps.push_back(ms); })));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  MD_ASSERT_OK(Failpoints::Arm("wal.append.before_sync",
                               Failpoints::Action::kError));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)})));
  EXPECT_EQ(warehouse.ingest_stats().retries, 1u);
  EXPECT_EQ(warehouse.last_sequence(), 1u);
  // The failed first attempt was truncated away: exactly one record.
  MD_ASSERT_OK_AND_ASSIGN(
      std::vector<WriteAheadLog::Record> records,
      WriteAheadLog::ReadAll(dir + "/" + kWalFile));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, 1u);
  Failpoints::DisarmAll();
  std::filesystem::remove_all(dir);
}

TEST(RetryTest, ExhaustedBudgetFailsAndQuarantines) {
  const std::string dir = FreshDir("mindetail_retry_exhausted");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(
      Warehouse warehouse,
      Warehouse::Open(dir, WarehouseOptions{}.WithRetries(1).WithRetrySleeper(
                               [](int) {})));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  // Two different sites so both the first attempt and its single retry
  // fail (each armed site fires once, then disarms).
  MD_ASSERT_OK(
      Failpoints::Arm("engine.apply.commit", Failpoints::Action::kError));
  MD_ASSERT_OK(Failpoints::Arm("warehouse.apply.before_ack",
                               Failpoints::Action::kError));
  const std::map<std::string, Delta> batch =
      SaleInserts({FreshSale(900001)});
  const Status status = warehouse.ApplyTransaction(batch, "batch-x");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(warehouse.ingest_stats().retries, 1u);
  EXPECT_EQ(warehouse.ingest_stats().failed, 1u);
  EXPECT_EQ(warehouse.ingest_stats().quarantined, 1u);

  MD_ASSERT_OK_AND_ASSIGN(std::vector<QuarantineLog::Entry> entries,
                          warehouse.QuarantineEntries());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].code, StatusCode::kInternal);
  EXPECT_EQ(entries[0].key, "batch-x");

  // Both sites disarmed themselves; the operator retry now lands.
  MD_ASSERT_OK(warehouse.QuarantineRetry(entries[0].id));
  MD_ASSERT_OK_AND_ASSIGN(entries, warehouse.QuarantineEntries());
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(warehouse.ingest_stats().accepted, 1u);
  Failpoints::DisarmAll();
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Quarantine.
// -------------------------------------------------------------------

TEST(QuarantineTest, RejectedBatchIsQuarantinedOnceAndDroppable) {
  const std::string dir = FreshDir("mindetail_quarantine_basic");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));

  const std::map<std::string, Delta> bad =
      SaleInserts({FreshSale(900001, /*timeid=*/9999)});
  EXPECT_FALSE(warehouse.ApplyTransaction(bad).ok());
  // The identical resend is rejected again but quarantined only once
  // (the content-hash key dedupes the entry).
  EXPECT_FALSE(warehouse.ApplyTransaction(bad).ok());
  EXPECT_EQ(warehouse.ingest_stats().rejected, 2u);
  EXPECT_EQ(warehouse.ingest_stats().quarantined, 1u);

  MD_ASSERT_OK_AND_ASSIGN(std::vector<QuarantineLog::Entry> entries,
                          warehouse.QuarantineEntries());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].code, StatusCode::kInvalidArgument);
  ASSERT_EQ(entries[0].changes.count("sale"), 1u);
  EXPECT_EQ(entries[0].changes.at("sale").inserts.size(), 1u);

  MD_ASSERT_OK(warehouse.QuarantineDrop(entries[0].id));
  MD_ASSERT_OK_AND_ASSIGN(entries, warehouse.QuarantineEntries());
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(warehouse.QuarantineDrop(12345).code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(QuarantineTest, EntriesSurviveReopen) {
  const std::string dir = FreshDir("mindetail_quarantine_reopen");
  RetailWarehouse retail = SmallRetail();
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
    EXPECT_FALSE(warehouse
                     .ApplyTransaction(
                         SaleInserts({FreshSale(900001, /*timeid=*/9999)}))
                     .ok());
  }
  MD_ASSERT_OK_AND_ASSIGN(Warehouse reopened, Warehouse::Open(dir));
  MD_ASSERT_OK_AND_ASSIGN(std::vector<QuarantineLog::Entry> entries,
                          reopened.QuarantineEntries());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].code, StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

// The dead-letter log is bounded: when the entry cap would be
// exceeded, the oldest entries rotate out so a poison source cannot
// grow the log without bound — and the ids of survivors are stable.
TEST(QuarantineTest, EntryCapRotatesOldestFirst) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mindetail_quar_caps")
          .string();
  std::filesystem::remove(path);
  QuarantineLog::Options options;
  options.max_entries = 3;
  MD_ASSERT_OK_AND_ASSIGN(QuarantineLog log,
                          QuarantineLog::Open(path, options));
  std::map<std::string, Delta> changes;
  Delta delta;
  delta.inserts.push_back({Value(int64_t{1})});
  changes.emplace("sale", delta);
  for (int i = 1; i <= 5; ++i) {
    MD_ASSERT_OK(log.Append(StatusCode::kInvalidArgument,
                            "bad batch", StrCat("key-", i), changes)
                     .status());
  }
  EXPECT_EQ(log.num_entries(), 3u);
  MD_ASSERT_OK_AND_ASSIGN(std::vector<QuarantineLog::Entry> entries,
                          log.Entries());
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, "key-3");  // 1 and 2 rotated out.
  EXPECT_EQ(entries[2].key, "key-5");
  std::filesystem::remove(path);
}

// The byte cap likewise rotates oldest-first, but never refuses the
// newest entry — even one bigger than the whole cap is kept (the cap
// bounds growth; it must not discard fresh evidence).
TEST(QuarantineTest, ByteCapKeepsNewestEvenWhenOversized) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mindetail_quar_bytes")
          .string();
  std::filesystem::remove(path);
  QuarantineLog::Options options;
  options.max_bytes = 256;
  MD_ASSERT_OK_AND_ASSIGN(QuarantineLog log,
                          QuarantineLog::Open(path, options));
  std::map<std::string, Delta> big;
  Delta delta;
  delta.inserts.push_back({Value(std::string(512, 'x'))});
  big.emplace("sale", delta);
  MD_ASSERT_OK(
      log.Append(StatusCode::kInvalidArgument, "m", "a", big).status());
  EXPECT_EQ(log.num_entries(), 1u);
  MD_ASSERT_OK(
      log.Append(StatusCode::kInvalidArgument, "m", "b", big).status());
  // The first oversized entry rotated out to admit the second.
  EXPECT_EQ(log.num_entries(), 1u);
  MD_ASSERT_OK_AND_ASSIGN(std::vector<QuarantineLog::Entry> entries,
                          log.Entries());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "b");

  // A pre-existing over-cap log is rotated down at open, too.
  {
    QuarantineLog::Options uncapped;
    MD_ASSERT_OK_AND_ASSIGN(QuarantineLog grown,
                            QuarantineLog::Open(path, uncapped));
    MD_ASSERT_OK(grown.Append(StatusCode::kInvalidArgument, "m", "c", big)
                     .status());
    MD_ASSERT_OK(grown.Append(StatusCode::kInvalidArgument, "m", "d", big)
                     .status());
    EXPECT_EQ(grown.num_entries(), 3u);
  }
  MD_ASSERT_OK_AND_ASSIGN(QuarantineLog reopened,
                          QuarantineLog::Open(path, options));
  EXPECT_EQ(reopened.num_entries(), 1u);
  MD_ASSERT_OK_AND_ASSIGN(entries, reopened.Entries());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "d");
  std::filesystem::remove(path);
}

// The warehouse plumbs its quarantine caps through: a stream of
// distinct bad batches stops growing the dead-letter log at the cap.
TEST(QuarantineTest, WarehouseHonorsQuarantineCaps) {
  const std::string dir = FreshDir("mindetail_quarantine_capped");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(
      Warehouse warehouse,
      Warehouse::Open(dir, WarehouseOptions{}.WithQuarantineCaps(
                               /*max_entries=*/2, /*max_bytes=*/0)));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(
        warehouse
            .ApplyTransaction(
                SaleInserts({FreshSale(900001 + i, /*timeid=*/9999)}))
            .ok());
  }
  EXPECT_EQ(warehouse.ingest_stats().quarantined, 4u);
  MD_ASSERT_OK_AND_ASSIGN(std::vector<QuarantineLog::Entry> entries,
                          warehouse.QuarantineEntries());
  EXPECT_EQ(entries.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(QuarantineTest, InMemoryWarehouseHasNoQuarantine) {
  Warehouse warehouse;
  EXPECT_EQ(warehouse.QuarantineEntries().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(warehouse.QuarantineRetry(1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(warehouse.QuarantineDrop(1).code(),
            StatusCode::kFailedPrecondition);
}

// -------------------------------------------------------------------
// Integrity scrubber.
// -------------------------------------------------------------------

// Rebuilds `view`'s engine from its own rendered state with `mutate`
// applied — simulating at-rest corruption of maintained state.
void TamperView(Warehouse& warehouse, const Catalog& schema_source,
                const std::string& view,
                const std::function<void(Table&)>& mutate_summary) {
  SelfMaintenanceEngine& engine = warehouse.mutable_engine(view);
  std::map<std::string, Table> aux;
  for (const AuxViewDef& def : engine.derivation().aux_views()) {
    if (def.eliminated) continue;
    aux.emplace(def.base_table, engine.AuxContents(def.base_table));
  }
  Result<Table> augmented = engine.RenderAugmentedSummary();
  MD_CHECK(augmented.ok());
  Table summary = std::move(augmented).value();
  mutate_summary(summary);
  Result<SelfMaintenanceEngine> tampered = SelfMaintenanceEngine::Restore(
      schema_source, engine.derivation().view(), engine.options(),
      std::move(aux), summary);
  MD_CHECK(tampered.ok());
  engine = std::move(tampered).value();
}

TEST(ScrubberTest, CleanWarehouseVerifiesClean) {
  RetailWarehouse retail = SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kPerStoreSql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)})));
  MD_ASSERT_OK_AND_ASSIGN(IntegrityReport report,
                          warehouse.VerifyIntegrity());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.views_checked, 2u);
  EXPECT_TRUE(warehouse.degraded_views().empty());
}

TEST(ScrubberTest, DetectsTamperedSummaryAndRepairRestores) {
  const std::string dir = FreshDir("mindetail_scrub_repair");
  RetailWarehouse retail = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  MD_ASSERT_OK(warehouse.ApplyTransaction(SaleInserts({FreshSale(900001)})));
  MD_ASSERT_OK_AND_ASSIGN(Table healthy, warehouse.View("monthly_sales"));

  // Corrupt the hidden running sum of the first group: the rendered
  // view diverges from what the auxiliary views reconstruct.
  TamperView(warehouse, retail.catalog, "monthly_sales", [](Table& summary) {
    const std::optional<size_t> idx =
        summary.schema().IndexOf("__sum_TotalPrice");
    MD_CHECK(idx.has_value());
    Table doctored(summary.name(), summary.schema());
    doctored.set_allow_null(true);
    for (size_t i = 0; i < summary.NumRows(); ++i) {
      Tuple row = summary.row(i);
      if (i == 0) row[*idx] = Value(row[*idx].NumericAsDouble() + 1000.0);
      MD_CHECK(doctored.Insert(std::move(row)).ok());
    }
    summary = std::move(doctored);
  });

  MD_ASSERT_OK_AND_ASSIGN(IntegrityReport report,
                          warehouse.VerifyIntegrity());
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.issues[0].view, "monthly_sales");
  EXPECT_NE(report.issues[0].problem.find("disagrees"), std::string::npos);
  EXPECT_EQ(warehouse.degraded_views().count("monthly_sales"), 1u);

  // Repair rebuilds from checkpoint + WAL replay and clears the mark.
  MD_ASSERT_OK(warehouse.RepairView("monthly_sales"));
  EXPECT_TRUE(warehouse.degraded_views().empty());
  MD_ASSERT_OK_AND_ASSIGN(IntegrityReport after,
                          warehouse.VerifyIntegrity());
  EXPECT_TRUE(after.clean());
  MD_ASSERT_OK_AND_ASSIGN(Table repaired, warehouse.View("monthly_sales"));
  EXPECT_TRUE(TablesExactlyEqual(healthy, repaired));
  std::filesystem::remove_all(dir);
}

TEST(ScrubberTest, CheckpointChecksumMismatchFailsOpen) {
  const std::string dir = FreshDir("mindetail_scrub_checksum");
  RetailWarehouse retail = SmallRetail();
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
    MD_ASSERT_OK(warehouse.ApplyTransaction(
        SaleInserts({FreshSale(900001)})));
    MD_ASSERT_OK(warehouse.Checkpoint());
  }
  // Flip one byte of the checkpointed summary: the manifest checksum no
  // longer matches, so recovery refuses to trust the state.
  std::string current;
  {
    std::ifstream in(dir + "/" + kCurrentFile);
    ASSERT_TRUE(static_cast<bool>(std::getline(in, current)));
  }
  const std::string summary_csv =
      dir + "/" + current + "/monthly_sales.summary.csv";
  {
    std::fstream f(summary_csv,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekg(static_cast<std::streamoff>(size) - 2);
    char byte = 0;
    f.read(&byte, 1);
    byte = (byte == '7') ? '8' : '7';
    f.seekp(static_cast<std::streamoff>(size) - 2);
    f.write(&byte, 1);
  }
  Result<Warehouse> reopened = Warehouse::Open(dir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInternal);
  EXPECT_NE(reopened.status().message().find("integrity"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Double-Open idempotence: recovering the same crash state twice gives
// bit-identical warehouses (WAL replay is repeatable).
// -------------------------------------------------------------------

std::map<std::string, Table> CaptureState(const Warehouse& warehouse) {
  std::map<std::string, Table> state;
  for (const std::string& name : warehouse.ViewNames()) {
    const SelfMaintenanceEngine& engine = warehouse.engine(name);
    Result<Table> view = warehouse.View(name);
    MD_CHECK(view.ok());
    state.emplace(name + "/view", std::move(view).value());
    Result<Table> augmented = engine.RenderAugmentedSummary();
    MD_CHECK(augmented.ok());
    state.emplace(name + "/summary", std::move(augmented).value());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      state.emplace(name + "/aux/" + aux.base_table,
                    engine.AuxContents(aux.base_table));
    }
  }
  return state;
}

TEST(RecoveryIdempotenceTest, DoubleOpenYieldsBitIdenticalState) {
  const std::string dir = FreshDir("mindetail_double_open");
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(source, kMonthlySql));
    MD_ASSERT_OK(warehouse.AddViewSql(source, kPerStoreSql));
    RetailDeltaGenerator gen(99);
    for (int i = 0; i < 5; ++i) {
      MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                              gen.MixedSaleBatch(source, 10, 4, 2));
      MD_ASSERT_OK(warehouse.Apply("sale", delta));
      MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
    }
    // No checkpoint: the whole tail recovers from the WAL, twice.
  }
  std::map<std::string, Table> first, second;
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered, Warehouse::Open(dir));
    EXPECT_EQ(recovered.recovery_stats().replayed_batches, 5u);
    first = CaptureState(recovered);
  }
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse recovered, Warehouse::Open(dir));
    EXPECT_EQ(recovered.recovery_stats().replayed_batches, 5u);
    second = CaptureState(recovered);
  }
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [key, table] : first) {
    auto it = second.find(key);
    ASSERT_NE(it, second.end()) << key;
    EXPECT_TRUE(TablesExactlyEqual(table, it->second)) << key;
  }
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Acceptance stress: a dirty stream (malformed, duplicated, replayed
// batches) must leave the warehouse bit-identical to a clean twin fed
// only the valid batches, with every bad batch accounted for.
// -------------------------------------------------------------------

TEST(IngestionStressTest, DirtyStreamMatchesCleanTwinExactly) {
  const std::string dir = FreshDir("mindetail_ingest_stress");
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  // The clean twin sees only the valid batches, over its own source.
  RetailWarehouse twin_retail = SmallRetail();

  MD_ASSERT_OK_AND_ASSIGN(Warehouse dirty, Warehouse::Open(dir));
  MD_ASSERT_OK(dirty.AddViewSql(source, kMonthlySql));
  MD_ASSERT_OK(dirty.AddViewSql(source, kPerStoreSql));
  Warehouse clean;
  MD_ASSERT_OK(clean.AddViewSql(twin_retail.catalog, kMonthlySql));
  MD_ASSERT_OK(clean.AddViewSql(twin_retail.catalog, kPerStoreSql));

  RetailDeltaGenerator gen(2026);
  std::map<std::string, Delta> last_valid;
  uint64_t valid = 0, malformed = 0, resent = 0;
  int64_t bad_id = 800000;

  constexpr int kBatches = 200;
  for (int i = 1; i <= kBatches; ++i) {
    if (i % 10 == 3 && !last_valid.empty()) {
      // Replay: resend the previous valid batch verbatim (10%).
      MD_ASSERT_OK(dirty.ApplyTransaction(last_valid));
      ++resent;
      continue;
    }
    if (i % 10 == 7) {
      // Malformed (10%), rotating through failure modes.
      std::map<std::string, Delta> bad;
      Delta delta;
      switch ((i / 10) % 3) {
        case 0:  // Dangling foreign key.
          delta.inserts.push_back(FreshSale(++bad_id, /*timeid=*/9999));
          break;
        case 1:  // Delete of a row that does not exist.
          delta.deletes.push_back(FreshSale(++bad_id));
          break;
        default:  // Wrong arity.
          delta.inserts.push_back({Value(++bad_id), Value(9.5)});
          break;
      }
      bad.emplace("sale", std::move(delta));
      EXPECT_FALSE(dirty.ApplyTransaction(bad).ok());
      ++malformed;
      continue;
    }
    MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                            gen.MixedSaleBatch(source, 8, 3, 2));
    std::map<std::string, Delta> changes;
    changes.emplace("sale", delta);
    MD_ASSERT_OK(dirty.ApplyTransaction(changes));
    MD_ASSERT_OK(clean.ApplyTransaction(changes));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), delta));
    MD_ASSERT_OK(
        ApplyDelta(*twin_retail.catalog.MutableTable("sale"), delta));
    last_valid = std::move(changes);
    ++valid;

    if (i == kBatches / 2) MD_ASSERT_OK(dirty.Checkpoint());
  }

  // Every batch is accounted for.
  EXPECT_EQ(dirty.ingest_stats().accepted, valid);
  EXPECT_EQ(dirty.ingest_stats().duplicates, resent);
  EXPECT_EQ(dirty.ingest_stats().rejected, malformed);
  EXPECT_EQ(dirty.last_sequence(), valid);
  MD_ASSERT_OK_AND_ASSIGN(std::vector<QuarantineLog::Entry> entries,
                          dirty.QuarantineEntries());
  EXPECT_EQ(entries.size(), malformed);

  // The dirty warehouse is bit-identical to the clean twin.
  std::map<std::string, Table> dirty_state = CaptureState(dirty);
  std::map<std::string, Table> clean_state = CaptureState(clean);
  ASSERT_EQ(dirty_state.size(), clean_state.size());
  for (const auto& [key, table] : clean_state) {
    auto it = dirty_state.find(key);
    ASSERT_NE(it, dirty_state.end()) << key;
    EXPECT_TRUE(TablesExactlyEqual(table, it->second)) << key;
  }
  // And the scrubber agrees it is healthy.
  MD_ASSERT_OK_AND_ASSIGN(IntegrityReport report, dirty.VerifyIntegrity());
  EXPECT_TRUE(report.clean());
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Sharded admission control: with a thread pool, per-table checks run
// concurrently but must report byte-identically to the serial
// validator. TSan-checked via this file's `concurrency` label.
// -------------------------------------------------------------------

class ShardedValidationTest : public ::testing::Test {
 protected:
  ShardedValidationTest() : retail_(SmallRetail()), pool_(4) {
    for (const std::string& name : retail_.catalog.TableNames()) {
      const Table* table = retail_.catalog.GetTable(name).value();
      ledger_.Track(name, *table->key_index(), *table);
    }
  }

  // The serial validator is the spec: same status code, same message.
  void ExpectIdentical(const std::map<std::string, Delta>& changes) {
    const Status serial =
        ValidateBatch(retail_.catalog, ledger_, changes, nullptr);
    const Status pooled =
        ValidateBatch(retail_.catalog, ledger_, changes, &pool_);
    EXPECT_EQ(serial.ToString(), pooled.ToString());
  }

  RetailWarehouse retail_;
  KeyLedger ledger_;
  ThreadPool pool_;
};

TEST_F(ShardedValidationTest, AcceptsAValidWideTransaction) {
  std::map<std::string, Delta> changes;
  changes["sale"].inserts.push_back(FreshSale(900001));
  changes["store"].inserts.push_back({Value(int64_t{900001}),
                                      Value("1 New St"),
                                      Value("Springfield"), Value("US"),
                                      Value("Kim")});
  changes["product"].inserts.push_back(
      {Value(int64_t{900001}), Value("Acme"), Value("toys")});
  MD_EXPECT_OK(ValidateBatch(retail_.catalog, ledger_, changes, &pool_));
  ExpectIdentical(changes);
}

TEST_F(ShardedValidationTest, FirstFailingTableInMapOrderWins) {
  // Three independently invalid tables; map order makes "product" the
  // canonical error regardless of which shard finishes first.
  std::map<std::string, Delta> changes;
  changes["product"].inserts.push_back(
      {Value(int64_t{1}), Value("Acme"), Value("toys")});  // Duplicate key.
  changes["sale"].deletes.push_back(FreshSale(987654321));  // Missing row.
  changes["store"].inserts.push_back({Value(int64_t{900001})});  // Arity.
  const Status pooled =
      ValidateBatch(retail_.catalog, ledger_, changes, &pool_);
  EXPECT_FALSE(pooled.ok());
  EXPECT_NE(pooled.message().find("product"), std::string::npos)
      << pooled.message();
  ExpectIdentical(changes);
}

TEST_F(ShardedValidationTest, CrossTableIntegrityStillChecked) {
  // The RI pass runs after the sharded per-table checks: a sale row
  // referencing a store deleted by the same wide batch must fail the
  // same way serially and pooled.
  const Table* store = retail_.catalog.GetTable("store").value();
  std::map<std::string, Delta> changes;
  changes["sale"].inserts.push_back(FreshSale(900001));
  changes["store"].deletes.push_back(store->rows().front());
  const Status pooled =
      ValidateBatch(retail_.catalog, ledger_, changes, &pool_);
  EXPECT_FALSE(pooled.ok());
  ExpectIdentical(changes);
}

TEST_F(ShardedValidationTest, WarehouseRejectsIdenticallyAtAnyWidth) {
  std::map<std::string, Delta> bad;
  bad["sale"].deletes.push_back(FreshSale(987654321));
  bad["store"].inserts.push_back({Value(int64_t{900001})});
  std::string messages[2];
  int i = 0;
  for (int parallelism : {1, 4}) {
    RetailWarehouse retail = SmallRetail();
    Warehouse warehouse(WarehouseOptions{}.WithParallelism(parallelism));
    MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
    MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kPerStoreSql));
    const Status status = warehouse.ApplyTransaction(bad);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(warehouse.ingest_stats().rejected, 1u);
    messages[i++] = status.ToString();
  }
  EXPECT_EQ(messages[0], messages[1]);
}

}  // namespace
}  // namespace mindetail
