#include "relational/catalog.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

Catalog TwoTables() {
  Catalog catalog;
  MD_CHECK(catalog
               .CreateTable("dim",
                            Schema({{"id", ValueType::kInt64},
                                    {"g", ValueType::kString}}),
                            "id")
               .ok());
  MD_CHECK(catalog
               .CreateTable("fact",
                            Schema({{"id", ValueType::kInt64},
                                    {"dimid", ValueType::kInt64},
                                    {"v", ValueType::kDouble}}),
                            "id")
               .ok());
  return catalog;
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog catalog = TwoTables();
  EXPECT_TRUE(catalog.HasTable("fact"));
  EXPECT_FALSE(catalog.HasTable("nope"));
  MD_ASSERT_OK_AND_ASSIGN(const Table* fact, catalog.GetTable("fact"));
  EXPECT_EQ(fact->schema().size(), 3u);
  EXPECT_EQ(catalog.TableNames(),
            (std::vector<std::string>{"dim", "fact"}));
  MD_ASSERT_OK_AND_ASSIGN(std::string key, catalog.KeyAttr("dim"));
  EXPECT_EQ(key, "id");
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog = TwoTables();
  Status status = catalog.CreateTable(
      "dim", Schema({{"id", ValueType::kInt64}}), "id");
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MissingTableErrors) {
  Catalog catalog = TwoTables();
  EXPECT_EQ(catalog.GetTable("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.MutableTable("x").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.SetExposedUpdates("x", true).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog = TwoTables();
  MD_ASSERT_OK(catalog.AddForeignKey("fact", "dimid", "dim"));
  EXPECT_TRUE(catalog.HasForeignKey("fact", "dimid", "dim"));
  EXPECT_FALSE(catalog.HasForeignKey("fact", "v", "dim"));
  // Unknown attribute.
  EXPECT_EQ(catalog.AddForeignKey("fact", "nope", "dim").code(),
            StatusCode::kNotFound);
  // Type mismatch: v is DOUBLE, dim key is INT64.
  EXPECT_EQ(catalog.AddForeignKey("fact", "v", "dim").code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, ExposedUpdatesFlag) {
  Catalog catalog = TwoTables();
  EXPECT_FALSE(catalog.HasExposedUpdates("dim"));
  MD_ASSERT_OK(catalog.SetExposedUpdates("dim", true));
  EXPECT_TRUE(catalog.HasExposedUpdates("dim"));
  MD_ASSERT_OK(catalog.SetExposedUpdates("dim", false));
  EXPECT_FALSE(catalog.HasExposedUpdates("dim"));
}

TEST(CatalogTest, ReferentialIntegrityCheck) {
  Catalog catalog = TwoTables();
  MD_ASSERT_OK(catalog.AddForeignKey("fact", "dimid", "dim"));
  Table* dim = *catalog.MutableTable("dim");
  MD_ASSERT_OK(dim->Insert({Value(1), Value("a")}));
  Table* fact = *catalog.MutableTable("fact");
  MD_ASSERT_OK(fact->Insert({Value(10), Value(1), Value(0.5)}));
  MD_EXPECT_OK(catalog.CheckReferentialIntegrity());

  MD_ASSERT_OK(fact->Insert({Value(11), Value(2), Value(0.5)}));
  Status status = catalog.CheckReferentialIntegrity();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(CatalogTest, CopyIsDeep) {
  Catalog catalog = TwoTables();
  Table* dim = *catalog.MutableTable("dim");
  MD_ASSERT_OK(dim->Insert({Value(1), Value("a")}));
  Catalog copy = catalog;
  Table* copy_dim = *copy.MutableTable("dim");
  MD_ASSERT_OK(copy_dim->Insert({Value(2), Value("b")}));
  EXPECT_EQ((*catalog.GetTable("dim"))->NumRows(), 1u);
  EXPECT_EQ((*copy.GetTable("dim"))->NumRows(), 2u);
}

}  // namespace
}  // namespace mindetail
