// The network front end, end to end: HTTP parsing (incl. seeded
// fuzzing), the per-client rate limiter, wire encodings, Prometheus
// exposition, loopback integration over real sockets, the
// Idempotency-Key contract across a restart, the status→HTTP error
// matrix, no-trace guarantees for cancelled requests, and the SSE
// change-feed differential: streamed deltas must be bit-identical to
// diffs computed independently from the committed snapshots.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "maintenance/warehouse.h"
#include "net/change_feed.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/metrics.h"
#include "net/rate_limiter.h"
#include "net/server.h"
#include "net/wire.h"
#include "test_util.h"
#include "workload/zipf.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::TablesApproxEqual;

constexpr char kViewSql[] =
    "CREATE VIEW v AS SELECT time.month, SUM(sale.price) AS Total, "
    "COUNT(*) AS Cnt FROM sale, time WHERE sale.timeid = time.id "
    "GROUP BY time.month";

// A warehouse over the tiny paper fixture with one registered view.
Warehouse FixtureWarehouse(WarehouseOptions options = WarehouseOptions{}) {
  Warehouse warehouse(std::move(options));
  const Catalog source = PaperTable3Fixture();
  MD_CHECK(warehouse.AddViewSql(source, kViewSql).ok());
  return warehouse;
}

// ---------------------------------------------------------------------
// HTTP parser

TEST(HttpParserTest, ParsesGetWithQuery) {
  HttpRequestParser parser;
  MD_ASSERT_OK(parser.Consume(
      "GET /changes?from=3&poll=1 HTTP/1.1\r\nHost: x\r\n"
      "X-Client-Id: alice\r\n\r\n"));
  ASSERT_TRUE(parser.done());
  HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/changes");
  EXPECT_EQ(request.query.at("from"), "3");
  EXPECT_EQ(request.query.at("poll"), "1");
  EXPECT_EQ(request.Header("x-client-id"), "alice");
  EXPECT_TRUE(request.KeepAlive());
}

TEST(HttpParserTest, ParsesPostBodyAcrossChunks) {
  HttpRequestParser parser;
  const std::string raw =
      "POST /ingest HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  // Feed byte by byte: the parser must accumulate incrementally.
  for (const char c : raw) {
    MD_ASSERT_OK(parser.Consume(std::string_view(&c, 1)));
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.TakeRequest().body, "hello world");
}

TEST(HttpParserTest, PipelinedRequestsCarryOver) {
  HttpRequestParser parser;
  MD_ASSERT_OK(parser.Consume(
      "GET /report HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.TakeRequest().path, "/report");
  parser.Reset();
  ASSERT_TRUE(parser.done());  // Second request was already buffered.
  EXPECT_EQ(parser.TakeRequest().path, "/metrics");
  parser.Reset();
  EXPECT_TRUE(parser.at_message_boundary());
}

TEST(HttpParserTest, RejectsMalformedInputs) {
  struct Case {
    const char* raw;
    int code;
  };
  const Case cases[] = {
      {"GARBAGE\r\n\r\n", 400},
      {"GET /x HTTP/2.0\r\n\r\n", 400},
      {"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 400},
      {"GET /x HTTP/1.1\r\nContent-Length: 9x\r\n\r\n", 400},
      {"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"GET relative HTTP/1.1\r\n\r\n", 400},
      {"GET /%zz HTTP/1.1\r\n\r\n", 400},
  };
  for (const Case& c : cases) {
    HttpRequestParser parser;
    (void)parser.Consume(c.raw);
    EXPECT_FALSE(parser.status().ok()) << c.raw;
    EXPECT_EQ(parser.error_code(), c.code) << c.raw;
  }
}

TEST(HttpParserTest, EnforcesLimitsBeforeBuffering) {
  HttpParserLimits limits;
  limits.max_body_bytes = 16;
  limits.max_headers = 2;
  limits.max_header_bytes = 256;
  {
    HttpRequestParser parser(limits);
    (void)parser.Consume("POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
    EXPECT_EQ(parser.error_code(), 413);
  }
  {
    HttpRequestParser parser(limits);
    (void)parser.Consume("GET /x HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n");
    EXPECT_EQ(parser.error_code(), 431);
  }
  {
    // An endless unterminated header line must fail without a newline.
    HttpRequestParser parser(limits);
    (void)parser.Consume("GET /x HTTP/1.1\r\n");
    const std::string torrent(300, 'a');
    (void)parser.Consume(torrent);
    EXPECT_EQ(parser.error_code(), 431);
  }
}

TEST(HttpParserTest, UrlDecodeRoundTrip) {
  MD_ASSERT_OK_AND_ASSIGN(std::string decoded,
                          UrlDecode("a%20b+c%2Fd%3d"));
  EXPECT_EQ(decoded, "a b c/d=");
  EXPECT_FALSE(UrlDecode("%2").ok());
  EXPECT_FALSE(UrlDecode("%gg").ok());
}

// Seeded mutation fuzzing: the parser must always terminate in done or
// error — never crash, never loop — regardless of input shape.
TEST(HttpParserTest, FuzzedInputsNeverCrash) {
  const std::string seed_request =
      "POST /ingest?x=1 HTTP/1.1\r\nHost: localhost\r\n"
      "Idempotency-Key: k-123\r\nContent-Length: 21\r\n\r\n"
      "table sale\n+ 7,1,1,5\n";
  Rng rng(20260809);
  for (int round = 0; round < 600; ++round) {
    std::string mutated = seed_request;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(8));
    for (int m = 0; m < mutations; ++m) {
      const uint64_t pick = rng.NextBelow(4);
      const size_t pos =
          mutated.empty() ? 0 : rng.NextBelow(mutated.size());
      if (pick == 0 && !mutated.empty()) {
        mutated[pos] = static_cast<char>(rng.NextBelow(256));
      } else if (pick == 1 && !mutated.empty()) {
        mutated.erase(pos, 1 + rng.NextBelow(5));
      } else if (pick == 2) {
        mutated.insert(pos, 1 + rng.NextBelow(5),
                       static_cast<char>(rng.NextBelow(256)));
      } else {
        mutated = mutated.substr(0, pos);
      }
    }
    HttpParserLimits limits;
    limits.max_body_bytes = 4096;
    HttpRequestParser parser(limits);
    // Feed in random-sized chunks.
    size_t offset = 0;
    while (offset < mutated.size() && !parser.done() &&
           parser.status().ok()) {
      const size_t chunk = std::min<size_t>(1 + rng.NextBelow(17),
                                            mutated.size() - offset);
      (void)parser.Consume(std::string_view(mutated).substr(offset, chunk));
      offset += chunk;
    }
    if (!parser.status().ok()) {
      EXPECT_NE(parser.error_code(), 0);
    } else if (parser.done()) {
      (void)parser.TakeRequest();
    }
  }
}

// ---------------------------------------------------------------------
// Rate limiter

TEST(RateLimiterTest, RefusalMatrixWithFakeClock) {
  int64_t now = 0;
  RateLimiterOptions options;
  options.capacity = 2;
  options.refill_per_sec = 1.0;  // One token a second.
  options.clock = [&now] { return now; };
  RateLimiter limiter(options);

  EXPECT_TRUE(limiter.Admit("alice").admitted);
  EXPECT_TRUE(limiter.Admit("alice").admitted);
  const RateDecision refused = limiter.Admit("alice");
  EXPECT_FALSE(refused.admitted);
  // The bucket is empty: a whole token is 1 second = 1000 ms away.
  EXPECT_EQ(refused.retry_after_ms, 1000);
  // An independent client is unaffected.
  EXPECT_TRUE(limiter.Admit("bob").admitted);
  // Half a second refills half a token — still refused, hint shrinks.
  now += 500'000'000;
  const RateDecision half = limiter.Admit("alice");
  EXPECT_FALSE(half.admitted);
  EXPECT_EQ(half.retry_after_ms, 500);
  // Honoring the hint admits exactly on time.
  now += 500'000'000;
  EXPECT_TRUE(limiter.Admit("alice").admitted);
  const RateLimiter::Stats stats = limiter.stats();
  EXPECT_EQ(stats.refused, 2u);
  EXPECT_EQ(stats.admitted, 4u);
}

TEST(RateLimiterTest, DisabledAdmitsEverything) {
  RateLimiter limiter(RateLimiterOptions{});  // capacity 0.
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.Admit("anyone").admitted);
  }
}

TEST(RateLimiterTest, ClientTableIsBounded) {
  int64_t now = 0;
  RateLimiterOptions options;
  options.capacity = 1;
  options.refill_per_sec = 0.001;
  options.max_clients = 4;
  options.clock = [&now] { return now; };
  RateLimiter limiter(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.Admit(StrCat("client-", i)).admitted);
  }
  const RateLimiter::Stats stats = limiter.stats();
  EXPECT_LE(stats.clients, 4u);
  EXPECT_EQ(stats.evicted, 96u);
}

// Under BurstyZipfStream's hot-client skew, the hot client must absorb
// the refusals while cold clients stay mostly admitted.
TEST(RateLimiterTest, HotClientAbsorbsRefusals) {
  int64_t now = 0;
  RateLimiterOptions options;
  options.capacity = 3;
  options.refill_per_sec = 5.0;
  options.clock = [&now] { return now; };
  RateLimiter limiter(options);

  BurstyZipfParams params;
  params.num_items = 16;
  params.exponent = 1.4;
  params.seed = 99;
  BurstyZipfStream stream(params);
  std::vector<uint64_t> sent(16, 0), refused(16, 0);
  for (int i = 0; i < 2000; ++i) {
    const size_t client = stream.Next();
    ++sent[client];
    if (!limiter.Admit(StrCat("client-", client)).admitted) {
      ++refused[client];
    }
    now += 40'000'000;  // 40 ms between requests: 25 req/s aggregate.
  }
  const size_t hottest =
      std::max_element(sent.begin(), sent.end()) - sent.begin();
  EXPECT_GT(refused[hottest], 0u);
  // Refusals concentrate on the hot identity (bursts hammer the Zipf
  // head), while the aggregate stream stays mostly admitted — the
  // per-client buckets never turn one noisy identity into collective
  // punishment.
  const uint64_t total_refused =
      std::accumulate(refused.begin(), refused.end(), uint64_t{0});
  EXPECT_GT(refused[hottest] * 3, total_refused);
  EXPECT_LT(total_refused * 2, 2000u);  // Most requests admitted.
}

// ---------------------------------------------------------------------
// Wire encodings

TEST(WireTest, CsvRowRoundTripIsInjective) {
  const Schema schema({{"id", ValueType::kInt64},
                       {"price", ValueType::kDouble},
                       {"name", ValueType::kString}});
  const std::vector<Tuple> rows = {
      {Value(1), Value(9.95), Value("plain")},
      {Value(2), Value(0.1), Value("comma, quoted")},
      {Value(3), Value(1e-9), Value("quote \" inside")},
      {Value(4), Value(-2.5), Value("new\nline")},
      {Value(5), Value(3.0), Value("back\\slash and \\n literal")},
      {Value(6), Value(4.0), Value("")},
  };
  std::set<std::string> rendered;
  for (const Tuple& row : rows) {
    const std::string line = RenderCsvRow(row);
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    EXPECT_TRUE(rendered.insert(line).second) << line;
    MD_ASSERT_OK_AND_ASSIGN(Tuple parsed, ParseCsvRow(line, schema));
    ASSERT_EQ(parsed.size(), row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(parsed[i], row[i]) << line;
    }
  }
}

TEST(WireTest, ParseCsvRowRejectsMismatches) {
  const Schema schema(
      {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  EXPECT_FALSE(ParseCsvRow("1", schema).ok());            // Arity.
  EXPECT_FALSE(ParseCsvRow("x,\"a\"", schema).ok());      // Type.
  EXPECT_FALSE(ParseCsvRow("1,bare", schema).ok());       // Unquoted str.
  EXPECT_FALSE(ParseCsvRow("\"a\",\"b\"", schema).ok());  // Quoted int.
  EXPECT_FALSE(ParseCsvRow("1,\"open", schema).ok());     // Quoting.
  EXPECT_FALSE(ParseCsvRow("1,", schema).ok());  // NULL, NULL-free row.
}

TEST(WireTest, IngestBodyParsesAllChangeKinds) {
  const Catalog catalog = PaperTable3Fixture();
  const std::string body =
      "# a comment\n"
      "table sale\n"
      "+ 7,1,1,40\n"
      "- 6,2,2,30\n"
      "< 1,1,1,10\n"
      "> 1,1,1,15\n"
      "\n"
      "table product\n"
      "+ 3,\"Gamma\"\n";
  MD_ASSERT_OK_AND_ASSIGN(auto changes, ParseIngestBody(body, catalog));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes.at("sale").inserts.size(), 1u);
  EXPECT_EQ(changes.at("sale").deletes.size(), 1u);
  ASSERT_EQ(changes.at("sale").updates.size(), 1u);
  EXPECT_EQ(changes.at("sale").updates[0].after[3], Value(15));
  EXPECT_EQ(changes.at("product").inserts[0][1], Value("Gamma"));
}

TEST(WireTest, IngestBodyRejectsMalformedBatches) {
  const Catalog catalog = PaperTable3Fixture();
  EXPECT_FALSE(ParseIngestBody("", catalog).ok());
  EXPECT_FALSE(ParseIngestBody("+ 1,2,3,4\n", catalog).ok());
  EXPECT_FALSE(ParseIngestBody("table nope\n+ 1\n", catalog).ok());
  EXPECT_FALSE(ParseIngestBody("table sale\n+ 1,2\n", catalog).ok());
  EXPECT_FALSE(ParseIngestBody("table sale\n< 1,1,1,10\n", catalog).ok());
  EXPECT_FALSE(
      ParseIngestBody("table sale\n> 1,1,1,10\n", catalog).ok());
  EXPECT_FALSE(
      ParseIngestBody("table sale\n< 1,1,1,10\n+ 2,1,1,5\n", catalog)
          .ok());
  EXPECT_FALSE(ParseIngestBody("table sale\njunk line\n", catalog).ok());
}

// ---------------------------------------------------------------------
// Prometheus exposition

// A small validator for the Prometheus text format: every non-comment
// line is `name[{labels}] value`, every samples' family has a # TYPE,
// histogram buckets are cumulative with le="+Inf" == _count.
void ValidatePrometheusText(const std::string& text) {
  std::set<std::string> typed;
  std::map<std::string, uint64_t> inf_buckets;
  std::map<std::string, uint64_t> counts;
  std::map<std::string, uint64_t> last_bucket;
  size_t samples = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t eol = text.find('\n', start);
    ASSERT_NE(eol, std::string::npos) << "unterminated final line";
    const std::string line = text.substr(start, eol - start);
    start = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream in(line);
      std::string hash, kind, name;
      in >> hash >> kind >> name;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      if (kind == "TYPE") typed.insert(name);
      continue;
    }
    // name{...} value  |  name value
    const size_t brace = line.find('{');
    const size_t space = line.find_last_of(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(
        0, brace == std::string::npos ? line.find(' ') : brace);
    ASSERT_FALSE(name.empty()) << line;
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
          << line;
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0' &&
                (value == "+Inf" || end != value.c_str()))
        << line;
    ++samples;
    // The family of histogram series is the base name.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t at = name.rfind(suffix);
      if (at != std::string::npos &&
          at + std::strlen(suffix) == name.size() &&
          typed.count(name.substr(0, at))) {
        family = name.substr(0, at);
      }
    }
    EXPECT_TRUE(typed.count(family) || typed.count(name)) << line;
    if (name.size() > 7 && name.rfind("_bucket") == name.size() - 7) {
      const uint64_t v = std::strtoull(value.c_str(), nullptr, 10);
      const std::string base = name.substr(0, name.size() - 7);
      // Buckets are cumulative within a family (rendered in le order).
      EXPECT_GE(v, last_bucket[base]) << line;
      last_bucket[base] = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf_buckets[base] = v;
      }
    }
    if (name.size() > 6 && name.rfind("_count") == name.size() - 6) {
      counts[name.substr(0, name.size() - 6)] =
          std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  EXPECT_GT(samples, 0u);
  for (const auto& [base, count] : counts) {
    if (inf_buckets.count(base)) {
      EXPECT_EQ(inf_buckets[base], count) << base;
    }
  }
}

TEST(MetricsTest, RegistryRendersValidExposition) {
  MetricsRegistry registry;
  registry.Declare("demo_requests_total", "counter", "Requests.");
  registry.CounterAdd("demo_requests_total",
                      {{"endpoint", "/query"}, {"code", "200"}});
  registry.CounterAdd("demo_requests_total",
                      {{"endpoint", "/query"}, {"code", "200"}}, 2);
  registry.Declare("demo_gauge", "gauge", "A gauge.");
  registry.GaugeSet("demo_gauge", {}, 1.5);
  registry.DeclareHistogram("demo_latency_seconds", "Latency.",
                            {0.01, 0.1, 1.0});
  registry.Observe("demo_latency_seconds", 0.05);
  registry.Observe("demo_latency_seconds", 0.5);
  registry.Observe("demo_latency_seconds", 5.0);
  const std::string text = registry.RenderText();
  ValidatePrometheusText(text);
  EXPECT_NE(text.find("demo_requests_total{endpoint=\"/query\","
                      "code=\"200\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_latency_seconds_count 3"), std::string::npos);
  EXPECT_EQ(registry.CounterValue(
                "demo_requests_total",
                {{"endpoint", "/query"}, {"code", "200"}}),
            3.0);
}

TEST(MetricsTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.CounterAdd("m", {{"path", "a\"b\\c"}});
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("m{path=\"a\\\"b\\\\c\"} 1"), std::string::npos)
      << text;
}

// ---------------------------------------------------------------------
// Loopback integration

// A running warehouse + server on an ephemeral loopback port.
struct TestServer {
  explicit TestServer(Warehouse* warehouse,
                      HttpServerOptions options = HttpServerOptions{})
      : server(warehouse, std::move(options)) {
    MD_CHECK(server.Start().ok());
  }
  HttpServer server;
  int port() const { return server.port(); }
};

TEST(HttpServerTest, QueryReportExplainMetricsOverLoopback) {
  Warehouse warehouse = FixtureWarehouse();
  TestServer ts(&warehouse);

  // /query matches the library answer byte for byte.
  MD_ASSERT_OK_AND_ASSIGN(
      auto response,
      HttpFetch("127.0.0.1", ts.port(), "POST", "/query", {},
                "SELECT time.month, SUM(sale.price) AS Total FROM sale, "
                "time WHERE sale.timeid = time.id GROUP BY time.month"));
  EXPECT_EQ(response.code, 200);
  MD_ASSERT_OK_AND_ASSIGN(
      Table direct,
      warehouse.Query("SELECT time.month, SUM(sale.price) AS Total FROM "
                      "sale, time WHERE sale.timeid = time.id GROUP BY "
                      "time.month"));
  EXPECT_EQ(response.body, RenderTableBody(direct));
  EXPECT_NE(response.body.find("month,Total"), std::string::npos);

  MD_ASSERT_OK_AND_ASSIGN(
      auto explain,
      HttpFetch("127.0.0.1", ts.port(), "POST", "/explain", {},
                "SELECT time.month, SUM(sale.price) AS Total FROM sale, "
                "time WHERE sale.timeid = time.id GROUP BY time.month"));
  EXPECT_EQ(explain.code, 200);
  EXPECT_NE(explain.body.find("summary roll-up"), std::string::npos);

  MD_ASSERT_OK_AND_ASSIGN(
      auto report, HttpFetch("127.0.0.1", ts.port(), "GET", "/report"));
  EXPECT_EQ(report.code, 200);
  EXPECT_NE(report.body.find("Total current detail"), std::string::npos);

  MD_ASSERT_OK_AND_ASSIGN(
      auto metrics, HttpFetch("127.0.0.1", ts.port(), "GET", "/metrics"));
  EXPECT_EQ(metrics.code, 200);
  EXPECT_NE(metrics.Header("content-type").find("text/plain"),
            std::string::npos);
  ValidatePrometheusText(metrics.body);
  for (const char* required :
       {"mindetail_http_requests_total", "mindetail_ingest_latency_seconds",
        "mindetail_snapshot_age_seconds", "mindetail_cache_hit_rate",
        "mindetail_overload_shed_total", "mindetail_snapshot_version"}) {
    EXPECT_NE(metrics.body.find(required), std::string::npos) << required;
  }
}

TEST(HttpServerTest, RoutingAndKeepAlive) {
  Warehouse warehouse = FixtureWarehouse();
  TestServer ts(&warehouse);
  HttpConnection connection;
  MD_ASSERT_OK(connection.Connect("127.0.0.1", ts.port()));
  // Several requests reuse one keep-alive connection.
  MD_ASSERT_OK_AND_ASSIGN(auto miss,
                          connection.Request("GET", "/nowhere"));
  EXPECT_EQ(miss.code, 404);
  MD_ASSERT_OK_AND_ASSIGN(auto wrong,
                          connection.Request("GET", "/query"));
  EXPECT_EQ(wrong.code, 405);
  MD_ASSERT_OK_AND_ASSIGN(auto bad,
                          connection.Request("POST", "/query", {}, "SELEC"));
  EXPECT_EQ(bad.code, 400);
  MD_ASSERT_OK_AND_ASSIGN(
      auto not_answerable,
      connection.Request("POST", "/query", {},
                         "SELECT time.year, COUNT(*) AS C FROM sale, "
                         "time WHERE sale.timeid = time.id "
                         "GROUP BY time.year"));
  EXPECT_EQ(not_answerable.code, 404);  // No view can answer.
  EXPECT_TRUE(connection.connected());
  const HttpServer::Stats stats = ts.server.stats();
  EXPECT_EQ(stats.accepted, 1u);  // All four rode one connection.
  EXPECT_EQ(stats.requests, 4u);
}

TEST(HttpServerTest, MalformedRequestAnswersAndCloses) {
  Warehouse warehouse = FixtureWarehouse();
  TestServer ts(&warehouse);
  HttpConnection connection;
  MD_ASSERT_OK(connection.Connect("127.0.0.1", ts.port()));
  MD_ASSERT_OK_AND_ASSIGN(
      auto response,
      connection.Request("POST", "/query\r\nsmuggled: line", {}, ""));
  EXPECT_EQ(response.code, 400);
  EXPECT_EQ(ts.server.stats().malformed, 1u);
}

TEST(HttpServerTest, ConnectionTableIsBounded) {
  Warehouse warehouse = FixtureWarehouse();
  HttpServerOptions options;
  options.max_connections = 1;
  TestServer ts(&warehouse, options);
  HttpConnection first;
  MD_ASSERT_OK(first.Connect("127.0.0.1", ts.port()));
  MD_ASSERT_OK_AND_ASSIGN(auto ok, first.Request("GET", "/report"));
  EXPECT_EQ(ok.code, 200);
  // The table is full while `first` stays open: the next connection is
  // answered 503 and closed without dispatch.
  HttpConnection second;
  MD_ASSERT_OK(second.Connect("127.0.0.1", ts.port()));
  MD_ASSERT_OK_AND_ASSIGN(auto refused, second.Request("GET", "/report"));
  EXPECT_EQ(refused.code, 503);
  EXPECT_FALSE(refused.Header("retry-after").empty());
  EXPECT_GE(ts.server.stats().refused, 1u);
}

TEST(HttpServerTest, RateLimitRefusesWith429) {
  Warehouse warehouse = FixtureWarehouse();
  HttpServerOptions options;
  options.rate_limit.capacity = 2;
  options.rate_limit.refill_per_sec = 0.001;  // Effectively no refill.
  TestServer ts(&warehouse, options);
  const std::map<std::string, std::string> alice = {
      {"X-Client-Id", "alice"}};
  for (int i = 0; i < 2; ++i) {
    MD_ASSERT_OK_AND_ASSIGN(
        auto ok, HttpFetch("127.0.0.1", ts.port(), "GET", "/report", alice));
    EXPECT_EQ(ok.code, 200);
  }
  MD_ASSERT_OK_AND_ASSIGN(
      auto refused,
      HttpFetch("127.0.0.1", ts.port(), "GET", "/report", alice));
  EXPECT_EQ(refused.code, 429);
  EXPECT_FALSE(refused.Header("retry-after").empty());
  // A different identity is unaffected, and /metrics is never limited.
  MD_ASSERT_OK_AND_ASSIGN(
      auto bob, HttpFetch("127.0.0.1", ts.port(), "GET", "/report",
                          {{"X-Client-Id", "bob"}}));
  EXPECT_EQ(bob.code, 200);
  MD_ASSERT_OK_AND_ASSIGN(
      auto scrape,
      HttpFetch("127.0.0.1", ts.port(), "GET", "/metrics", alice));
  EXPECT_EQ(scrape.code, 200);
  EXPECT_EQ(ts.server.stats().rate_limited, 1u);
}

TEST(HttpServerTest, TransportAdmissionShedsWith503) {
  Warehouse warehouse = FixtureWarehouse();
  HttpServerOptions options;
  options.admission.max_inflight_batches = 1;
  // The hook blocks the first /query while it holds the only admission
  // slot, making the second request's shed deterministic.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> held{0};
  options.post_admission_hook = [&](const HttpRequest& request) {
    if (request.Header("x-test-hold") != "1") return;
    held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  TestServer ts(&warehouse, options);

  std::thread holder([&] {
    auto response = HttpFetch(
        "127.0.0.1", ts.port(), "POST", "/query", {{"X-Test-Hold", "1"}},
        "SELECT time.month, SUM(sale.price) AS Total FROM sale, time "
        "WHERE sale.timeid = time.id GROUP BY time.month");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ((*response).code, 200);
  });
  while (held.load() == 0) std::this_thread::yield();
  MD_ASSERT_OK_AND_ASSIGN(
      auto shed, HttpFetch("127.0.0.1", ts.port(), "POST", "/query", {},
                           "SELECT time.month, SUM(sale.price) AS Total "
                           "FROM sale, time WHERE sale.timeid = time.id "
                           "GROUP BY time.month"));
  EXPECT_EQ(shed.code, 503);
  EXPECT_FALSE(shed.Header("retry-after").empty());
  EXPECT_FALSE(shed.Header("retry-after-ms").empty());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  EXPECT_EQ(ts.server.stats().shed, 1u);
}

TEST(HttpServerTest, DeadlineHeaderMapsTo504) {
  Warehouse warehouse = FixtureWarehouse();
  HttpServerOptions options;
  // Let the deadline expire deterministically between admission and
  // the warehouse call.
  options.post_admission_hook = [](const HttpRequest& request) {
    if (!request.Header("x-deadline-ms").empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  };
  TestServer ts(&warehouse, options);
  MD_ASSERT_OK_AND_ASSIGN(
      auto response,
      HttpFetch("127.0.0.1", ts.port(), "POST", "/query",
                {{"X-Deadline-Ms", "5"}},
                "SELECT time.month, SUM(sale.price) AS Total FROM sale, "
                "time WHERE sale.timeid = time.id GROUP BY time.month"));
  EXPECT_EQ(response.code, 504);
  MD_ASSERT_OK_AND_ASSIGN(
      auto bad, HttpFetch("127.0.0.1", ts.port(), "POST", "/query",
                          {{"X-Deadline-Ms", "soon"}}, "SELECT 1"));
  EXPECT_EQ(bad.code, 400);
}

TEST(HttpServerTest, MemoryBudgetMapsTo413) {
  // Mirrors overload_test's budget fixture: the aux-join path must
  // materialize auxiliary inputs, which a 1-byte budget refuses.
  Warehouse warehouse(WarehouseOptions{}.WithQueryMemoryBudget(1));
  MD_ASSERT_OK(warehouse.AddViewSql(
      PaperTable3Fixture(),
      "CREATE VIEW by_time_brand AS SELECT time.id, product.brand, "
      "SUM(sale.price) AS Total, COUNT(*) AS Cnt FROM sale, time, "
      "product WHERE sale.timeid = time.id AND sale.productid = "
      "product.id GROUP BY time.id, product.brand"));
  TestServer ts(&warehouse);
  MD_ASSERT_OK_AND_ASSIGN(
      auto response,
      HttpFetch("127.0.0.1", ts.port(), "POST", "/query", {},
                "SELECT sale.productid, SUM(sale.price) AS T, "
                "COUNT(*) AS C FROM sale, time, product WHERE "
                "sale.timeid = time.id AND sale.productid = product.id "
                "GROUP BY sale.productid"));
  EXPECT_EQ(response.code, 413);
}

// ---------------------------------------------------------------------
// Ingest + idempotency

// The standard small insert against the paper fixture.
std::string InsertBody(int64_t id, int64_t price) {
  return StrCat("table sale\n+ ", id, ",1,1,", price, "\n");
}

TEST(HttpServerTest, IngestAppliesAndQueriesReflectIt) {
  Warehouse warehouse = FixtureWarehouse();
  TestServer ts(&warehouse);
  MD_ASSERT_OK_AND_ASSIGN(Table before, warehouse.View("v"));
  MD_ASSERT_OK_AND_ASSIGN(
      auto response, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                               {}, InsertBody(7, 40)));
  ASSERT_EQ(response.code, 200) << response.body;
  EXPECT_EQ(response.Header("x-duplicate"), "false");
  EXPECT_EQ(response.Header("x-sequence"), "1");
  MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.View("v"));
  EXPECT_FALSE(TablesApproxEqual(before, after));
  // A malformed batch is refused before the warehouse sees it.
  MD_ASSERT_OK_AND_ASSIGN(
      auto bad, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest", {},
                          "table sale\n+ 9,9\n"));
  EXPECT_EQ(bad.code, 400);
  EXPECT_EQ(warehouse.last_sequence(), 1u);
}

TEST(HttpServerTest, IdempotencyKeyAcksDuplicateWithOriginalSequence) {
  Warehouse warehouse = FixtureWarehouse();
  TestServer ts(&warehouse);
  const std::map<std::string, std::string> keyed = {
      {"Idempotency-Key", "batch-42"}};
  MD_ASSERT_OK_AND_ASSIGN(
      auto first, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                            keyed, InsertBody(7, 40)));
  ASSERT_EQ(first.code, 200) << first.body;
  EXPECT_EQ(first.Header("x-duplicate"), "false");
  const std::string original_sequence = first.Header("x-sequence");

  // Advance the warehouse so the duplicate's ack can't accidentally be
  // "the latest sequence".
  MD_ASSERT_OK_AND_ASSIGN(
      auto other, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                            {{"Idempotency-Key", "batch-43"}},
                            InsertBody(8, 10)));
  ASSERT_EQ(other.code, 200) << other.body;
  MD_ASSERT_OK_AND_ASSIGN(Table before, warehouse.View("v"));

  MD_ASSERT_OK_AND_ASSIGN(
      auto resend, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                             keyed, InsertBody(7, 40)));
  ASSERT_EQ(resend.code, 200) << resend.body;
  EXPECT_EQ(resend.Header("x-duplicate"), "true");
  EXPECT_EQ(resend.Header("x-sequence"), original_sequence);
  // The duplicate was a no-op: contents and sequence are untouched.
  MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.View("v"));
  EXPECT_TRUE(TablesApproxEqual(before, after));
  EXPECT_EQ(warehouse.last_sequence(), 2u);
}

TEST(HttpServerTest, HashIdempotencyCatchesKeylessResend) {
  Warehouse warehouse = FixtureWarehouse();
  TestServer ts(&warehouse);
  MD_ASSERT_OK_AND_ASSIGN(
      auto first, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest", {},
                            InsertBody(7, 40)));
  ASSERT_EQ(first.code, 200) << first.body;
  EXPECT_EQ(first.Header("x-duplicate"), "false");
  MD_ASSERT_OK_AND_ASSIGN(
      auto resend, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest", {},
                             InsertBody(7, 40)));
  ASSERT_EQ(resend.code, 200) << resend.body;
  EXPECT_EQ(resend.Header("x-duplicate"), "true");
  EXPECT_EQ(resend.Header("x-sequence"), first.Header("x-sequence"));
}

TEST(HttpServerTest, IdempotencySurvivesRestartWithOriginalSequence) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mindetail_net_idem")
          .string();
  std::filesystem::remove_all(dir);
  const Catalog source = PaperTable3Fixture();
  const std::map<std::string, std::string> keyed = {
      {"Idempotency-Key", "durable-7"}};
  std::string original_sequence;
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(source, kViewSql));
    TestServer ts(&warehouse);
    MD_ASSERT_OK_AND_ASSIGN(
        auto first, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                              keyed, InsertBody(7, 40)));
    ASSERT_EQ(first.code, 200) << first.body;
    original_sequence = first.Header("x-sequence");
    MD_ASSERT_OK_AND_ASSIGN(
        auto second, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                               {{"Idempotency-Key", "durable-8"}},
                               InsertBody(8, 10)));
    ASSERT_EQ(second.code, 200) << second.body;
  }
  // A fresh process: reopen the warehouse, serve again, resend the
  // first batch. The ack must carry the original sequence, recovered
  // from checkpoint + WAL.
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    TestServer ts(&warehouse);
    MD_ASSERT_OK_AND_ASSIGN(Table before, warehouse.View("v"));
    MD_ASSERT_OK_AND_ASSIGN(
        auto resend, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                               keyed, InsertBody(7, 40)));
    ASSERT_EQ(resend.code, 200) << resend.body;
    EXPECT_EQ(resend.Header("x-duplicate"), "true");
    EXPECT_EQ(resend.Header("x-sequence"), original_sequence);
    MD_ASSERT_OK_AND_ASSIGN(Table after, warehouse.View("v"));
    EXPECT_TRUE(TablesApproxEqual(before, after));
  }
  std::filesystem::remove_all(dir);
}

// A cancelled/timed-out request must leave no trace: no sequence, no
// snapshot, no cache entry, no connection leak.
TEST(HttpServerTest, TimedOutRequestLeavesNoTrace) {
  Warehouse warehouse =
      FixtureWarehouse(WarehouseOptions{}.WithResultCache(16));
  HttpServerOptions options;
  options.post_admission_hook = [](const HttpRequest& request) {
    if (!request.Header("x-deadline-ms").empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  };
  TestServer ts(&warehouse, options);
  const uint64_t sequence_before = warehouse.last_sequence();
  const uint64_t version_before = warehouse.CurrentSnapshot()->version;
  const auto cache_before = warehouse.Report().cache;
  MD_ASSERT_OK_AND_ASSIGN(Table view_before, warehouse.View("v"));

  MD_ASSERT_OK_AND_ASSIGN(
      auto ingest, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest",
                             {{"X-Deadline-Ms", "5"}}, InsertBody(7, 40)));
  EXPECT_EQ(ingest.code, 504);
  MD_ASSERT_OK_AND_ASSIGN(
      auto query,
      HttpFetch("127.0.0.1", ts.port(), "POST", "/query",
                {{"X-Deadline-Ms", "5"}},
                "SELECT time.month, SUM(sale.price) AS Total FROM sale, "
                "time WHERE sale.timeid = time.id GROUP BY time.month"));
  EXPECT_EQ(query.code, 504);

  EXPECT_EQ(warehouse.last_sequence(), sequence_before);
  EXPECT_EQ(warehouse.CurrentSnapshot()->version, version_before);
  EXPECT_EQ(warehouse.Report().cache.insertions, cache_before.insertions);
  MD_ASSERT_OK_AND_ASSIGN(Table view_after, warehouse.View("v"));
  EXPECT_TRUE(TablesApproxEqual(view_before, view_after));
  // The refused requests' connections drained cleanly.
  for (int i = 0; i < 50 && ts.server.stats().active > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(ts.server.stats().active, 0u);
  // And the very same connection path still works.
  MD_ASSERT_OK_AND_ASSIGN(
      auto ok, HttpFetch("127.0.0.1", ts.port(), "POST", "/ingest", {},
                         InsertBody(7, 40)));
  EXPECT_EQ(ok.code, 200);
  EXPECT_EQ(warehouse.last_sequence(), sequence_before + 1);
}

// ---------------------------------------------------------------------
// Change feed

// Applies one batch and returns the (previous, published) snapshots
// around it, so the test can compute the expected delta independently.
std::pair<std::shared_ptr<const WarehouseSnapshot>,
          std::shared_ptr<const WarehouseSnapshot>>
ApplyAndSnapshot(Warehouse* warehouse,
                 const std::map<std::string, Delta>& changes) {
  auto previous = warehouse->CurrentSnapshot();
  MD_CHECK(warehouse->ApplyTransaction(changes).ok());
  auto published = warehouse->CurrentSnapshot();
  return {previous, published};
}

// The expected SSE payload lines of one commit, computed directly from
// the snapshot pair with the same exposed diff helper the feed uses —
// and cross-checked against a hand-rolled diff of the view contents.
std::vector<std::string> ExpectedDataLines(
    const WarehouseSnapshot& previous, const WarehouseSnapshot& published) {
  const ChangeEvent event = DiffSnapshots(previous, published);
  std::vector<std::string> lines;
  const std::string sse = event.ToSse();
  size_t start = 0;
  while (start < sse.size()) {
    size_t eol = sse.find('\n', start);
    if (eol == std::string::npos) eol = sse.size();
    const std::string line = sse.substr(start, eol - start);
    start = eol + 1;
    if (line.rfind("data: ", 0) == 0) lines.push_back(line.substr(6));
  }
  return lines;
}

TEST(ChangeFeedTest, DiffSnapshotsMatchesManualDiff) {
  Warehouse warehouse = FixtureWarehouse();
  std::map<std::string, Delta> changes;
  changes["sale"].inserts.push_back(
      {Value(7), Value(1), Value(1), Value(40)});
  changes["sale"].deletes.push_back(
      {Value(6), Value(2), Value(2), Value(30)});
  const auto [previous, published] =
      ApplyAndSnapshot(&warehouse, changes);
  const ChangeEvent event = DiffSnapshots(*previous, *published);
  EXPECT_EQ(event.version, published->version);
  EXPECT_EQ(event.prior_version, previous->version);
  ASSERT_EQ(event.views.size(), 1u);
  const ViewDelta& delta = event.views[0];
  EXPECT_EQ(delta.view, "v");

  // Hand-rolled diff of the rendered contents.
  auto rows = [](const Table& table) {
    std::set<std::string> out;
    for (const Tuple& row : table.rows()) out.insert(RenderCsvRow(row));
    return out;
  };
  MD_ASSERT_OK_AND_ASSIGN(auto before, previous->View("v"));
  MD_ASSERT_OK_AND_ASSIGN(auto after, published->View("v"));
  const std::set<std::string> b = rows(*before), a = rows(*after);
  std::set<std::string> expect_added, expect_removed;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::inserter(expect_added, expect_added.end()));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::inserter(expect_removed, expect_removed.end()));
  EXPECT_EQ(std::set<std::string>(delta.added.begin(), delta.added.end()),
            expect_added);
  EXPECT_EQ(
      std::set<std::string>(delta.removed.begin(), delta.removed.end()),
      expect_removed);
  EXPECT_FALSE(expect_added.empty());
}

TEST(ChangeFeedTest, ReplayAndRetentionSemantics) {
  ChangeFeed feed(2);
  auto snapshot = [](uint64_t version) {
    auto s = std::make_shared<WarehouseSnapshot>();
    s->version = version;
    return std::shared_ptr<const WarehouseSnapshot>(std::move(s));
  };
  feed.OnCommit(snapshot(0), snapshot(1));
  feed.OnCommit(snapshot(1), snapshot(2));
  // Everything retained: replay from 0 yields both.
  ChangeFeed::Replay replay = feed.ReplayFrom(0);
  ASSERT_TRUE(replay.ok);
  ASSERT_EQ(replay.events.size(), 2u);
  EXPECT_EQ(replay.events[0]->version, 1u);
  // From the newest version: an empty OK tail.
  replay = feed.ReplayFrom(2);
  EXPECT_TRUE(replay.ok);
  EXPECT_TRUE(replay.events.empty());
  // A third commit evicts version 1: from=0 now has a gap.
  feed.OnCommit(snapshot(2), snapshot(3));
  replay = feed.ReplayFrom(0);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.current_version, 3u);
  // from=1 is exactly covered by the retained {2,3}.
  replay = feed.ReplayFrom(1);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.events.size(), 2u);
  EXPECT_EQ(feed.stats().dropped, 1u);
}

TEST(ChangeFeedTest, WaitBeyondWakesOnCommitAndClose) {
  ChangeFeed feed(8);
  EXPECT_FALSE(feed.WaitBeyond(0, 10));  // Times out: nothing yet.
  std::thread committer([&feed] {
    auto prev = std::make_shared<WarehouseSnapshot>();
    auto next = std::make_shared<WarehouseSnapshot>();
    next->version = 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    feed.OnCommit(prev, next);
  });
  EXPECT_TRUE(feed.WaitBeyond(0, 5000));
  committer.join();
  std::thread closer([&feed] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    feed.Close();
  });
  EXPECT_FALSE(feed.WaitBeyond(1, 5000));  // Woken by Close, not data.
  closer.join();
}

// The end-to-end differential: SSE-streamed deltas are bit-identical
// to diffs computed independently from the committed snapshot pairs —
// through live tailing, late replay, and reconnect.
TEST(HttpServerTest, ChangeFeedDifferential) {
  Warehouse warehouse = FixtureWarehouse();
  TestServer ts(&warehouse);

  // Tail from the initial boundary before anything commits.
  SseClient tail;
  MD_ASSERT_OK(tail.Open("127.0.0.1", ts.port(), "/changes?from=0"));

  // Apply four batches, capturing the snapshot pair around each.
  std::vector<std::vector<std::string>> expected;
  std::vector<uint64_t> versions;
  for (int i = 0; i < 4; ++i) {
    std::map<std::string, Delta> changes;
    changes["sale"].inserts.push_back(
        {Value(100 + i), Value(1 + (i % 2)), Value(1), Value(10 + i)});
    if (i == 3) {  // The last batch also deletes an original row.
      changes["sale"].deletes.push_back(
          {Value(3), Value(1), Value(2), Value(30)});
    }
    const auto [previous, published] =
        ApplyAndSnapshot(&warehouse, changes);
    expected.push_back(ExpectedDataLines(*previous, *published));
    versions.push_back(published->version);
  }

  // The live tail streams each commit, bit-identical to the expected
  // data lines (heartbeat comments may interleave).
  for (size_t i = 0; i < expected.size(); ++i) {
    SseEvent event;
    do {
      MD_ASSERT_OK_AND_ASSIGN(event, tail.Next());
    } while (event.comment);
    EXPECT_EQ(event.event, "commit");
    EXPECT_EQ(event.id, StrCat(versions[i]));
    EXPECT_EQ(event.data, expected[i]) << "commit " << versions[i];
  }
  tail.Close();

  // A late subscriber replays the retained history identically.
  SseClient replay;
  MD_ASSERT_OK(replay.Open("127.0.0.1", ts.port(), "/changes?from=0"));
  for (size_t i = 0; i < expected.size(); ++i) {
    SseEvent event;
    do {
      MD_ASSERT_OK_AND_ASSIGN(event, replay.Next());
    } while (event.comment);
    EXPECT_EQ(event.data, expected[i]);
  }
  replay.Close();

  // Reconnect mid-stream: from=versions[1] resumes at the third batch.
  SseClient reconnect;
  MD_ASSERT_OK(reconnect.Open(
      "127.0.0.1", ts.port(),
      StrCat("/changes?from=", versions[1], "&limit=2")));
  for (size_t i = 2; i < expected.size(); ++i) {
    SseEvent event;
    do {
      MD_ASSERT_OK_AND_ASSIGN(event, reconnect.Next());
    } while (event.comment);
    EXPECT_EQ(event.id, StrCat(versions[i]));
    EXPECT_EQ(event.data, expected[i]);
  }
  // The limit closes the stream after the requested events.
  EXPECT_FALSE(reconnect.Next().ok());

  // Poll mode returns the same rendered events.
  MD_ASSERT_OK_AND_ASSIGN(
      auto poll,
      HttpFetch("127.0.0.1", ts.port(), "GET",
                StrCat("/changes?poll=1&from=", versions[2])));
  EXPECT_EQ(poll.code, 200);
  EXPECT_EQ(poll.body.rfind(StrCat("current ", versions.back()), 0), 0u);
  for (const std::string& line : expected.back()) {
    EXPECT_NE(poll.body.find(StrCat("data: ", line)), std::string::npos)
        << line;
  }
}

TEST(HttpServerTest, ChangeFeedResetWhenReplayPredatesRetention) {
  Warehouse warehouse = FixtureWarehouse();
  HttpServerOptions options;
  options.change_feed_retention = 2;
  TestServer ts(&warehouse, options);
  for (int i = 0; i < 5; ++i) {
    std::map<std::string, Delta> changes;
    changes["sale"].inserts.push_back(
        {Value(200 + i), Value(1), Value(1), Value(5)});
    MD_ASSERT_OK(warehouse.ApplyTransaction(changes));
  }
  // from=0 predates the 2-event ring: the subscriber is told to resync.
  SseClient stale;
  MD_ASSERT_OK(
      stale.Open("127.0.0.1", ts.port(), "/changes?from=0&limit=2"));
  MD_ASSERT_OK_AND_ASSIGN(SseEvent reset, stale.Next());
  EXPECT_EQ(reset.event, "reset");
  ASSERT_EQ(reset.data.size(), 1u);
  EXPECT_EQ(reset.data[0], StrCat("current ", warehouse.last_sequence()));
  stale.Close();
}

// ---------------------------------------------------------------------
// Concurrency (run under TSan via -L concurrency)

TEST(HttpServerTest, ConcurrentClientsAndWriterUnderLoad) {
  Warehouse warehouse = FixtureWarehouse();
  HttpServerOptions options;
  options.num_workers = 8;
  TestServer ts(&warehouse, options);
  const int port = ts.port();

  // One writer commits batches through HTTP while reader threads mix
  // queries, scrapes, and change-feed polls over keep-alive
  // connections. Everything must stay well-formed; TSan guards the
  // server's shared state.
  constexpr int kBatches = 12;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int i = 0; i < kBatches; ++i) {
      auto response = HttpFetch(
          "127.0.0.1", port, "POST", "/ingest",
          {{"Idempotency-Key", StrCat("load-", i)}},
          InsertBody(500 + i, 10 + i));
      ASSERT_TRUE(response.ok());
      ASSERT_EQ((*response).code, 200) << (*response).body;
    }
    writer_done.store(true);
  });

  // One subscriber tails every commit in order.
  std::thread subscriber([&] {
    SseClient client;
    ASSERT_TRUE(
        client.Open("127.0.0.1", port,
                    StrCat("/changes?from=0&limit=", kBatches))
            .ok());
    uint64_t last = 0;
    for (int i = 0; i < kBatches; ++i) {
      SseEvent event;
      for (;;) {
        auto next = client.Next();
        ASSERT_TRUE(next.ok());
        if (!next->comment) {
          event = *std::move(next);
          break;
        }
      }
      ASSERT_EQ(event.event, "commit");
      const uint64_t version = std::stoull(event.id);
      EXPECT_GT(version, last);  // Strictly ordered, no gaps skipped.
      last = version;
    }
  });

  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      HttpConnection connection;
      if (!connection.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 25; ++i) {
        Result<ClientResponse> response = InternalError("unset");
        switch ((t + i) % 3) {
          case 0:
            response = connection.Request(
                "POST", "/query", {},
                "SELECT time.month, SUM(sale.price) AS Total FROM sale, "
                "time WHERE sale.timeid = time.id GROUP BY time.month");
            break;
          case 1:
            response = connection.Request("GET", "/metrics");
            break;
          case 2:
            response = connection.Request("GET", "/changes?poll=1");
            break;
        }
        if (!response.ok() || (*response).code != 200) {
          failures.fetch_add(1);
        } else if (!connection.connected() &&
                   !connection.Connect("127.0.0.1", port).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  writer.join();
  subscriber.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(warehouse.last_sequence(), static_cast<uint64_t>(kBatches));
  // The final scrape still parses cleanly after the storm.
  MD_ASSERT_OK_AND_ASSIGN(auto metrics,
                          HttpFetch("127.0.0.1", port, "GET", "/metrics"));
  ValidatePrometheusText(metrics.body);
}

TEST(HttpServerTest, StopUnblocksTailingSubscriber) {
  Warehouse warehouse = FixtureWarehouse();
  auto ts = std::make_unique<TestServer>(&warehouse);
  SseClient client;
  MD_ASSERT_OK(client.Open("127.0.0.1", ts->port(), "/changes"));
  std::thread stopper([&ts] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ts.reset();  // Stop() must wake the blocked tail.
  });
  // The stream ends (possibly after a heartbeat) instead of hanging.
  for (int i = 0; i < 100; ++i) {
    auto next = client.Next();
    if (!next.ok()) break;
  }
  stopper.join();
  SUCCEED();
}

}  // namespace
}  // namespace mindetail
