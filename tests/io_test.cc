#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "gpsj/builder.h"
#include "io/catalog_io.h"
#include "io/csv.h"
#include "io/warehouse_io.h"
#include "gpsj/evaluator.h"
#include "relational/ops.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"price", ValueType::kDouble},
                 {"note", ValueType::kString}});
}

TEST(CsvTest, RoundTripBasicTypes) {
  Table table("t", MixedSchema());
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("plain")}));
  MD_ASSERT_OK(table.Insert({Value(-7), Value(0.1), Value("x")}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));

  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(
      Table loaded, ReadTableCsv(in, "t", MixedSchema(), std::nullopt));
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, RoundTripEvilStrings) {
  Table table("t", MixedSchema());
  MD_ASSERT_OK(table.Insert({Value(1), Value(1.0),
                             Value("comma, quote \" and \"\"double\"\"")}));
  MD_ASSERT_OK(table.Insert({Value(2), Value(2.0),
                             Value("line\nbreak and trailing space ")}));
  MD_ASSERT_OK(table.Insert({Value(3), Value(3.0), Value("")}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));

  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(
      Table loaded, ReadTableCsv(in, "t", MixedSchema(), std::nullopt));
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, RoundTripNulls) {
  Table table("t", MixedSchema());
  table.set_allow_null(true);
  MD_ASSERT_OK(table.Insert({Value(1), Value(), Value("a")}));
  MD_ASSERT_OK(table.Insert({Value(), Value(4.5), Value("b")}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));
  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(Table loaded,
                          ReadTableCsv(in, "t", MixedSchema(),
                                       std::nullopt, /*allow_null=*/true));
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, RoundTripExtremeDoubles) {
  Schema schema({{"d", ValueType::kDouble}});
  Table table("t", schema);
  MD_ASSERT_OK(table.Insert({Value(1.0 / 3.0)}));
  MD_ASSERT_OK(table.Insert({Value(1e-300)}));
  MD_ASSERT_OK(table.Insert({Value(12345678901234.5)}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));
  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(Table loaded,
                          ReadTableCsv(in, "t", schema, std::nullopt));
  ASSERT_EQ(loaded.NumRows(), 3u);
  // Exact round trip via max_digits10.
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, TypeErrorsCarryLineNumbers) {
  Schema schema({{"id", ValueType::kInt64}});
  std::istringstream in("1\nnot_a_number\n");
  Result<Table> loaded = ReadTableCsv(in, "t", schema, std::nullopt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ArityMismatchRejected) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  std::istringstream in("1,2\n3\n");
  Result<Table> loaded = ReadTableCsv(in, "t", schema, std::nullopt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, QuotedNumberRejected) {
  Schema schema({{"a", ValueType::kInt64}});
  std::istringstream in("\"12\"\n");
  EXPECT_FALSE(ReadTableCsv(in, "t", schema, std::nullopt).ok());
}

TEST(CsvTest, UnquotedStringRejected) {
  Schema schema({{"s", ValueType::kString}});
  std::istringstream in("hello\n");
  EXPECT_FALSE(ReadTableCsv(in, "t", schema, std::nullopt).ok());
}

TEST(CsvTest, KeyedReadEnforcesUniqueness) {
  Schema schema({{"id", ValueType::kInt64}});
  std::istringstream in("1\n1\n");
  Result<Table> loaded = ReadTableCsv(in, "t", schema, "id");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kAlreadyExists);
}

TEST(ManifestTest, RoundTripSchemaAndFlags) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK(warehouse.catalog.SetExposedUpdates("time", true));
  MD_ASSERT_OK(warehouse.catalog.SetAppendOnly("store", true));

  std::ostringstream out;
  MD_ASSERT_OK(WriteManifest(warehouse.catalog, out));
  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(Catalog loaded, ReadManifest(in));

  EXPECT_EQ(loaded.TableNames(), warehouse.catalog.TableNames());
  for (const std::string& table : loaded.TableNames()) {
    EXPECT_EQ((*loaded.GetTable(table))->schema(),
              (*warehouse.catalog.GetTable(table))->schema())
        << table;
    MD_ASSERT_OK_AND_ASSIGN(std::string key, loaded.KeyAttr(table));
    MD_ASSERT_OK_AND_ASSIGN(std::string want,
                            warehouse.catalog.KeyAttr(table));
    EXPECT_EQ(key, want);
  }
  EXPECT_EQ(loaded.foreign_keys(), warehouse.catalog.foreign_keys());
  EXPECT_TRUE(loaded.HasExposedUpdates("time"));
  EXPECT_TRUE(loaded.IsAppendOnly("store"));
  EXPECT_FALSE(loaded.IsAppendOnly("sale"));
}

TEST(ManifestTest, MalformedDirectivesRejected) {
  {
    std::istringstream in("NONSENSE foo\n");
    EXPECT_FALSE(ReadManifest(in).ok());
  }
  {
    std::istringstream in("COL ghost a INT64\n");
    EXPECT_FALSE(ReadManifest(in).ok());
  }
  {
    std::istringstream in("TABLE t KEY id\nCOL t id BLOB\n");
    EXPECT_FALSE(ReadManifest(in).ok());
  }
  {
    std::istringstream in("TABLE t KEY id\n");  // No columns.
    EXPECT_FALSE(ReadManifest(in).ok());
  }
}

TEST(ManifestTest, TruncatedDirectivesErrorWithLineNumbers) {
  {
    std::istringstream in("TABLE t KEY id\nCOL t id\n");
    const Status status = ReadManifest(in).status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("line 2"), std::string::npos)
        << status;
    EXPECT_NE(status.message().find("truncated COL"), std::string::npos)
        << status;
  }
  {
    std::istringstream in(
        "TABLE t KEY id\nCOL t id INT64\nFK t id\n");
    const Status status = ReadManifest(in).status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("line 3"), std::string::npos)
        << status;
    EXPECT_NE(status.message().find("truncated FK"), std::string::npos)
        << status;
  }
  {
    std::istringstream in("TABLE t KEY id\nCOL t id INT64\nEXPOSED\n");
    const Status status = ReadManifest(in).status();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("names no table"), std::string::npos)
        << status;
  }
  {
    std::istringstream in(
        "TABLE t KEY id\nCOL t id INT64\nAPPEND_ONLY\n");
    EXPECT_FALSE(ReadManifest(in).ok());
  }
}

TEST(ManifestTest, ColumnBeforeTableRejected) {
  std::istringstream in("COL t id INT64\nTABLE t KEY id\n");
  const Status status = ReadManifest(in).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 1"), std::string::npos) << status;
}

TEST(CatalogIoTest, FullDirectoryRoundTrip) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK(warehouse.catalog.SetAppendOnly("store", true));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "mindetail_io_test")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  MD_ASSERT_OK(SaveCatalog(warehouse.catalog, dir));
  MD_ASSERT_OK_AND_ASSIGN(Catalog loaded, LoadCatalog(dir));

  for (const std::string& table : warehouse.catalog.TableNames()) {
    EXPECT_TRUE(TablesEqualAsBags(**warehouse.catalog.GetTable(table),
                                  **loaded.GetTable(table)))
        << table;
  }
  EXPECT_TRUE(loaded.IsAppendOnly("store"));
  MD_EXPECT_OK(loaded.CheckReferentialIntegrity());

  // A reloaded catalog supports the full pipeline.
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, ProductSalesView(loaded));
  MD_ASSERT_OK_AND_ASSIGN(Table a, EvaluateGpsj(loaded, def));
  MD_ASSERT_OK_AND_ASSIGN(Table b,
                          EvaluateGpsj(warehouse.catalog, def));
  EXPECT_TRUE(test::TablesApproxEqual(a, b));

  std::filesystem::remove_all(dir);
}

TEST(CatalogIoTest, RoundTripIgnoresStrayFiles) {
  RetailWarehouse warehouse = SmallRetail();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mindetail_io_stray")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  MD_ASSERT_OK(SaveCatalog(warehouse.catalog, dir));

  // Files the manifest does not mention must not confuse loading.
  { std::ofstream((dir + "/NOTES.txt").c_str()) << "scratch\n"; }
  { std::ofstream((dir + "/stray.csv").c_str()) << "1,2,3\n"; }

  MD_ASSERT_OK_AND_ASSIGN(Catalog loaded, LoadCatalog(dir));
  EXPECT_EQ(loaded.TableNames(), warehouse.catalog.TableNames());
  for (const std::string& table : warehouse.catalog.TableNames()) {
    EXPECT_TRUE(TablesEqualAsBags(**warehouse.catalog.GetTable(table),
                                  **loaded.GetTable(table)))
        << table;
  }
  std::filesystem::remove_all(dir);
}

TEST(CatalogIoTest, MissingDirectoryErrors) {
  EXPECT_EQ(LoadCatalog("/nonexistent/mindetail").status().code(),
            StatusCode::kNotFound);
}

TEST(ViewDefIoTest, RoundTripEveryFeature) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewBuilder builder("kitchen_sink");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(1997))
      .Where("product", "brand", CompareOp::kNe,
             Value("Brand With Spaces"))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .DeriveConst("sale", "scaled", "price", DerivedAttr::Op::kMul,
                   Value(1.1))
      .GroupBy("time", "month", "Month")
      .CountStar("Cnt")
      .Sum("sale", "scaled", "TotalScaled")
      .Avg("sale", "price", "AvgPrice")
      .Min("sale", "price", "MinPrice")
      .CountDistinct("product", "brand", "Brands")
      .Having("Cnt", CompareOp::kGt, Value(int64_t{0}));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          builder.Build(warehouse.catalog));

  std::ostringstream out;
  MD_ASSERT_OK(WriteViewDef(def, out));
  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef loaded,
                          ReadViewDef(in, warehouse.catalog));

  EXPECT_EQ(loaded.name(), def.name());
  EXPECT_EQ(loaded.tables(), def.tables());
  EXPECT_EQ(loaded.joins(), def.joins());
  EXPECT_EQ(loaded.having().size(), def.having().size());
  EXPECT_EQ(loaded.DerivedAttrsOf("sale"), def.DerivedAttrsOf("sale"));
  // ToSqlString renders every feature; textual equality is a deep
  // structural check.
  EXPECT_EQ(loaded.ToSqlString(), def.ToSqlString());
}

TEST(ViewDefIoTest, TruncatedDefRejected) {
  RetailWarehouse warehouse = SmallRetail();
  std::istringstream in("VIEW v\nFROM sale\n");  // No END.
  const Status status = ReadViewDef(in, warehouse.catalog).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status;
}

TEST(ViewDefIoTest, UnknownDirectiveRejected) {
  RetailWarehouse warehouse = SmallRetail();
  std::istringstream in("VIEW v\nFROM sale\nWIBBLE x\nEND\n");
  const Status status = ReadViewDef(in, warehouse.catalog).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("WIBBLE"), std::string::npos) << status;
}

}  // namespace
}  // namespace mindetail
