#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "gtest/gtest.h"
#include "io/catalog_io.h"
#include "io/csv.h"
#include "gpsj/evaluator.h"
#include "relational/ops.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"price", ValueType::kDouble},
                 {"note", ValueType::kString}});
}

TEST(CsvTest, RoundTripBasicTypes) {
  Table table("t", MixedSchema());
  MD_ASSERT_OK(table.Insert({Value(1), Value(2.5), Value("plain")}));
  MD_ASSERT_OK(table.Insert({Value(-7), Value(0.1), Value("x")}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));

  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(
      Table loaded, ReadTableCsv(in, "t", MixedSchema(), std::nullopt));
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, RoundTripEvilStrings) {
  Table table("t", MixedSchema());
  MD_ASSERT_OK(table.Insert({Value(1), Value(1.0),
                             Value("comma, quote \" and \"\"double\"\"")}));
  MD_ASSERT_OK(table.Insert({Value(2), Value(2.0),
                             Value("line\nbreak and trailing space ")}));
  MD_ASSERT_OK(table.Insert({Value(3), Value(3.0), Value("")}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));

  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(
      Table loaded, ReadTableCsv(in, "t", MixedSchema(), std::nullopt));
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, RoundTripNulls) {
  Table table("t", MixedSchema());
  table.set_allow_null(true);
  MD_ASSERT_OK(table.Insert({Value(1), Value(), Value("a")}));
  MD_ASSERT_OK(table.Insert({Value(), Value(4.5), Value("b")}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));
  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(Table loaded,
                          ReadTableCsv(in, "t", MixedSchema(),
                                       std::nullopt, /*allow_null=*/true));
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, RoundTripExtremeDoubles) {
  Schema schema({{"d", ValueType::kDouble}});
  Table table("t", schema);
  MD_ASSERT_OK(table.Insert({Value(1.0 / 3.0)}));
  MD_ASSERT_OK(table.Insert({Value(1e-300)}));
  MD_ASSERT_OK(table.Insert({Value(12345678901234.5)}));
  std::ostringstream out;
  MD_ASSERT_OK(WriteTableCsv(table, out));
  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(Table loaded,
                          ReadTableCsv(in, "t", schema, std::nullopt));
  ASSERT_EQ(loaded.NumRows(), 3u);
  // Exact round trip via max_digits10.
  EXPECT_TRUE(TablesEqualAsBags(table, loaded));
}

TEST(CsvTest, TypeErrorsCarryLineNumbers) {
  Schema schema({{"id", ValueType::kInt64}});
  std::istringstream in("1\nnot_a_number\n");
  Result<Table> loaded = ReadTableCsv(in, "t", schema, std::nullopt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ArityMismatchRejected) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  std::istringstream in("1,2\n3\n");
  Result<Table> loaded = ReadTableCsv(in, "t", schema, std::nullopt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, QuotedNumberRejected) {
  Schema schema({{"a", ValueType::kInt64}});
  std::istringstream in("\"12\"\n");
  EXPECT_FALSE(ReadTableCsv(in, "t", schema, std::nullopt).ok());
}

TEST(CsvTest, UnquotedStringRejected) {
  Schema schema({{"s", ValueType::kString}});
  std::istringstream in("hello\n");
  EXPECT_FALSE(ReadTableCsv(in, "t", schema, std::nullopt).ok());
}

TEST(CsvTest, KeyedReadEnforcesUniqueness) {
  Schema schema({{"id", ValueType::kInt64}});
  std::istringstream in("1\n1\n");
  Result<Table> loaded = ReadTableCsv(in, "t", schema, "id");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kAlreadyExists);
}

TEST(ManifestTest, RoundTripSchemaAndFlags) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK(warehouse.catalog.SetExposedUpdates("time", true));
  MD_ASSERT_OK(warehouse.catalog.SetAppendOnly("store", true));

  std::ostringstream out;
  MD_ASSERT_OK(WriteManifest(warehouse.catalog, out));
  std::istringstream in(out.str());
  MD_ASSERT_OK_AND_ASSIGN(Catalog loaded, ReadManifest(in));

  EXPECT_EQ(loaded.TableNames(), warehouse.catalog.TableNames());
  for (const std::string& table : loaded.TableNames()) {
    EXPECT_EQ((*loaded.GetTable(table))->schema(),
              (*warehouse.catalog.GetTable(table))->schema())
        << table;
    MD_ASSERT_OK_AND_ASSIGN(std::string key, loaded.KeyAttr(table));
    MD_ASSERT_OK_AND_ASSIGN(std::string want,
                            warehouse.catalog.KeyAttr(table));
    EXPECT_EQ(key, want);
  }
  EXPECT_EQ(loaded.foreign_keys(), warehouse.catalog.foreign_keys());
  EXPECT_TRUE(loaded.HasExposedUpdates("time"));
  EXPECT_TRUE(loaded.IsAppendOnly("store"));
  EXPECT_FALSE(loaded.IsAppendOnly("sale"));
}

TEST(ManifestTest, MalformedDirectivesRejected) {
  {
    std::istringstream in("NONSENSE foo\n");
    EXPECT_FALSE(ReadManifest(in).ok());
  }
  {
    std::istringstream in("COL ghost a INT64\n");
    EXPECT_FALSE(ReadManifest(in).ok());
  }
  {
    std::istringstream in("TABLE t KEY id\nCOL t id BLOB\n");
    EXPECT_FALSE(ReadManifest(in).ok());
  }
  {
    std::istringstream in("TABLE t KEY id\n");  // No columns.
    EXPECT_FALSE(ReadManifest(in).ok());
  }
}

TEST(CatalogIoTest, FullDirectoryRoundTrip) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK(warehouse.catalog.SetAppendOnly("store", true));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "mindetail_io_test")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  MD_ASSERT_OK(SaveCatalog(warehouse.catalog, dir));
  MD_ASSERT_OK_AND_ASSIGN(Catalog loaded, LoadCatalog(dir));

  for (const std::string& table : warehouse.catalog.TableNames()) {
    EXPECT_TRUE(TablesEqualAsBags(**warehouse.catalog.GetTable(table),
                                  **loaded.GetTable(table)))
        << table;
  }
  EXPECT_TRUE(loaded.IsAppendOnly("store"));
  MD_EXPECT_OK(loaded.CheckReferentialIntegrity());

  // A reloaded catalog supports the full pipeline.
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, ProductSalesView(loaded));
  MD_ASSERT_OK_AND_ASSIGN(Table a, EvaluateGpsj(loaded, def));
  MD_ASSERT_OK_AND_ASSIGN(Table b,
                          EvaluateGpsj(warehouse.catalog, def));
  EXPECT_TRUE(test::TablesApproxEqual(a, b));

  std::filesystem::remove_all(dir);
}

TEST(CatalogIoTest, MissingDirectoryErrors) {
  EXPECT_EQ(LoadCatalog("/nonexistent/mindetail").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mindetail
