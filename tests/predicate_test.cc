#include "relational/predicate.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

Schema TestSchema() {
  return Schema({{"year", ValueType::kInt64},
                 {"price", ValueType::kDouble},
                 {"city", ValueType::kString}});
}

TEST(CompareOpTest, AllOperatorsEvaluate) {
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, Value(3), Value(3)));
  EXPECT_TRUE(EvalCompare(CompareOp::kNe, Value(3), Value(4)));
  EXPECT_TRUE(EvalCompare(CompareOp::kLt, Value(3), Value(4)));
  EXPECT_TRUE(EvalCompare(CompareOp::kLe, Value(3), Value(3)));
  EXPECT_TRUE(EvalCompare(CompareOp::kGt, Value(5), Value(4)));
  EXPECT_TRUE(EvalCompare(CompareOp::kGe, Value(5), Value(5)));
  EXPECT_FALSE(EvalCompare(CompareOp::kEq, Value(3), Value(4)));
}

TEST(ConditionTest, RenderingUsesSqlSpelling) {
  Condition c{"year", CompareOp::kNe, Value(1997)};
  EXPECT_EQ(c.ToString(), "year <> 1997");
  EXPECT_EQ(std::string(CompareOpName(CompareOp::kLe)), "<=");
}

TEST(ConjunctionTest, EmptyIsTrue) {
  Conjunction conjunction;
  EXPECT_TRUE(conjunction.empty());
  EXPECT_EQ(conjunction.ToString(), "TRUE");
  EXPECT_TRUE(conjunction.Eval(TestSchema(),
                               {Value(1997), Value(1.0), Value("x")}));
}

TEST(ConjunctionTest, EvalIsConjunctive) {
  Conjunction conjunction;
  conjunction.Add({"year", CompareOp::kEq, Value(1997)});
  conjunction.Add({"price", CompareOp::kGt, Value(10.0)});
  EXPECT_TRUE(conjunction.Eval(TestSchema(),
                               {Value(1997), Value(12.0), Value("x")}));
  EXPECT_FALSE(conjunction.Eval(TestSchema(),
                                {Value(1997), Value(9.0), Value("x")}));
  EXPECT_FALSE(conjunction.Eval(TestSchema(),
                                {Value(1996), Value(12.0), Value("x")}));
  EXPECT_EQ(conjunction.ToString(), "year = 1997 AND price > 10.0");
}

TEST(ConjunctionTest, ValidateCatchesBadConditions) {
  Schema schema = TestSchema();
  {
    Conjunction c;
    c.Add({"missing", CompareOp::kEq, Value(1)});
    EXPECT_EQ(c.Validate(schema).code(), StatusCode::kNotFound);
  }
  {
    Conjunction c;
    c.Add({"city", CompareOp::kEq, Value(5)});
    EXPECT_EQ(c.Validate(schema).code(), StatusCode::kInvalidArgument);
  }
  {
    Conjunction c;
    c.Add({"year", CompareOp::kEq, Value()});
    EXPECT_EQ(c.Validate(schema).code(), StatusCode::kInvalidArgument);
  }
  {
    // Numeric cross-type comparison is allowed.
    Conjunction c;
    c.Add({"price", CompareOp::kGe, Value(10)});
    MD_EXPECT_OK(c.Validate(schema));
  }
}

TEST(BoundPredicateTest, MatchesUnboundEvaluation) {
  Conjunction conjunction;
  conjunction.Add({"year", CompareOp::kGe, Value(1997)});
  conjunction.Add({"city", CompareOp::kNe, Value("paris")});
  MD_ASSERT_OK_AND_ASSIGN(
      BoundPredicate bound,
      BoundPredicate::Bind(conjunction, TestSchema()));
  const std::vector<Tuple> rows = {
      {Value(1997), Value(1.0), Value("rome")},
      {Value(1996), Value(1.0), Value("rome")},
      {Value(1998), Value(1.0), Value("paris")},
  };
  for (const Tuple& row : rows) {
    EXPECT_EQ(bound.Eval(row), conjunction.Eval(TestSchema(), row));
  }
}

TEST(BoundPredicateTest, BindValidates) {
  Conjunction conjunction;
  conjunction.Add({"missing", CompareOp::kEq, Value(1)});
  EXPECT_FALSE(BoundPredicate::Bind(conjunction, TestSchema()).ok());
}

}  // namespace
}  // namespace mindetail
