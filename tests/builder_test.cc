#include "gpsj/builder.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;

TEST(BuilderTest, ValidViewBuilds) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .From("time")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .GroupBy("time", "month")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  EXPECT_EQ(def.name(), "v");
  EXPECT_EQ(def.tables().size(), 2u);
  EXPECT_EQ(def.GroupByAttrs().size(), 1u);
  EXPECT_EQ(def.Aggregates().size(), 2u);
  EXPECT_FALSE(def.LocalConditions("time").empty());
  EXPECT_TRUE(def.LocalConditions("sale").empty());
}

TEST(BuilderTest, UnknownTableRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("nope").CountStar("Cnt");
  EXPECT_EQ(builder.Build(catalog).status().code(), StatusCode::kNotFound);
}

TEST(BuilderTest, SelfJoinRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale").From("sale").CountStar("Cnt");
  EXPECT_EQ(builder.Build(catalog).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BuilderTest, UnknownAttributeRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale").GroupBy("sale", "ghost").CountStar("Cnt");
  EXPECT_EQ(builder.Build(catalog).status().code(), StatusCode::kNotFound);
}

TEST(BuilderTest, ConditionOnForeignTableRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .CountStar("Cnt");
  EXPECT_FALSE(builder.Build(catalog).ok());
}

TEST(BuilderTest, JoinOutsideViewRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale").Join("sale", "timeid", "time").CountStar("Cnt");
  EXPECT_EQ(builder.Build(catalog).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BuilderTest, SumOverStringRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("product").GroupBy("product", "id").Sum("product", "brand",
                                                       "Oops");
  EXPECT_EQ(builder.Build(catalog).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BuilderTest, DuplicateOutputNameRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale").GroupBy("sale", "timeid", "X").CountStar("X");
  EXPECT_EQ(builder.Build(catalog).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(BuilderTest, SuperfluousAggregateRejected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  // MIN over a group-by attribute is superfluous (paper Sec. 2.1).
  builder.From("sale").GroupBy("sale", "price").Min("sale", "price", "M");
  EXPECT_EQ(builder.Build(catalog).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BuilderTest, EmptyViewsRejected) {
  Catalog catalog = PaperTable3Fixture();
  {
    GpsjViewBuilder builder("v");
    EXPECT_FALSE(builder.Build(catalog).ok());  // No tables.
  }
  {
    GpsjViewBuilder builder("v");
    builder.From("sale");
    EXPECT_FALSE(builder.Build(catalog).ok());  // No outputs.
  }
}

TEST(ViewDefTest, PreservedAndJoinAttrs) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .From("time")
      .From("product")
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "Total")
      .CountDistinct("product", "brand", "Brands");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));

  EXPECT_EQ(def.PreservedAttrs("sale"),
            (std::vector<std::string>{"price"}));
  EXPECT_EQ(def.PreservedAttrs("time"),
            (std::vector<std::string>{"month"}));
  EXPECT_EQ(def.PreservedAttrs("product"),
            (std::vector<std::string>{"brand"}));
  EXPECT_EQ(def.JoinAttrs("sale", catalog),
            (std::vector<std::string>{"timeid", "productid"}));
  EXPECT_EQ(def.JoinAttrs("time", catalog),
            (std::vector<std::string>{"id"}));

  EXPECT_TRUE(def.TableHasNonCsmasAttr("product"));   // DISTINCT count.
  EXPECT_FALSE(def.TableHasNonCsmasAttr("sale"));
  EXPECT_TRUE(def.TableHasGroupByAttr("time"));
  EXPECT_FALSE(def.TableHasGroupByAttr("sale"));
  EXPECT_FALSE(def.TableKeyInGroupBy("time", catalog));
}

TEST(ViewDefTest, KeyInGroupByDetected) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("product", "id")
      .Sum("sale", "price", "Total");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  EXPECT_TRUE(def.TableKeyInGroupBy("product", catalog));
}

TEST(ViewDefTest, SqlRenderingMentionsAllClauses) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  const std::string sql = def.ToSqlString();
  EXPECT_NE(sql.find("CREATE VIEW product_sales"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY time.month"), std::string::npos);
  EXPECT_NE(sql.find("year = 1997"), std::string::npos);
  EXPECT_NE(sql.find("SUM(sale.price) AS TotalPrice"), std::string::npos);
}

}  // namespace
}  // namespace mindetail
