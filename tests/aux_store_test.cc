#include "maintenance/aux_store.h"

#include <cstdint>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesExactlyEqual;

struct StoreFixture {
  Derivation derivation;
  AuxStore sale_store;    // Compressed.
  AuxStore time_store;    // Plain.
};

StoreFixture MakeFixture() {
  RetailWarehouse warehouse = SmallRetail();
  Result<GpsjViewDef> def = ProductSalesView(warehouse.catalog);
  MD_CHECK(def.ok());
  Result<Derivation> derivation =
      Derivation::Derive(*def, warehouse.catalog);
  MD_CHECK(derivation.ok());
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(warehouse.catalog, *derivation);
  MD_CHECK(materialized.ok());
  Result<AuxStore> sale = AuxStore::Create(
      derivation->aux_for("sale"), std::move(materialized->at("sale")));
  MD_CHECK(sale.ok());
  Result<AuxStore> time = AuxStore::Create(
      derivation->aux_for("time"), std::move(materialized->at("time")));
  MD_CHECK(time.ok());
  return StoreFixture{std::move(derivation).value(),
                      std::move(sale).value(), std::move(time).value()};
}

TEST(AuxStoreTest, GroupDeltaInsertsNewGroup) {
  StoreFixture fixture = MakeFixture();
  const size_t before = fixture.sale_store.NumRows();
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(
      {Value(int64_t{999}), Value(int64_t{888})}, {Value(10.0)}, 2));
  EXPECT_EQ(fixture.sale_store.NumRows(), before + 1);
}

TEST(AuxStoreTest, GroupDeltaAccumulates) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 2));
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(5.0)}, 1));
  // Find the group and inspect sum/count.
  const Table& contents = fixture.sale_store.contents();
  const CompressionPlan& plan =
      fixture.derivation.aux_for("sale").plan;
  bool found = false;
  for (const Tuple& row : contents.rows()) {
    if (row[0] == group[0] && row[1] == group[1]) {
      EXPECT_DOUBLE_EQ(
          row[plan.SumColumnIndex("price")].NumericAsDouble(), 15.0);
      EXPECT_EQ(row[plan.CountColumnIndex()], Value(3));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AuxStoreTest, GroupVanishesAtZeroCount) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 2));
  const size_t with_group = fixture.sale_store.NumRows();
  MD_ASSERT_OK(
      fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, -2));
  EXPECT_EQ(fixture.sale_store.NumRows(), with_group - 1);
}

TEST(AuxStoreTest, NegativeCountRejected) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 1));
  Status status =
      fixture.sale_store.ApplyGroupDelta(group, {Value(20.0)}, -2);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(AuxStoreTest, DeletingMissingGroupRejected) {
  StoreFixture fixture = MakeFixture();
  Status status = fixture.sale_store.ApplyGroupDelta(
      {Value(int64_t{12345}), Value(int64_t{6789})}, {Value(1.0)}, -1);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(AuxStoreTest, ZeroCountDeltaIsNoOp) {
  StoreFixture fixture = MakeFixture();
  const size_t before = fixture.sale_store.NumRows();
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(
      {Value(int64_t{999}), Value(int64_t{888})}, {Value(0.0)}, 0));
  EXPECT_EQ(fixture.sale_store.NumRows(), before);
}

TEST(AuxStoreTest, PlainRowInsertAndDelete) {
  StoreFixture fixture = MakeFixture();
  const Tuple row = {Value(int64_t{5}), Value(int64_t{7777})};
  const size_t before = fixture.time_store.NumRows();
  MD_ASSERT_OK(fixture.time_store.InsertRow(row));
  EXPECT_EQ(fixture.time_store.NumRows(), before + 1);
  EXPECT_EQ(fixture.time_store.InsertRow(row).code(),
            StatusCode::kAlreadyExists);
  MD_ASSERT_OK(fixture.time_store.DeleteRow(row));
  EXPECT_EQ(fixture.time_store.NumRows(), before);
  EXPECT_EQ(fixture.time_store.DeleteRow(row).code(),
            StatusCode::kNotFound);
}

TEST(AuxStoreTest, SwapDeleteKeepsIndexConsistent) {
  StoreFixture fixture = MakeFixture();
  // Delete groups one by one until empty; every delete must find its
  // group even after swaps.
  const CompressionPlan& plan = fixture.derivation.aux_for("sale").plan;
  while (fixture.sale_store.NumRows() > 0) {
    const Tuple row = fixture.sale_store.contents().row(0);
    Tuple group = {row[0], row[1]};
    std::vector<Value> sums = {row[plan.SumColumnIndex("price")]};
    MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(
        group, sums, -row[plan.CountColumnIndex()].AsInt64()));
  }
  EXPECT_EQ(fixture.sale_store.NumRows(), 0u);
}

TEST(AuxStoreTest, MissingGroupErrorNamesViewGroupAndColumn) {
  StoreFixture fixture = MakeFixture();
  // Recreate the sale store with an owning view, as the engine does.
  RetailWarehouse warehouse = SmallRetail();
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(warehouse.catalog, fixture.derivation);
  MD_CHECK(materialized.ok());
  MD_ASSERT_OK_AND_ASSIGN(
      AuxStore owned,
      AuxStore::Create(fixture.derivation.aux_for("sale"),
                       std::move(materialized->at("sale")),
                       "product_sales"));
  const Status status = owned.ApplyGroupDelta(
      {Value(int64_t{12345}), Value(int64_t{6789})}, {Value(1.0)}, -1);
  ASSERT_EQ(status.code(), StatusCode::kFailedPrecondition);
  const std::string& message = status.message();
  // The error must pinpoint the view, the group key, and the column.
  EXPECT_NE(message.find("of view 'product_sales'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("12345"), std::string::npos) << message;
  EXPECT_NE(message.find("6789"), std::string::npos) << message;
  const CompressionPlan& plan = fixture.derivation.aux_for("sale").plan;
  const std::string& cnt_col =
      plan.columns[plan.CountColumnIndex()].output_name;
  EXPECT_NE(message.find(StrCat("'", cnt_col, "'")), std::string::npos)
      << message;
}

TEST(AuxStoreTest, NegativeCountErrorShowsArithmetic) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 1));
  const Status status =
      fixture.sale_store.ApplyGroupDelta(group, {Value(20.0)}, -2);
  ASSERT_EQ(status.code(), StatusCode::kFailedPrecondition);
  const std::string& message = status.message();
  EXPECT_NE(message.find("count negative"), std::string::npos) << message;
  EXPECT_NE(message.find("1 + -2 = -1"), std::string::npos) << message;
  EXPECT_NE(message.find("999"), std::string::npos) << message;
}

// -------------------------------------------------------------------
// Canonical row order and the sharded merge path.
// -------------------------------------------------------------------

// A synthetic delta fragment in plan column order: `n` distinct groups
// keyed off `first_key`, each with count `cnt`. Column values follow
// the plan column kinds so the fragment is valid for any compressed
// aux schema.
Table MakeCompressedFragment(const AuxStore& store, int64_t first_key,
                             size_t n, int64_t cnt) {
  const CompressionPlan& plan = store.def().plan;
  Table fragment("fragment", store.contents().schema());
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    for (size_t c = 0; c < plan.columns.size(); ++c) {
      switch (plan.columns[c].kind) {
        case AuxColumn::Kind::kCountStar:
          row.push_back(Value(cnt));
          break;
        case AuxColumn::Kind::kSum:
          row.push_back(Value(1.5 * static_cast<double>(i + 1)));
          break;
        default:
          row.push_back(Value(first_key + static_cast<int64_t>(i)));
      }
    }
    MD_CHECK(fragment.Insert(std::move(row)).ok());
  }
  return fragment;
}

// Distinct plain rows (every column keyed off `first_key + i`), typed
// to match the store's schema.
Table MakePlainFragment(const AuxStore& store, int64_t first_key,
                        size_t n) {
  const Schema& schema = store.contents().schema();
  Table fragment("fragment", schema);
  for (size_t i = 0; i < n; ++i) {
    const int64_t seed = first_key + static_cast<int64_t>(i);
    Tuple row;
    for (size_t c = 0; c < schema.size(); ++c) {
      switch (schema.attribute(c).type) {
        case ValueType::kDouble:
          row.push_back(Value(0.5 * static_cast<double>(seed)));
          break;
        case ValueType::kString:
          row.push_back(Value(StrCat("r", seed)));
          break;
        default:
          row.push_back(Value(seed));
      }
    }
    MD_CHECK(fragment.Insert(std::move(row)).ok());
  }
  return fragment;
}

TEST(AuxStoreTest, CreateLeavesCanonicalOrder) {
  StoreFixture fixture = MakeFixture();
  EXPECT_TRUE(fixture.sale_store.InCanonicalOrder());
  EXPECT_TRUE(fixture.time_store.InCanonicalOrder());
}

TEST(AuxStoreTest, MergesRestoreCanonicalOrder) {
  StoreFixture fixture = MakeFixture();
  const Table compressed =
      MakeCompressedFragment(fixture.sale_store, 500000, 10, 2);
  MD_ASSERT_OK(fixture.sale_store.MergeCompressedFragment(compressed, 1));
  EXPECT_TRUE(fixture.sale_store.InCanonicalOrder());
  MD_ASSERT_OK(fixture.sale_store.MergeCompressedFragment(compressed, -1));
  EXPECT_TRUE(fixture.sale_store.InCanonicalOrder());

  const Table plain = MakePlainFragment(fixture.time_store, 600000, 10);
  MD_ASSERT_OK(fixture.time_store.MergePlainFragment(plain, 1));
  EXPECT_TRUE(fixture.time_store.InCanonicalOrder());
  MD_ASSERT_OK(fixture.time_store.MergePlainFragment(plain, -1));
  EXPECT_TRUE(fixture.time_store.InCanonicalOrder());
}

TEST(AuxStoreTest, DirectGroupDeltasCanonicalizeOnDemand) {
  StoreFixture fixture = MakeFixture();
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(
      {Value(int64_t{999}), Value(int64_t{888})}, {Value(10.0)}, 2));
  fixture.sale_store.Canonicalize();
  EXPECT_TRUE(fixture.sale_store.InCanonicalOrder());
}

// The sharded merge must be bit-identical to the serial one: same
// contents, same (canonical) row order. 1024 fresh groups inserted and
// then removed again — large enough to clear the sharding threshold.
TEST(AuxStoreTest, ShardedCompressedMergeMatchesSerial) {
  StoreFixture serial = MakeFixture();
  StoreFixture sharded = MakeFixture();
  ThreadPool pool(4);
  const Table fragment =
      MakeCompressedFragment(serial.sale_store, 700000, 1024, 3);

  MD_ASSERT_OK(serial.sale_store.MergeCompressedFragment(fragment, 1));
  MD_ASSERT_OK(
      sharded.sale_store.MergeCompressedFragment(fragment, 1, &pool));
  EXPECT_TRUE(sharded.sale_store.InCanonicalOrder());
  EXPECT_TRUE(TablesExactlyEqual(serial.sale_store.contents(),
                                 sharded.sale_store.contents()));

  MD_ASSERT_OK(serial.sale_store.MergeCompressedFragment(fragment, -1));
  MD_ASSERT_OK(
      sharded.sale_store.MergeCompressedFragment(fragment, -1, &pool));
  EXPECT_TRUE(TablesExactlyEqual(serial.sale_store.contents(),
                                 sharded.sale_store.contents()));
}

TEST(AuxStoreTest, ShardedPlainMergeMatchesSerial) {
  StoreFixture serial = MakeFixture();
  StoreFixture sharded = MakeFixture();
  ThreadPool pool(4);
  const Table fragment =
      MakePlainFragment(serial.time_store, 800000, 1024);

  MD_ASSERT_OK(serial.time_store.MergePlainFragment(fragment, 1));
  MD_ASSERT_OK(sharded.time_store.MergePlainFragment(fragment, 1, &pool));
  EXPECT_TRUE(sharded.time_store.InCanonicalOrder());
  EXPECT_TRUE(TablesExactlyEqual(serial.time_store.contents(),
                                 sharded.time_store.contents()));

  MD_ASSERT_OK(serial.time_store.MergePlainFragment(fragment, -1));
  MD_ASSERT_OK(sharded.time_store.MergePlainFragment(fragment, -1, &pool));
  EXPECT_TRUE(TablesExactlyEqual(serial.time_store.contents(),
                                 sharded.time_store.contents()));
}

// An inconsistent fragment must fail with the same (deterministic)
// error at any thread count: the lowest fragment row in error wins.
TEST(AuxStoreTest, ShardedMergeErrorIsDeterministic) {
  StoreFixture serial = MakeFixture();
  StoreFixture sharded = MakeFixture();
  ThreadPool pool(4);
  // 1024 deletions of groups that do not exist: every row is in error;
  // the reported one must be fragment row 0 in both modes.
  const Table fragment =
      MakeCompressedFragment(serial.sale_store, 900000, 1024, 1);

  const Status serial_status =
      serial.sale_store.MergeCompressedFragment(fragment, -1);
  const Status sharded_status =
      sharded.sale_store.MergeCompressedFragment(fragment, -1, &pool);
  ASSERT_FALSE(serial_status.ok());
  ASSERT_FALSE(sharded_status.ok());
  EXPECT_EQ(serial_status.message(), sharded_status.message());
  EXPECT_NE(serial_status.message().find("900000"), std::string::npos)
      << serial_status;
}

TEST(AuxStoreTest, CreateRejectsSchemaMismatch) {
  StoreFixture fixture = MakeFixture();
  Table wrong("wrong", Schema({{"x", ValueType::kInt64}}));
  Result<AuxStore> store =
      AuxStore::Create(fixture.derivation.aux_for("sale"),
                       std::move(wrong));
  EXPECT_FALSE(store.ok());
}

}  // namespace
}  // namespace mindetail
