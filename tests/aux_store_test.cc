#include "maintenance/aux_store.h"

#include "common/strings.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;

struct StoreFixture {
  Derivation derivation;
  AuxStore sale_store;    // Compressed.
  AuxStore time_store;    // Plain.
};

StoreFixture MakeFixture() {
  RetailWarehouse warehouse = SmallRetail();
  Result<GpsjViewDef> def = ProductSalesView(warehouse.catalog);
  MD_CHECK(def.ok());
  Result<Derivation> derivation =
      Derivation::Derive(*def, warehouse.catalog);
  MD_CHECK(derivation.ok());
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(warehouse.catalog, *derivation);
  MD_CHECK(materialized.ok());
  Result<AuxStore> sale = AuxStore::Create(
      derivation->aux_for("sale"), std::move(materialized->at("sale")));
  MD_CHECK(sale.ok());
  Result<AuxStore> time = AuxStore::Create(
      derivation->aux_for("time"), std::move(materialized->at("time")));
  MD_CHECK(time.ok());
  return StoreFixture{std::move(derivation).value(),
                      std::move(sale).value(), std::move(time).value()};
}

TEST(AuxStoreTest, GroupDeltaInsertsNewGroup) {
  StoreFixture fixture = MakeFixture();
  const size_t before = fixture.sale_store.NumRows();
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(
      {Value(int64_t{999}), Value(int64_t{888})}, {Value(10.0)}, 2));
  EXPECT_EQ(fixture.sale_store.NumRows(), before + 1);
}

TEST(AuxStoreTest, GroupDeltaAccumulates) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 2));
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(5.0)}, 1));
  // Find the group and inspect sum/count.
  const Table& contents = fixture.sale_store.contents();
  const CompressionPlan& plan =
      fixture.derivation.aux_for("sale").plan;
  bool found = false;
  for (const Tuple& row : contents.rows()) {
    if (row[0] == group[0] && row[1] == group[1]) {
      EXPECT_DOUBLE_EQ(
          row[plan.SumColumnIndex("price")].NumericAsDouble(), 15.0);
      EXPECT_EQ(row[plan.CountColumnIndex()], Value(3));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AuxStoreTest, GroupVanishesAtZeroCount) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 2));
  const size_t with_group = fixture.sale_store.NumRows();
  MD_ASSERT_OK(
      fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, -2));
  EXPECT_EQ(fixture.sale_store.NumRows(), with_group - 1);
}

TEST(AuxStoreTest, NegativeCountRejected) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 1));
  Status status =
      fixture.sale_store.ApplyGroupDelta(group, {Value(20.0)}, -2);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(AuxStoreTest, DeletingMissingGroupRejected) {
  StoreFixture fixture = MakeFixture();
  Status status = fixture.sale_store.ApplyGroupDelta(
      {Value(int64_t{12345}), Value(int64_t{6789})}, {Value(1.0)}, -1);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(AuxStoreTest, ZeroCountDeltaIsNoOp) {
  StoreFixture fixture = MakeFixture();
  const size_t before = fixture.sale_store.NumRows();
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(
      {Value(int64_t{999}), Value(int64_t{888})}, {Value(0.0)}, 0));
  EXPECT_EQ(fixture.sale_store.NumRows(), before);
}

TEST(AuxStoreTest, PlainRowInsertAndDelete) {
  StoreFixture fixture = MakeFixture();
  const Tuple row = {Value(int64_t{5}), Value(int64_t{7777})};
  const size_t before = fixture.time_store.NumRows();
  MD_ASSERT_OK(fixture.time_store.InsertRow(row));
  EXPECT_EQ(fixture.time_store.NumRows(), before + 1);
  EXPECT_EQ(fixture.time_store.InsertRow(row).code(),
            StatusCode::kAlreadyExists);
  MD_ASSERT_OK(fixture.time_store.DeleteRow(row));
  EXPECT_EQ(fixture.time_store.NumRows(), before);
  EXPECT_EQ(fixture.time_store.DeleteRow(row).code(),
            StatusCode::kNotFound);
}

TEST(AuxStoreTest, SwapDeleteKeepsIndexConsistent) {
  StoreFixture fixture = MakeFixture();
  // Delete groups one by one until empty; every delete must find its
  // group even after swaps.
  const CompressionPlan& plan = fixture.derivation.aux_for("sale").plan;
  while (fixture.sale_store.NumRows() > 0) {
    const Tuple row = fixture.sale_store.contents().row(0);
    Tuple group = {row[0], row[1]};
    std::vector<Value> sums = {row[plan.SumColumnIndex("price")]};
    MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(
        group, sums, -row[plan.CountColumnIndex()].AsInt64()));
  }
  EXPECT_EQ(fixture.sale_store.NumRows(), 0u);
}

TEST(AuxStoreTest, MissingGroupErrorNamesViewGroupAndColumn) {
  StoreFixture fixture = MakeFixture();
  // Recreate the sale store with an owning view, as the engine does.
  RetailWarehouse warehouse = SmallRetail();
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(warehouse.catalog, fixture.derivation);
  MD_CHECK(materialized.ok());
  MD_ASSERT_OK_AND_ASSIGN(
      AuxStore owned,
      AuxStore::Create(fixture.derivation.aux_for("sale"),
                       std::move(materialized->at("sale")),
                       "product_sales"));
  const Status status = owned.ApplyGroupDelta(
      {Value(int64_t{12345}), Value(int64_t{6789})}, {Value(1.0)}, -1);
  ASSERT_EQ(status.code(), StatusCode::kFailedPrecondition);
  const std::string& message = status.message();
  // The error must pinpoint the view, the group key, and the column.
  EXPECT_NE(message.find("of view 'product_sales'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("12345"), std::string::npos) << message;
  EXPECT_NE(message.find("6789"), std::string::npos) << message;
  const CompressionPlan& plan = fixture.derivation.aux_for("sale").plan;
  const std::string& cnt_col =
      plan.columns[plan.CountColumnIndex()].output_name;
  EXPECT_NE(message.find(StrCat("'", cnt_col, "'")), std::string::npos)
      << message;
}

TEST(AuxStoreTest, NegativeCountErrorShowsArithmetic) {
  StoreFixture fixture = MakeFixture();
  const Tuple group = {Value(int64_t{999}), Value(int64_t{888})};
  MD_ASSERT_OK(fixture.sale_store.ApplyGroupDelta(group, {Value(10.0)}, 1));
  const Status status =
      fixture.sale_store.ApplyGroupDelta(group, {Value(20.0)}, -2);
  ASSERT_EQ(status.code(), StatusCode::kFailedPrecondition);
  const std::string& message = status.message();
  EXPECT_NE(message.find("count negative"), std::string::npos) << message;
  EXPECT_NE(message.find("1 + -2 = -1"), std::string::npos) << message;
  EXPECT_NE(message.find("999"), std::string::npos) << message;
}

TEST(AuxStoreTest, CreateRejectsSchemaMismatch) {
  StoreFixture fixture = MakeFixture();
  Table wrong("wrong", Schema({{"x", ValueType::kInt64}}));
  Result<AuxStore> store =
      AuxStore::Create(fixture.derivation.aux_for("sale"),
                       std::move(wrong));
  EXPECT_FALSE(store.ok());
}

}  // namespace
}  // namespace mindetail
