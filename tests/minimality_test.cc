// Minimality spot checks (paper Theorem 1): no auxiliary view, and no
// column of an auxiliary view, can be dropped without losing the
// ability to maintain V. The proof technique is indistinguishability:
// we exhibit two warehouse states whose auxiliary views — with the
// candidate piece removed — are identical, yet whose views V differ.
// Any maintenance procedure reading only the reduced detail data would
// therefore have to produce the same (wrong) answer for one of them.

#include "core/derive.h"
#include "core/reconstruct.h"
#include "gpsj/evaluator.h"
#include "gtest/gtest.h"
#include "relational/ops.h"
#include "test_util.h"

namespace mindetail {
namespace {

using test::TablesApproxEqual;

// Builds the paper's product_sales view over the Table-3 fixture
// schema.
Result<GpsjViewDef> PaperView(const Catalog& catalog) {
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .CountDistinct("product", "brand", "DifferentBrands");
  return builder.Build(catalog);
}

struct Materialized {
  std::map<std::string, Table> aux;
  Table view;
};

Materialized MaterializeAll(const Catalog& catalog) {
  Result<GpsjViewDef> def = PaperView(catalog);
  MD_CHECK(def.ok());
  Result<Derivation> derivation = Derivation::Derive(*def, catalog);
  MD_CHECK(derivation.ok());
  Result<std::map<std::string, Table>> aux =
      MaterializeAuxViews(catalog, *derivation);
  MD_CHECK(aux.ok());
  Result<Table> view = EvaluateGpsj(catalog, *def);
  MD_CHECK(view.ok());
  return Materialized{std::move(aux).value(), std::move(view).value()};
}

// Projects `table` onto all columns except `dropped`.
Table DropColumn(const Table& table, const std::string& dropped) {
  std::vector<std::string> kept;
  for (const Attribute& attr : table.schema().attributes()) {
    if (attr.name != dropped) kept.push_back(attr.name);
  }
  Result<Table> projected = Project(table, kept, /*distinct=*/true);
  MD_CHECK(projected.ok());
  return std::move(projected).value();
}

// Asserts the indistinguishability pattern: aux views of `a` and `b`
// agree once `column` is dropped from `table`'s auxiliary view, yet the
// views differ.
void ExpectColumnIsLoadBearing(const Catalog& a, const Catalog& b,
                               const std::string& table,
                               const std::string& column) {
  Materialized ma = MaterializeAll(a);
  Materialized mb = MaterializeAll(b);
  // All other auxiliary views agree fully.
  for (const auto& [name, aux_a] : ma.aux) {
    if (name == table) continue;
    EXPECT_TRUE(TablesEqualAsBags(aux_a, mb.aux.at(name)))
        << "unexpected difference in " << name;
  }
  // The candidate auxiliary view agrees after dropping the column.
  EXPECT_TRUE(TablesEqualAsBags(DropColumn(ma.aux.at(table), column),
                                DropColumn(mb.aux.at(table), column)))
      << "states are distinguishable even without " << column;
  // Yet the views differ: the column carried necessary information.
  EXPECT_FALSE(TablesEqualAsBags(ma.view, mb.view))
      << "views agree; the column would not be load-bearing";
}

// cnt0 is necessary: one vs two duplicates of the same compressed
// group.
TEST(MinimalityTest, CountColumnIsNecessary) {
  Catalog one = test::PaperTable3Fixture();
  Catalog two = test::PaperTable3Fixture();
  // `one` already holds sales 1 and 2 as duplicates of (1,1,10); remove
  // sale 2 from `one` so the states differ only in duplicate count.
  MD_ASSERT_OK((*one.MutableTable("sale"))->DeleteByKey(Value(2)));
  // Align sums: dropping one 10-priced duplicate changes sum_price too,
  // so compensate by splitting the remaining duplicate's price.
  // Simpler: compare with cnt0 AND sum dropped? No — drop only cnt0 and
  // make sums equal by construction: replace sale 1's price by 20 in
  // `one` (sum 20 = 10 + 10 in `two`).
  MD_ASSERT_OK((*one.MutableTable("sale"))->DeleteByKey(Value(1)));
  MD_ASSERT_OK((*one.MutableTable("sale"))
                   ->Insert({Value(1), Value(1), Value(1), Value(20)}));
  ExpectColumnIsLoadBearing(one, two, "sale", "cnt0");
}

// sum_price is necessary: same groups and counts, different prices.
TEST(MinimalityTest, SumColumnIsNecessary) {
  Catalog a = test::PaperTable3Fixture();
  Catalog b = test::PaperTable3Fixture();
  Table* sale = *b.MutableTable("sale");
  MD_ASSERT_OK(sale->DeleteByKey(Value(3)));
  MD_ASSERT_OK(sale->Insert({Value(3), Value(1), Value(2), Value(99)}));
  ExpectColumnIsLoadBearing(a, b, "sale", "sum_price");
}

// The month column of timeDTL is necessary: flip a month, everything
// else identical.
TEST(MinimalityTest, DimensionGroupColumnIsNecessary) {
  Catalog a = test::PaperTable3Fixture();
  Catalog b = test::PaperTable3Fixture();
  Table* time = *b.MutableTable("time");
  MD_ASSERT_OK(time->DeleteByKey(Value(2)));
  MD_ASSERT_OK(time->Insert({Value(2), Value(7), Value(1997)}));
  ExpectColumnIsLoadBearing(a, b, "time", "month");
}

// The brand column of productDTL is necessary for COUNT(DISTINCT).
TEST(MinimalityTest, DimensionDistinctColumnIsNecessary) {
  Catalog a = test::PaperTable3Fixture();
  Catalog b = test::PaperTable3Fixture();
  Table* product = *b.MutableTable("product");
  MD_ASSERT_OK(product->DeleteByKey(Value(2)));
  MD_ASSERT_OK(product->Insert({Value(2), Value("Alpha")}));
  ExpectColumnIsLoadBearing(a, b, "product", "brand");
}

// The join column timeid of saleDTL is necessary. Construct two states
// whose compressed groups are mirror images across the two time ids:
// state A has {t1: 2 sales, t2: 1 sale}, state B has {t1: 1, t2: 2},
// all with the same product and price. Dropping timeid leaves the same
// bag {(p1, 20, 2), (p1, 10, 1)}, but the months differ per time id so
// the views disagree.
TEST(MinimalityTest, JoinColumnIsNecessary) {
  auto make_state = [](bool flipped) {
    Catalog catalog = test::PaperTable3Fixture();
    Table* time = *catalog.MutableTable("time");
    MD_CHECK(time->DeleteByKey(Value(2)).ok());
    MD_CHECK(time->Insert({Value(2), Value(7), Value(1997)}).ok());
    Table* sale = *catalog.MutableTable("sale");
    for (int id = 1; id <= 6; ++id) {
      (void)sale->DeleteByKey(Value(id));
    }
    const int64_t heavy = flipped ? 2 : 1;  // Time id with two sales.
    const int64_t light = flipped ? 1 : 2;
    MD_CHECK(
        sale->Insert({Value(1), Value(heavy), Value(1), Value(10)}).ok());
    MD_CHECK(
        sale->Insert({Value(2), Value(heavy), Value(1), Value(10)}).ok());
    MD_CHECK(
        sale->Insert({Value(3), Value(light), Value(1), Value(10)}).ok());
    return catalog;
  };
  Catalog a = make_state(false);
  Catalog b = make_state(true);

  Materialized ma = MaterializeAll(a);
  Materialized mb = MaterializeAll(b);
  const Table pa = DropColumn(ma.aux.at("sale"), "timeid");
  const Table pb = DropColumn(mb.aux.at("sale"), "timeid");
  ASSERT_TRUE(TablesEqualAsBags(pa, pb));
  for (const std::string other : {"time", "product"}) {
    EXPECT_TRUE(TablesEqualAsBags(ma.aux.at(other), mb.aux.at(other)));
  }
  EXPECT_FALSE(TablesEqualAsBags(ma.view, mb.view));
}

// A whole auxiliary view is necessary: two states with identical
// saleDTL and timeDTL but different productDTL have different views, so
// productDTL cannot be omitted.
TEST(MinimalityTest, ProductAuxViewIsNecessary) {
  Catalog a = test::PaperTable3Fixture();
  Catalog b = test::PaperTable3Fixture();
  Table* product = *b.MutableTable("product");
  MD_ASSERT_OK(product->DeleteByKey(Value(2)));
  MD_ASSERT_OK(product->Insert({Value(2), Value("Alpha")}));
  Materialized ma = MaterializeAll(a);
  Materialized mb = MaterializeAll(b);
  EXPECT_TRUE(TablesEqualAsBags(ma.aux.at("sale"), mb.aux.at("sale")));
  EXPECT_TRUE(TablesEqualAsBags(ma.aux.at("time"), mb.aux.at("time")));
  EXPECT_FALSE(TablesEqualAsBags(ma.view, mb.view));
}

// Conversely, tuples excluded by local reduction really are redundant:
// adding 1996 time rows (filtered by year = 1997) changes nothing.
TEST(MinimalityTest, LocallyReducedTuplesAreRedundant) {
  Catalog a = test::PaperTable3Fixture();
  Catalog b = test::PaperTable3Fixture();
  Table* time = *b.MutableTable("time");
  MD_ASSERT_OK(time->Insert({Value(77), Value(3), Value(1996)}));
  Materialized ma = MaterializeAll(a);
  Materialized mb = MaterializeAll(b);
  for (const auto& [name, aux_a] : ma.aux) {
    EXPECT_TRUE(TablesEqualAsBags(aux_a, mb.aux.at(name))) << name;
  }
  EXPECT_TRUE(TablesEqualAsBags(ma.view, mb.view));
}

}  // namespace
}  // namespace mindetail
