// Focused coverage for paths the broader suites touch only obliquely:
// scalar (group-by-free) view maintenance, snowflake chain updates,
// operator edge cases, and summary-store internals.

#include "core/reconstruct.h"
#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "relational/ops.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;
using test::TablesApproxEqual;

// --- Scalar views -------------------------------------------------------

TEST(ScalarViewTest, MaintainedThroughInsertsAndDeletes) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("totals");
  builder.From("sale")
      .CountStar("Cnt")
      .Sum("sale", "price", "Total")
      .Max("sale", "price", "MaxPrice");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(catalog, def));

  MD_ASSERT_OK_AND_ASSIGN(Table initial, engine.View());
  ASSERT_EQ(initial.NumRows(), 1u);
  EXPECT_EQ(initial.row(0)[0], Value(6));
  EXPECT_EQ(initial.row(0)[1], Value(115));
  EXPECT_EQ(initial.row(0)[2], Value(30));

  // Delete the only 30-priced rows: MAX must drop to 25 via recompute.
  Delta drop;
  drop.deletes.push_back({Value(3), Value(1), Value(2), Value(30)});
  drop.deletes.push_back({Value(6), Value(2), Value(2), Value(30)});
  MD_ASSERT_OK(engine.Apply("sale", drop));
  MD_ASSERT_OK(ApplyDelta(*catalog.MutableTable("sale"), drop));
  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(catalog, def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
  EXPECT_EQ(view.row(0)[2], Value(25));
}

TEST(ScalarViewTest, EmptiesOutToSqlScalarSemantics) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("totals");
  builder.From("sale").CountStar("Cnt").Sum("sale", "price", "Total");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(catalog, def));

  // Delete every sale; the scalar row must read COUNT = 0, SUM = NULL.
  Delta drop;
  const Table* sale = *catalog.GetTable("sale");
  drop.deletes = sale->rows();
  MD_ASSERT_OK(engine.Apply("sale", drop));
  MD_ASSERT_OK(ApplyDelta(*catalog.MutableTable("sale"), drop));

  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(catalog, def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
  ASSERT_EQ(view.NumRows(), 1u);
  EXPECT_EQ(view.row(0)[0], Value(0));
  EXPECT_TRUE(view.row(0)[1].is_null());

  // And refills.
  Delta refill;
  refill.inserts.push_back({Value(50), Value(1), Value(1), Value(40)});
  MD_ASSERT_OK(engine.Apply("sale", refill));
  MD_ASSERT_OK(ApplyDelta(*catalog.MutableTable("sale"), refill));
  MD_ASSERT_OK_AND_ASSIGN(Table after, engine.View());
  EXPECT_EQ(after.row(0)[0], Value(1));
  EXPECT_EQ(after.row(0)[1], Value(40));
}

// --- Snowflake chains ---------------------------------------------------

// A dim-of-dim (category behind product) update must flow through two
// joins in the delta join.
TEST(SnowflakeChainTest, GrandparentAttributeUpdate) {
  SnowflakeParams params;
  params.depth = 2;
  params.fanout = 1;
  params.fact_rows = 200;
  params.dim_rows = 10;
  params.seed = 31;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(params));
  Catalog& source = warehouse.catalog;
  // fact -> dim0 -> dim1; group by dim1.a.
  GpsjViewBuilder builder("chain");
  builder.From("fact")
      .From("dim0")
      .From("dim1")
      .Join("fact", "fk_dim0", "dim0")
      .Join("dim0", "fk_dim1", "dim1")
      .GroupBy("dim1", "a", "LeafA")
      .Sum("fact", "m2", "SumM2")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(source));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));

  // Rewrite dim1.a for a few rows (protected updates two hops from the
  // fact table).
  const Table* dim1 = *source.GetTable("dim1");
  Delta updates;
  for (size_t i = 0; i < 3; ++i) {
    const Tuple& row = dim1->row(i);
    Tuple after = row;
    const size_t a_idx = *dim1->schema().IndexOf("a");
    after[a_idx] = Value(row[a_idx].AsInt64() == 0 ? int64_t{4}
                                                   : int64_t{0});
    updates.updates.push_back(Update{row, after});
  }
  MD_ASSERT_OK(engine.Apply("dim1", updates));
  MD_ASSERT_OK(ApplyDelta(*source.MutableTable("dim1"), updates));
  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

// Middle-of-chain table: both a join source and a join target; its
// auxiliary view keeps its key and its child link attribute.
TEST(SnowflakeChainTest, MiddleTableReductionKeepsBothJoinAttrs) {
  SnowflakeParams params;
  params.depth = 2;
  params.fanout = 1;
  params.fact_rows = 50;
  params.dim_rows = 8;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(params));
  GpsjViewBuilder builder("chain");
  builder.From("fact")
      .From("dim0")
      .From("dim1")
      .Join("fact", "fk_dim0", "dim0")
      .Join("dim0", "fk_dim1", "dim1")
      .GroupBy("dim1", "a", "LeafA")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          builder.Build(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  const AuxViewDef& middle = derivation.aux_for("dim0");
  EXPECT_FALSE(middle.plan.compressed);  // Key retained.
  EXPECT_GE(middle.plan.PlainColumnIndex("id"), 0);
  EXPECT_GE(middle.plan.PlainColumnIndex("fk_dim1"), 0);
  // Its semijoin dependency points at its own child.
  ASSERT_EQ(middle.dependencies.size(), 1u);
  EXPECT_EQ(middle.dependencies[0].to_table, "dim1");
}

// --- Operator edges -----------------------------------------------------

TEST(OpsEdgeTest, HashJoinWithDuplicateKeysOnBothSides) {
  Table left("l", Schema({{"k", ValueType::kInt64},
                          {"lv", ValueType::kInt64}}));
  Table right("r", Schema({{"rk", ValueType::kInt64},
                           {"rv", ValueType::kInt64}}));
  for (int i = 0; i < 2; ++i) {
    MD_ASSERT_OK(left.Insert({Value(1), Value(i)}));
    MD_ASSERT_OK(right.Insert({Value(1), Value(10 + i)}));
  }
  MD_ASSERT_OK_AND_ASSIGN(Table out, HashJoin(left, right, "k", "rk"));
  EXPECT_EQ(out.NumRows(), 4u);  // Cross product within the key group.
}

TEST(OpsEdgeTest, GroupAggregateMultipleGroupColumns) {
  Table t("t", Schema({{"a", ValueType::kInt64},
                       {"b", ValueType::kString},
                       {"v", ValueType::kInt64}}));
  MD_ASSERT_OK(t.Insert({Value(1), Value("x"), Value(5)}));
  MD_ASSERT_OK(t.Insert({Value(1), Value("y"), Value(6)}));
  MD_ASSERT_OK(t.Insert({Value(1), Value("x"), Value(7)}));
  MD_ASSERT_OK_AND_ASSIGN(
      Table out,
      GroupAggregate(t, {"a", "b"},
                     {{AggFn::kSum, "v", false, "total"}}));
  ASSERT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.row(0)[2], Value(12));  // (1,'x').
  EXPECT_EQ(out.row(1)[2], Value(6));   // (1,'y').
}

TEST(OpsEdgeTest, SemiJoinMissingAttributesError) {
  Table l("l", Schema({{"a", ValueType::kInt64}}));
  Table r("r", Schema({{"b", ValueType::kInt64}}));
  EXPECT_FALSE(SemiJoin(l, r, "zzz", "b").ok());
  EXPECT_FALSE(SemiJoin(l, r, "a", "zzz").ok());
}

// --- Contribution internals --------------------------------------------

TEST(ContributionsTest, ShapeMatchesSummaryExpectations) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesCsmasView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(warehouse.catalog, derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  std::map<std::string, const Table*> aux;
  for (const auto& [name, table] : *materialized) {
    aux.emplace(name, &table);
  }
  MD_ASSERT_OK_AND_ASSIGN(
      Table contributions,
      ComputeContributions(derivation, aux,
                           OutputSupplierTables(derivation, true)));
  // Columns: time.month, __cnt, __sum_TotalPrice, __sum_AvgPrice.
  EXPECT_TRUE(contributions.schema().Contains("time.month"));
  EXPECT_TRUE(contributions.schema().Contains("__cnt"));
  EXPECT_TRUE(contributions.schema().Contains("__sum_TotalPrice"));
  EXPECT_TRUE(contributions.schema().Contains("__sum_AvgPrice"));
  // Total count across contributions equals the view's total count.
  MD_ASSERT_OK_AND_ASSIGN(Table oracle,
                          EvaluateGpsj(warehouse.catalog, def));
  int64_t contrib_total = 0;
  const size_t cnt_idx = *contributions.schema().IndexOf("__cnt");
  for (const Tuple& row : contributions.rows()) {
    contrib_total += row[cnt_idx].AsInt64();
  }
  int64_t oracle_total = 0;
  const size_t oracle_cnt = 1;  // TotalCount is the second output? No:
  // outputs: month, TotalPrice, TotalCount, AvgPrice → index 2.
  (void)oracle_cnt;
  for (const Tuple& row : oracle.rows()) {
    oracle_total += row[2].AsInt64();
  }
  EXPECT_EQ(contrib_total, oracle_total);
}

// --- Engine misc --------------------------------------------------------

TEST(EngineMiscTest, EmptyDeltaIsCheapNoOp) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine engine,
      SelfMaintenanceEngine::Create(warehouse.catalog, def));
  MD_ASSERT_OK_AND_ASSIGN(Table before, engine.View());
  MD_ASSERT_OK(engine.Apply("sale", Delta{}));
  EXPECT_EQ(engine.stats().delta_joins_planned, 0u);
  EXPECT_EQ(engine.stats().delta_joins_executed, 0u);
  MD_ASSERT_OK_AND_ASSIGN(Table after, engine.View());
  EXPECT_TRUE(TablesEqualAsBags(before, after));
}

TEST(EngineMiscTest, UnknownTableRejected) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesCsmasView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine engine,
      SelfMaintenanceEngine::Create(warehouse.catalog, def));
  Delta delta;
  delta.inserts.push_back({Value(1), Value("a"), Value("b")});
  EXPECT_EQ(engine.Apply("product", delta).code(), StatusCode::kNotFound);
}

TEST(EngineMiscTest, SingleDimensionViewRootIsTheDimension) {
  // A view over one dimension table alone: that table is the root.
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("brands");
  builder.From("product")
      .GroupBy("product", "brand")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(catalog, def));
  EXPECT_EQ(engine.derivation().root(), "product");
  EXPECT_FALSE(engine.HasAux("product"));  // All-CSMAS ⇒ eliminated.

  Delta delta;
  delta.inserts.push_back({Value(77), Value("Alpha")});
  delta.deletes.push_back({Value(2), Value("Beta")});
  MD_ASSERT_OK(engine.Apply("product", delta));
  MD_ASSERT_OK(ApplyDelta(*catalog.MutableTable("product"), delta));
  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(catalog, def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

}  // namespace
}  // namespace mindetail
