#include "maintenance/engine.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesApproxEqual;

// Applies the same deltas to the engine (which never sees base tables)
// and to the source catalog (ground truth), then compares the engine's
// view and auxiliary views against fresh evaluation.
class EngineHarness {
 public:
  EngineHarness(RetailWarehouse warehouse, GpsjViewDef def,
                EngineOptions options = EngineOptions{})
      : source_(std::move(warehouse.catalog)), def_(std::move(def)) {
    Result<SelfMaintenanceEngine> engine =
        SelfMaintenanceEngine::Create(source_, def_, options);
    MD_CHECK(engine.ok());
    engine_.emplace(std::move(engine).value());
  }

  Status Apply(const std::string& table, const Delta& delta) {
    MD_RETURN_IF_ERROR(engine_->Apply(table, delta));
    Result<Table*> base = source_.MutableTable(table);
    MD_RETURN_IF_ERROR(base.status());
    return ApplyDelta(*base, delta);
  }

  ::testing::AssertionResult ViewMatchesOracle() {
    Result<Table> view = engine_->View();
    if (!view.ok()) {
      return ::testing::AssertionFailure() << view.status();
    }
    Result<Table> oracle = EvaluateGpsj(source_, def_);
    if (!oracle.ok()) {
      return ::testing::AssertionFailure() << oracle.status();
    }
    return TablesApproxEqual(*view, *oracle);
  }

  ::testing::AssertionResult AuxMatchesFreshMaterialization() {
    Result<std::map<std::string, Table>> fresh =
        MaterializeAuxViews(source_, engine_->derivation());
    if (!fresh.ok()) {
      return ::testing::AssertionFailure() << fresh.status();
    }
    for (const auto& [table, expected] : *fresh) {
      if (!engine_->HasAux(table)) {
        return ::testing::AssertionFailure()
               << "engine lacks auxiliary view for " << table;
      }
      ::testing::AssertionResult result =
          TablesApproxEqual(engine_->AuxContents(table), expected);
      if (!result) {
        return ::testing::AssertionFailure()
               << "auxiliary view of " << table << ": "
               << result.message();
      }
    }
    return ::testing::AssertionSuccess();
  }

  Catalog& source() { return source_; }
  SelfMaintenanceEngine& engine() { return *engine_; }

 private:
  Catalog source_;
  GpsjViewDef def_;
  std::optional<SelfMaintenanceEngine> engine_;
};

GpsjViewDef MustProductSales(const Catalog& catalog) {
  Result<GpsjViewDef> def = ProductSalesView(catalog);
  MD_CHECK(def.ok());
  return std::move(def).value();
}

TEST(EngineTest, InitialViewMatchesOracle) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  EXPECT_TRUE(harness.ViewMatchesOracle());
  EXPECT_TRUE(harness.AuxMatchesFreshMaterialization());
}

TEST(EngineTest, FactInsertions) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  RetailDeltaGenerator gen(7);
  for (int round = 0; round < 5; ++round) {
    Result<Delta> delta = gen.SaleInsertions(harness.source(), 30);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("sale", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
  EXPECT_TRUE(harness.AuxMatchesFreshMaterialization());
}

TEST(EngineTest, FactDeletions) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  RetailDeltaGenerator gen(8);
  for (int round = 0; round < 5; ++round) {
    Result<Delta> delta = gen.SaleDeletions(harness.source(), 25);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("sale", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
  EXPECT_TRUE(harness.AuxMatchesFreshMaterialization());
}

TEST(EngineTest, FactUpdates) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  RetailDeltaGenerator gen(9);
  for (int round = 0; round < 5; ++round) {
    Result<Delta> delta = gen.SalePriceUpdates(harness.source(), 20);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("sale", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
}

TEST(EngineTest, MixedFactBatches) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  RetailDeltaGenerator gen(10);
  for (int round = 0; round < 8; ++round) {
    Result<Delta> delta =
        gen.MixedSaleBatch(harness.source(), 15, 10, 8);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("sale", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
  EXPECT_TRUE(harness.AuxMatchesFreshMaterialization());
}

TEST(EngineTest, DimensionInsertionsAreShielded) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  RetailDeltaGenerator gen(11);
  Result<Delta> delta = gen.ProductInsertions(harness.source(), 5);
  ASSERT_TRUE(delta.ok()) << delta.status();
  const uint64_t joins_before =
      harness.engine().stats().delta_joins_planned;
  MD_ASSERT_OK(harness.Apply("product", *delta));
  EXPECT_TRUE(harness.ViewMatchesOracle());
  EXPECT_TRUE(harness.AuxMatchesFreshMaterialization());
  // Shielded joins are never even planned, let alone executed.
  EXPECT_EQ(harness.engine().stats().delta_joins_planned, joins_before);
  EXPECT_GE(harness.engine().stats().shielded_skips, 1u);
}

TEST(EngineTest, ProductBrandUpdatesFlowThroughDeltaJoin) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  RetailDeltaGenerator gen(12);
  for (int round = 0; round < 4; ++round) {
    Result<Delta> delta = gen.ProductBrandUpdates(harness.source(), 6);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("product", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
  EXPECT_TRUE(harness.AuxMatchesFreshMaterialization());
  EXPECT_GT(harness.engine().stats().delta_joins_executed, 0u);
  // Without a shared-plan cache every planned join runs locally.
  EXPECT_EQ(harness.engine().stats().delta_joins_planned,
            harness.engine().stats().delta_joins_executed);
  EXPECT_EQ(harness.engine().stats().delta_joins_reused, 0u);
}

TEST(EngineTest, ExposedUpdateWithoutFlagRejected) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  Catalog& source = warehouse.catalog;
  const Table* time = *source.GetTable("time");
  const Tuple before = time->row(0);
  Tuple after = before;
  after[3] = Value(after[3].AsInt64() == 1997 ? int64_t{1996}
                                              : int64_t{1997});
  EngineHarness harness(std::move(warehouse), def);
  Delta delta;
  delta.updates.push_back(Update{before, after});
  Status status = harness.engine().Apply("time", delta);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, ExposedUpdatesWithFlagMaintainView) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK(warehouse.catalog.SetExposedUpdates("time", true));
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);

  // Flip a 1997 day to 1996 (its sales leave the view) and a 1996 day
  // to 1997 (its sales enter).
  const Table* time = *harness.source().GetTable("time");
  std::vector<Update> flips;
  for (const Tuple& row : time->rows()) {
    if (flips.size() >= 2) break;
    Tuple after = row;
    after[3] = Value(row[3].AsInt64() == 1997 ? int64_t{1996}
                                              : int64_t{1997});
    flips.push_back(Update{row, after});
  }
  ASSERT_EQ(flips.size(), 2u);
  for (const Update& flip : flips) {
    Delta delta;
    delta.updates.push_back(flip);
    MD_ASSERT_OK(harness.Apply("time", delta));
    ASSERT_TRUE(harness.ViewMatchesOracle());
  }
  EXPECT_TRUE(harness.AuxMatchesFreshMaterialization());
}

TEST(EngineTest, KeyChangeRejected) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  const Table* product = *warehouse.catalog.GetTable("product");
  const Tuple before = product->row(0);
  Tuple after = before;
  after[0] = Value(int64_t{99999});
  EngineHarness harness(std::move(warehouse), def);
  Delta delta;
  delta.updates.push_back(Update{before, after});
  Status status = harness.engine().Apply("product", delta);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, DeletingFromMissingGroupFails) {
  // A deletion whose compressed group never existed is detectable and
  // must be rejected. (A bogus deletion landing in an *existing* group
  // is inherently undetectable after compression — the engine trusts
  // the source's delta stream; see the docs.) Add a product that never
  // sold, then delete a fabricated sale of it.
  RetailWarehouse warehouse = SmallRetail();
  Table* product = *warehouse.catalog.MutableTable("product");
  MD_ASSERT_OK(product->Insert(
      {Value(int64_t{777}), Value("ghost"), Value("cat0")}));
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  Delta delta;
  // timeid 10 is a 1997 day in SmallRetail (days 7..12), product 777
  // exists in productDTL, but the group (10, 777) has no sales.
  delta.deletes.push_back({Value(int64_t{123456}), Value(int64_t{10}),
                           Value(int64_t{777}), Value(int64_t{1}),
                           Value(9.5)});
  Status status = harness.engine().Apply("sale", delta);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// MIN/MAX maintenance: inserts, then deletes that force affected-group
// recomputation from the auxiliary views.
TEST(EngineTest, MinMaxRecomputedOnDeletes) {
  RetailWarehouse warehouse = SmallRetail();
  Result<GpsjViewDef> def = ProductSalesMaxView(warehouse.catalog);
  ASSERT_TRUE(def.ok()) << def.status();
  EngineHarness harness(std::move(warehouse), *def);
  RetailDeltaGenerator gen(13);
  for (int round = 0; round < 6; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(harness.source(), 10, 12, 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("sale", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
  EXPECT_GT(harness.engine().stats().group_recomputes, 0u);
}

// The eliminated-root configuration: no fact auxiliary view at all, yet
// the view self-maintains under fact changes and dimension updates.
TEST(EngineTest, EliminatedRootMaintainsThroughFactChanges) {
  RetailWarehouse warehouse = SmallRetail();
  Result<GpsjViewDef> def = SalesByProductKeyView(warehouse.catalog);
  ASSERT_TRUE(def.ok()) << def.status();
  EngineHarness harness(std::move(warehouse), *def);
  EXPECT_FALSE(harness.engine().HasAux("sale"));
  EXPECT_TRUE(harness.ViewMatchesOracle());

  RetailDeltaGenerator gen(14);
  for (int round = 0; round < 6; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(harness.source(), 12, 8, 6);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("sale", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
}

TEST(EngineTest, EliminatedRootHandlesKeyGroupedDimensionUpdates) {
  RetailWarehouse warehouse = SmallRetail();
  Result<GpsjViewDef> def = SalesByProductKeyView(warehouse.catalog);
  ASSERT_TRUE(def.ok()) << def.status();
  EngineHarness harness(std::move(warehouse), *def);
  RetailDeltaGenerator gen(15);
  for (int round = 0; round < 4; ++round) {
    Result<Delta> delta = gen.ProductBrandUpdates(harness.source(), 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("product", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
}

TEST(EngineTest, StorageAccountingIsPositiveAndCompressed) {
  RetailWarehouse warehouse = SmallRetail();
  Catalog source_copy = warehouse.catalog;
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineHarness harness(std::move(warehouse), def);
  const uint64_t aux_bytes = harness.engine().AuxPaperSizeBytes();
  EXPECT_GT(aux_bytes, 0u);
  // The compressed auxiliary views must be smaller than the raw fact
  // table under the same accounting.
  const Table* sale = *source_copy.GetTable("sale");
  EXPECT_LT(aux_bytes, sale->PaperSizeBytes());
}

TEST(EngineTest, UnprunedDeltaJoinsStillCorrect) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineOptions options;
  options.prune_delta_joins = false;
  EngineHarness harness(std::move(warehouse), def, options);
  RetailDeltaGenerator gen(18);
  for (int round = 0; round < 4; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(harness.source(), 15, 10, 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(harness.Apply("sale", *delta));
    ASSERT_TRUE(harness.ViewMatchesOracle()) << "round " << round;
  }
  Result<Delta> brands = gen.ProductBrandUpdates(harness.source(), 5);
  ASSERT_TRUE(brands.ok()) << brands.status();
  MD_ASSERT_OK(harness.Apply("product", *brands));
  EXPECT_TRUE(harness.ViewMatchesOracle());
}

TEST(EngineTest, UntrustedRiStillCorrect) {
  RetailWarehouse warehouse = SmallRetail();
  GpsjViewDef def = MustProductSales(warehouse.catalog);
  EngineOptions options;
  options.trust_referential_integrity = false;
  EngineHarness harness(std::move(warehouse), def, options);
  RetailDeltaGenerator gen(16);
  Result<Delta> products = gen.ProductInsertions(harness.source(), 4);
  ASSERT_TRUE(products.ok()) << products.status();
  MD_ASSERT_OK(harness.Apply("product", *products));
  EXPECT_TRUE(harness.ViewMatchesOracle());
  // The general path ran (no shielded skip).
  EXPECT_EQ(harness.engine().stats().shielded_skips, 0u);
}

}  // namespace
}  // namespace mindetail
