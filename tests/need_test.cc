#include "core/need.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;

// The paper's running example: time is annotated g, so Need(time) =
// {sale} ∪ Need(sale), and Need(sale) = Need₀(sale) = {time} (only the
// time subtree contains an annotated vertex).
TEST(NeedTest, ProductSalesNeedSets) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      ExtendedJoinGraph graph,
      ExtendedJoinGraph::Build(def, warehouse.catalog));

  EXPECT_EQ(Need(graph, "sale"), (std::set<std::string>{"time"}));
  EXPECT_EQ(Need(graph, "time"),
            (std::set<std::string>{"sale", "time"}));
  EXPECT_EQ(Need(graph, "product"),
            (std::set<std::string>{"sale", "time"}));

  auto all = AllNeedSets(graph);
  EXPECT_TRUE(IsInAnyOtherNeedSet(all, "sale"));   // In Need(time).
  EXPECT_TRUE(IsInAnyOtherNeedSet(all, "time"));   // In Need(sale).
  EXPECT_FALSE(IsInAnyOtherNeedSet(all, "product"));
}

// A k-annotated vertex has an empty Need set (its key identifies the
// affected view tuples directly), and Need₀ stops below it.
TEST(NeedTest, KeyAnnotationEmptiesNeedAndStopsNeed0) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          SalesByProductKeyView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      ExtendedJoinGraph graph,
      ExtendedJoinGraph::Build(def, warehouse.catalog));

  EXPECT_TRUE(Need(graph, "product").empty());
  EXPECT_EQ(Need(graph, "sale"), (std::set<std::string>{"product"}));
  auto all = AllNeedSets(graph);
  EXPECT_FALSE(IsInAnyOtherNeedSet(all, "sale"));
}

// With no annotated vertex at all (scalar view), Need₀ is empty, but
// every non-k dimension still needs its ancestor chain.
TEST(NeedTest, ScalarViewNeeds) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("scalar");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(ExtendedJoinGraph graph,
                          ExtendedJoinGraph::Build(def, catalog));
  EXPECT_TRUE(Need(graph, "sale").empty());
  EXPECT_EQ(Need(graph, "product"), (std::set<std::string>{"sale"}));
}

// Group-by attributes on the fact table itself: no dimension carries an
// annotation, so Need₀(root) is empty even though the view groups.
TEST(NeedTest, RootGroupingNeedsNothing) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("by_root_attr");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("sale", "timeid")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(ExtendedJoinGraph graph,
                          ExtendedJoinGraph::Build(def, catalog));
  EXPECT_TRUE(Need(graph, "sale").empty());
}

// In a snowflake chain fact → d0 → d1 with a group-by on the leaf, the
// Need set of the root contains the full path to the annotated vertex.
TEST(NeedTest, ChainCollectsPathToAnnotatedLeaf) {
  Catalog catalog;
  MD_ASSERT_OK(catalog.CreateTable(
      "f",
      Schema({{"id", ValueType::kInt64}, {"d0id", ValueType::kInt64},
              {"v", ValueType::kInt64}}),
      "id"));
  MD_ASSERT_OK(catalog.CreateTable(
      "d0",
      Schema({{"id", ValueType::kInt64}, {"d1id", ValueType::kInt64}}),
      "id"));
  MD_ASSERT_OK(catalog.CreateTable(
      "d1", Schema({{"id", ValueType::kInt64}, {"g", ValueType::kInt64}}),
      "id"));
  MD_ASSERT_OK(catalog.AddForeignKey("f", "d0id", "d0"));
  MD_ASSERT_OK(catalog.AddForeignKey("d0", "d1id", "d1"));

  GpsjViewBuilder builder("chain");
  builder.From("f")
      .From("d0")
      .From("d1")
      .Join("f", "d0id", "d0")
      .Join("d0", "d1id", "d1")
      .GroupBy("d1", "g")
      .Sum("f", "v", "Total")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(ExtendedJoinGraph graph,
                          ExtendedJoinGraph::Build(def, catalog));

  EXPECT_EQ(Need(graph, "f"), (std::set<std::string>{"d0", "d1"}));
  EXPECT_EQ(Need(graph, "d0"), (std::set<std::string>{"f", "d0", "d1"}));
  EXPECT_EQ(Need(graph, "d1"),
            (std::set<std::string>{"f", "d0", "d1"}));
}

// Need(d0) under Definition 3 recurses through the parent chain; the
// parent itself is always included for non-k vertices.
TEST(NeedTest, NonKeyDimensionAlwaysNeedsAncestors) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      ExtendedJoinGraph graph,
      ExtendedJoinGraph::Build(def, warehouse.catalog));
  // product (unannotated) needs its parent sale and sale's needs.
  std::set<std::string> need = Need(graph, "product");
  EXPECT_TRUE(need.count("sale") > 0);
}

}  // namespace
}  // namespace mindetail
