// Serving-layer system tests: snapshot publication semantics (COW
// sharing, batch-boundary consistency, no publish without a commit), a
// differential stress stream comparing Query() roll-ups against direct
// GPSJ evaluation after every batch, and a readers-vs-writer
// concurrency stress (run under TSan via the `concurrency` label) that
// checks every concurrent read equals some committed batch boundary.

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gpsj/evaluator.h"
#include "gtest/gtest.h"
#include "maintenance/warehouse.h"
#include "serve/planner.h"
#include "snowflake_stream.h"
#include "test_util.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::GeneratedDelta;
using test::TablesApproxEqual;
using test::TablesExactlyEqual;

constexpr char kMonthlySql[] = R"sql(
  CREATE VIEW monthly_sales AS
  SELECT time.month, SUM(sale.price) AS TotalPrice, COUNT(*) AS Cnt
  FROM sale, time
  WHERE sale.timeid = time.id
  GROUP BY time.month
)sql";

constexpr char kPerStoreSql[] = R"sql(
  CREATE VIEW per_store AS
  SELECT store.city, COUNT(*) AS Cnt
  FROM sale, store
  WHERE sale.storeid = store.id
  GROUP BY store.city
)sql";

std::map<std::string, Delta> OneTable(const std::string& table,
                                      Delta delta) {
  std::map<std::string, Delta> changes;
  changes.emplace(table, std::move(delta));
  return changes;
}

// A valid fresh sale row for SmallRetail: (id, timeid, productid,
// storeid, price).
Tuple FreshSale(int64_t id) {
  return {Value(id), Value(int64_t{1}), Value(int64_t{1}),
          Value(int64_t{1}), Value(9.5)};
}

// -------------------------------------------------------------------
// Snapshot publication semantics.
// -------------------------------------------------------------------

TEST(SnapshotTest, PinnedSnapshotKeepsItsBatchBoundary) {
  RetailWarehouse retail = test::SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));

  std::shared_ptr<const WarehouseSnapshot> pinned =
      warehouse.CurrentSnapshot();
  ASSERT_NE(pinned, nullptr);
  MD_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> old_contents,
                          pinned->View("monthly_sales"));

  Delta delta;
  delta.inserts.push_back(FreshSale(900001));
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneTable("sale", delta)));

  // The pinned snapshot still serves the pre-batch contents; the
  // warehouse has moved on.
  MD_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> still_old,
                          pinned->View("monthly_sales"));
  EXPECT_EQ(old_contents.get(), still_old.get());
  MD_ASSERT_OK_AND_ASSIGN(Table fresh, warehouse.View("monthly_sales"));
  EXPECT_FALSE(TablesExactlyEqual(*old_contents, fresh));
  EXPECT_LT(pinned->version, warehouse.CurrentSnapshot()->version);
}

TEST(SnapshotTest, UntouchedViewsShareStateAcrossBatches) {
  RetailWarehouse retail = test::SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kPerStoreSql));
  std::shared_ptr<const WarehouseSnapshot> before =
      warehouse.CurrentSnapshot();

  // A store-only batch: per_store references store, monthly_sales does
  // not.
  Delta delta;
  delta.inserts.push_back({Value(int64_t{900001}), Value("1 New St"),
                           Value("Springfield"), Value("US"),
                           Value("Kim")});
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneTable("store", delta)));
  std::shared_ptr<const WarehouseSnapshot> after =
      warehouse.CurrentSnapshot();

  ASSERT_NE(before.get(), after.get());
  // Copy-on-write: the untouched view's entire serving state is the
  // same object; the touched view was re-rendered at the new version.
  EXPECT_EQ(before->views.at("monthly_sales").get(),
            after->views.at("monthly_sales").get());
  EXPECT_NE(before->views.at("per_store").get(),
            after->views.at("per_store").get());
  EXPECT_EQ(after->views.at("per_store")->version, after->version);
  EXPECT_LT(after->views.at("monthly_sales")->version, after->version);
}

TEST(SnapshotTest, RejectedAndDuplicateBatchesDoNotPublish) {
  RetailWarehouse retail = test::SmallRetail();
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
  std::shared_ptr<const WarehouseSnapshot> snap0 =
      warehouse.CurrentSnapshot();

  // Rejected: deleting a nonexistent sale fails admission control.
  Delta bad;
  bad.deletes.push_back(FreshSale(987654321));
  EXPECT_FALSE(warehouse.ApplyTransaction(OneTable("sale", bad)).ok());
  EXPECT_EQ(warehouse.CurrentSnapshot().get(), snap0.get());

  // Accepted: publishes a new snapshot.
  Delta good;
  good.inserts.push_back(FreshSale(900001));
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneTable("sale", good)));
  std::shared_ptr<const WarehouseSnapshot> snap1 =
      warehouse.CurrentSnapshot();
  EXPECT_NE(snap1.get(), snap0.get());

  // Duplicate resend: acknowledged as a no-op, nothing republished.
  MD_ASSERT_OK(warehouse.ApplyTransaction(OneTable("sale", good)));
  EXPECT_EQ(warehouse.CurrentSnapshot().get(), snap1.get());
  EXPECT_EQ(warehouse.ingest_stats().duplicates, 1u);
}

TEST(SnapshotTest, ReopenedWarehouseServesQueries) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mindetail_serve_reopen")
          .string();
  std::filesystem::remove_all(dir);
  RetailWarehouse retail = test::SmallRetail();
  const std::string sql =
      "SELECT SUM(sale.price) AS T, COUNT(*) AS C "
      "FROM sale, time WHERE sale.timeid = time.id";
  Table before;
  {
    MD_ASSERT_OK_AND_ASSIGN(Warehouse warehouse, Warehouse::Open(dir));
    MD_ASSERT_OK(warehouse.AddViewSql(retail.catalog, kMonthlySql));
    Delta delta;
    delta.inserts.push_back(FreshSale(900001));
    MD_ASSERT_OK(warehouse.ApplyTransaction(OneTable("sale", delta)));
    MD_ASSERT_OK_AND_ASSIGN(before, warehouse.Query(sql));
  }
  MD_ASSERT_OK_AND_ASSIGN(Warehouse reopened, Warehouse::Open(dir));
  ASSERT_NE(reopened.CurrentSnapshot(), nullptr);
  MD_ASSERT_OK_AND_ASSIGN(Table after, reopened.Query(sql));
  EXPECT_TRUE(TablesExactlyEqual(before, after));
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------------------
// Differential stress: Query() vs direct GPSJ evaluation, after every
// batch of a 200-batch mixed stream.
// -------------------------------------------------------------------

constexpr char kSnowViewSql[] = R"sql(
  CREATE VIEW snow AS
  SELECT dim0.a AS GroupA, dim1.a AS GroupB, SUM(fact.m1) AS SumM1,
         COUNT(*) AS Cnt, SUM(fact.m2) AS SumM2
  FROM fact, dim0, dim1
  WHERE fact.fk_dim0 = dim0.id AND dim0.fk_dim1 = dim1.id
  GROUP BY dim0.a, dim1.a
)sql";

constexpr char kSnowJoin[] =
    "FROM fact, dim0, dim1 "
    "WHERE fact.fk_dim0 = dim0.id AND dim0.fk_dim1 = dim1.id ";

TEST(ServingDifferentialTest, RollupsMatchDirectEvaluationOverStream) {
  SnowflakeParams sp;
  sp.depth = 2;
  sp.fanout = 1;
  sp.fact_rows = 200;
  sp.dim_rows = 15;
  sp.seed = 20260807;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(sp));
  Catalog source = snowflake.catalog;  // The twin, kept in lock-step.

  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(source, kSnowViewSql));

  // Summary roll-up, coarser grouping: int64 measures, so SUM and COUNT
  // are exact and AVG divides the identical integer totals — all three
  // must match direct evaluation bit for bit.
  const std::string q_coarse = StrCat(
      "SELECT dim0.a, SUM(fact.m1) AS S, COUNT(*) AS C, "
      "AVG(fact.m1) AS A ", kSnowJoin, "GROUP BY dim0.a");
  // Summary roll-up, scalar.
  const std::string q_scalar =
      StrCat("SELECT SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin);
  // Auxiliary-view fallback: dim0.id is not a view group-by, but
  // survives in dim0's auxiliary view as its key.
  const std::string q_aux = StrCat(
      "SELECT dim0.id, SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin,
      "GROUP BY dim0.id");
  // Double measures: sums drift by accumulation order, so compare with
  // tolerance.
  const std::string q_double = StrCat(
      "SELECT dim1.a, SUM(fact.m2) AS S2, AVG(fact.m2) AS A2 ",
      kSnowJoin, "GROUP BY dim1.a");

  auto oracle = [&](const std::string& sql) {
    Result<GpsjViewDef> def = ParseServeQuery(source, sql);
    MD_CHECK(def.ok());
    Result<Table> table = EvaluateGpsj(source, *def);
    MD_CHECK(table.ok());
    return std::move(table).value();
  };

  constexpr int kBatches = 200;
  Rng rng(sp.seed * 0x9e3779b97f4a7c15ULL + 1);
  int applied = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        snowflake, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;
    SCOPED_TRACE(::testing::Message() << "batch " << applied
                                      << ", delta on " << generated.table);
    MD_ASSERT_OK(warehouse.ApplyTransaction(
        OneTable(generated.table, generated.delta)));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));

    for (const std::string* sql : {&q_coarse, &q_scalar, &q_aux}) {
      MD_ASSERT_OK_AND_ASSIGN(Table got, warehouse.Query(*sql));
      ASSERT_TRUE(TablesExactlyEqual(oracle(*sql), got)) << *sql;
    }
    MD_ASSERT_OK_AND_ASSIGN(Table got_double, warehouse.Query(q_double));
    ASSERT_TRUE(TablesApproxEqual(oracle(q_double), got_double));
  }
  ASSERT_EQ(applied, kBatches);
  // The stream re-asked each query at every boundary, so the cache was
  // exercised for both insertion and invalidation throughout.
  EXPECT_GE(warehouse.QueryCacheStats().insertions,
            static_cast<uint64_t>(kBatches));
}

// -------------------------------------------------------------------
// Concurrent readers vs. the maintenance writer. Run under TSan via
// `ctest -L concurrency`.
// -------------------------------------------------------------------

// Table::ToString truncates at 50 rows by default; boundary fingerprints
// must cover every row.
constexpr size_t kAllRows = 1u << 20;

TEST(ServingConcurrencyTest, ReadersObserveOnlyCommittedBoundaries) {
  SnowflakeParams sp;
  sp.depth = 2;
  sp.fanout = 1;
  sp.fact_rows = 150;
  sp.dim_rows = 12;
  sp.seed = 777;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse snowflake,
                          GenerateSnowflake(sp));
  Catalog source = snowflake.catalog;

  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(source, kSnowViewSql));
  const std::string query = StrCat(
      "SELECT dim0.a, SUM(fact.m1) AS S, COUNT(*) AS C ", kSnowJoin,
      "GROUP BY dim0.a");

  // The writer records every committed boundary's view contents and
  // query answer (it is the only mutator, so these renders are taken
  // at quiescent boundaries).
  std::mutex mu;
  std::set<std::string> view_boundaries;
  std::set<std::string> query_boundaries;
  auto record_boundary = [&] {
    Result<Table> view = warehouse.View("snow");
    MD_CHECK(view.ok());
    Result<Table> answer = warehouse.Query(query);
    MD_CHECK(answer.ok());
    std::lock_guard<std::mutex> lock(mu);
    view_boundaries.insert(view->ToString(kAllRows));
    query_boundaries.insert(answer->ToString(kAllRows));
  };
  record_boundary();  // Registration-time boundary.

  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::vector<std::vector<std::string>> seen_views(kReaders);
  std::vector<std::vector<std::string>> seen_queries(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        Result<Table> view = warehouse.View("snow");
        if (view.ok()) seen_views[t].push_back(view->ToString(kAllRows));
        Result<Table> answer = warehouse.Query(query);
        if (answer.ok()) {
          seen_queries[t].push_back(answer->ToString(kAllRows));
        }
      }
    });
  }

  constexpr int kBatches = 200;
  Rng rng(sp.seed * 0x9e3779b97f4a7c15ULL + 1);
  int applied = 0;
  for (int attempt = 0; applied < kBatches && attempt < kBatches * 12;
       ++attempt) {
    GeneratedDelta generated = test::MakeSnowflakeDelta(
        snowflake, source, rng, /*append_only=*/false);
    if (generated.delta.Empty()) continue;
    ++applied;
    MD_ASSERT_OK(warehouse.ApplyTransaction(
        OneTable(generated.table, generated.delta)));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable(generated.table),
                            generated.delta));
    record_boundary();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  ASSERT_EQ(applied, kBatches);

  // Every concurrent read — view or query — must equal the serial
  // render of SOME committed batch boundary: readers never observe a
  // mid-batch or torn state.
  size_t observations = 0;
  for (int t = 0; t < kReaders; ++t) {
    for (const std::string& v : seen_views[t]) {
      EXPECT_TRUE(view_boundaries.count(v) > 0)
          << "reader " << t << " observed a view state that matches no "
          << "committed batch boundary";
      ++observations;
    }
    for (const std::string& q : seen_queries[t]) {
      EXPECT_TRUE(query_boundaries.count(q) > 0)
          << "reader " << t << " observed a query answer that matches "
          << "no committed batch boundary";
      ++observations;
    }
  }
  EXPECT_GT(observations, 0u);
}

}  // namespace
}  // namespace mindetail
