#include "core/derive.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;

// Algorithm 3.2 on the paper's running example must yield the three
// auxiliary views of Sec. 1.1: timeDTL(id, month), productDTL(id,
// brand), and the compressed saleDTL(timeid, productid, sum_price,
// cnt0).
TEST(DeriveTest, ProductSalesYieldsPaperAuxViews) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));

  EXPECT_EQ(derivation.root(), "sale");
  ASSERT_EQ(derivation.aux_views().size(), 3u);

  const AuxViewDef& sale = derivation.aux_for("sale");
  EXPECT_FALSE(sale.eliminated);
  EXPECT_TRUE(sale.plan.compressed);
  std::vector<std::string> sale_cols;
  for (const AuxColumn& col : sale.plan.columns) {
    sale_cols.push_back(col.output_name);
  }
  EXPECT_EQ(sale_cols, (std::vector<std::string>{
                           "timeid", "productid", "sum_price", "cnt0"}));
  ASSERT_EQ(sale.dependencies.size(), 2u);

  const AuxViewDef& time = derivation.aux_for("time");
  EXPECT_FALSE(time.eliminated);
  EXPECT_FALSE(time.plan.compressed);
  std::vector<std::string> time_cols;
  for (const AuxColumn& col : time.plan.columns) {
    time_cols.push_back(col.output_name);
  }
  EXPECT_EQ(time_cols, (std::vector<std::string>{"month", "id"}));
  EXPECT_FALSE(time.reduction.conditions.empty());  // year = 1997.

  const AuxViewDef& product = derivation.aux_for("product");
  EXPECT_FALSE(product.eliminated);
  EXPECT_FALSE(product.plan.compressed);
  std::vector<std::string> product_cols;
  for (const AuxColumn& col : product.plan.columns) {
    product_cols.push_back(col.output_name);
  }
  EXPECT_EQ(product_cols, (std::vector<std::string>{"brand", "id"}));
}

// The paper's product_sales_max view (Sec. 3.2): price is used in both a
// CSMAS (SUM) and a non-CSMAS (MAX), so it stays plain and the auxiliary
// view is sale(productid, price, cnt0).
TEST(DeriveTest, MixedCsmasKeepsAttributePlain) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesMaxView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));

  const AuxViewDef& sale = derivation.aux_for("sale");
  EXPECT_FALSE(sale.eliminated);  // MAX blocks elimination.
  EXPECT_TRUE(sale.plan.compressed);
  std::vector<std::string> cols;
  for (const AuxColumn& col : sale.plan.columns) {
    cols.push_back(col.output_name);
  }
  EXPECT_EQ(cols,
            (std::vector<std::string>{"productid", "price", "cnt0"}));
}

// Grouping on the product key annotates product with `k`; the fact
// table's auxiliary view is eliminable (Sec. 3.3).
TEST(DeriveTest, KeyGroupingEliminatesFactAuxView) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          SalesByProductKeyView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));

  EXPECT_TRUE(derivation.aux_for("sale").eliminated);
  EXPECT_FALSE(derivation.aux_for("product").eliminated);
}

// A single-table all-CSMAS view: the (root) auxiliary view is
// eliminable and the view maintains itself.
TEST(DeriveTest, SingleTableCsmasViewEliminatesItsOnlyAuxView) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("per_product_totals");
  builder.From("sale")
      .GroupBy("sale", "productid")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  EXPECT_TRUE(derivation.aux_for("sale").eliminated);
}

// Without referential integrity there is no dependence: no semijoin
// reductions and no elimination.
TEST(DeriveTest, MissingForeignKeyDisablesJoinReduction) {
  Catalog catalog;
  MD_ASSERT_OK(catalog.CreateTable(
      "f", Schema({{"id", ValueType::kInt64}, {"d", ValueType::kInt64},
                   {"v", ValueType::kInt64}}),
      "id"));
  MD_ASSERT_OK(catalog.CreateTable(
      "dim", Schema({{"id", ValueType::kInt64}, {"g", ValueType::kInt64}}),
      "id"));
  // No foreign key declared.
  GpsjViewBuilder builder("v");
  builder.From("f").From("dim").Join("f", "d", "dim").GroupBy("dim", "g")
      .Sum("f", "v", "Total").CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  EXPECT_TRUE(derivation.aux_for("f").dependencies.empty());
  EXPECT_FALSE(derivation.aux_for("f").eliminated);
}

// Exposed updates on a dimension also break the dependence.
TEST(DeriveTest, ExposedUpdatesDisableJoinReduction) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK(warehouse.catalog.SetExposedUpdates("time", true));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  const AuxViewDef& sale = derivation.aux_for("sale");
  ASSERT_EQ(sale.dependencies.size(), 1u);  // Only product remains.
  EXPECT_EQ(sale.dependencies[0].to_table, "product");
}

// Materialization reproduces the paper's Sec. 1.1 reconstruction
// inputs: the auxiliary views on the fixture instance.
TEST(DeriveTest, MaterializeProducesPaperTable4Instance) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .CountDistinct("product", "brand", "DifferentBrands");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(catalog, derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();

  // Paper Table 4 (with our fixture's prices): groups
  //   (1,1): sum 20 cnt 2 | (1,2): sum 30 cnt 1 |
  //   (2,1): sum 10 cnt 1 | (2,2): sum 55 cnt 2.
  const Table& sale = materialized->at("sale");
  ASSERT_EQ(sale.NumRows(), 4u);
  Table expected("expected", sale.schema());
  expected.set_allow_null(true);
  MD_ASSERT_OK(expected.Insert({Value(1), Value(1), Value(20), Value(2)}));
  MD_ASSERT_OK(expected.Insert({Value(1), Value(2), Value(30), Value(1)}));
  MD_ASSERT_OK(expected.Insert({Value(2), Value(1), Value(10), Value(1)}));
  MD_ASSERT_OK(expected.Insert({Value(2), Value(2), Value(55), Value(2)}));
  EXPECT_TRUE(TablesEqualAsBags(sale, expected));

  EXPECT_EQ(materialized->at("time").NumRows(), 2u);
  EXPECT_EQ(materialized->at("product").NumRows(), 2u);
}

// The semijoin reduction removes fact rows referencing dimension rows
// that fail the local condition.
TEST(DeriveTest, JoinReductionFiltersByDependencyContents) {
  Catalog catalog = test::PaperTable3Fixture();
  // Flip time id 2 to 1996 so its sales drop out of the auxiliary view.
  Table* time = *catalog.MutableTable("time");
  MD_ASSERT_OK(time->DeleteByKey(Value(2)));
  MD_ASSERT_OK(time->Insert({Value(2), Value(1), Value(1996)}));

  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(catalog, derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();

  // Only the three sales with timeid = 1 survive, in two groups... the
  // sale aux groups by timeid only: one group (1) with cnt 3.
  const Table& sale = materialized->at("sale");
  ASSERT_EQ(sale.NumRows(), 1u);
  const int cnt_idx =
      derivation.aux_for("sale").plan.CountColumnIndex();
  EXPECT_EQ(sale.row(0)[cnt_idx], Value(3));
}

TEST(DeriveTest, ReportMentionsEverything) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, warehouse.catalog));
  const std::string report = derivation.ToString();
  EXPECT_NE(report.find("saleDTL"), std::string::npos);
  EXPECT_NE(report.find("timeDTL"), std::string::npos);
  EXPECT_NE(report.find("productDTL"), std::string::npos);
  EXPECT_NE(report.find("Need("), std::string::npos);
}

}  // namespace
}  // namespace mindetail
