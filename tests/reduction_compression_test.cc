#include "core/compression.h"
#include "core/reduction.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;

TEST(LocalReductionTest, KeepsPreservedAndJoinAttrsOnly) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));

  MD_ASSERT_OK_AND_ASSIGN(
      LocalReduction sale,
      ComputeLocalReduction(def, warehouse.catalog, "sale"));
  EXPECT_EQ(sale.attrs,
            (std::vector<std::string>{"price", "timeid", "productid"}));
  EXPECT_TRUE(sale.conditions.empty());

  MD_ASSERT_OK_AND_ASSIGN(
      LocalReduction time,
      ComputeLocalReduction(def, warehouse.catalog, "time"));
  EXPECT_EQ(time.attrs, (std::vector<std::string>{"month", "id"}));
  EXPECT_EQ(time.conditions.ToString(), "year = 1997");

  // store is not referenced: reduction must fail loudly.
  EXPECT_FALSE(
      ComputeLocalReduction(def, warehouse.catalog, "store").ok());
}

TEST(LocalReductionTest, UnpreservedKeyIsDropped) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      LocalReduction sale,
      ComputeLocalReduction(def, warehouse.catalog, "sale"));
  // Unlike PSJ reductions, the sale key (id) is NOT retained.
  EXPECT_EQ(std::find(sale.attrs.begin(), sale.attrs.end(), "id"),
            sale.attrs.end());
}

// Algorithm 3.1 on the running example: price is only used in CSMAS
// aggregates → replaced by SUM(price); timeid/productid are join
// attributes → plain; COUNT(*) appended.
TEST(CompressionTest, PaperSaleDtlPlan) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      LocalReduction reduction,
      ComputeLocalReduction(def, warehouse.catalog, "sale"));
  MD_ASSERT_OK_AND_ASSIGN(
      CompressionPlan plan,
      ComputeCompressionPlan(def, warehouse.catalog, "sale", reduction));

  EXPECT_TRUE(plan.compressed);
  ASSERT_EQ(plan.columns.size(), 4u);
  EXPECT_EQ(plan.columns[0].kind, AuxColumn::Kind::kPlain);
  EXPECT_EQ(plan.columns[0].output_name, "timeid");
  EXPECT_EQ(plan.columns[1].output_name, "productid");
  EXPECT_EQ(plan.columns[2].kind, AuxColumn::Kind::kSum);
  EXPECT_EQ(plan.columns[2].output_name, "sum_price");
  EXPECT_EQ(plan.columns[3].kind, AuxColumn::Kind::kCountStar);
  EXPECT_EQ(plan.columns[3].output_name, "cnt0");

  EXPECT_EQ(plan.PlainAttrs(),
            (std::vector<std::string>{"timeid", "productid"}));
  EXPECT_EQ(plan.Aggregates().size(), 2u);
  EXPECT_EQ(plan.CountColumnIndex(), 3);
  EXPECT_EQ(plan.SumColumnIndex("price"), 2);
  EXPECT_EQ(plan.PlainColumnIndex("timeid"), 0);
  EXPECT_EQ(plan.SumColumnIndex("timeid"), -1);
}

// Step 1's superfluous case: the key survives local reduction (join
// target), so COUNT(*) is superfluous and the view stays a plain PSJ
// projection.
TEST(CompressionTest, KeyRetentionDegeneratesToPsj) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      LocalReduction reduction,
      ComputeLocalReduction(def, warehouse.catalog, "time"));
  MD_ASSERT_OK_AND_ASSIGN(
      CompressionPlan plan,
      ComputeCompressionPlan(def, warehouse.catalog, "time", reduction));
  EXPECT_FALSE(plan.compressed);
  EXPECT_EQ(plan.CountColumnIndex(), -1);
  ASSERT_EQ(plan.columns.size(), 2u);
  EXPECT_EQ(plan.columns[0].kind, AuxColumn::Kind::kPlain);
  EXPECT_EQ(plan.columns[1].kind, AuxColumn::Kind::kPlain);
}

// An attribute in both CSMAS and non-CSMAS aggregates stays plain (the
// paper's product_sales_max): no sum column, price is a grouping column.
TEST(CompressionTest, MixedUseAttributeStaysPlain) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesMaxView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      LocalReduction reduction,
      ComputeLocalReduction(def, warehouse.catalog, "sale"));
  MD_ASSERT_OK_AND_ASSIGN(
      CompressionPlan plan,
      ComputeCompressionPlan(def, warehouse.catalog, "sale", reduction));
  EXPECT_TRUE(plan.compressed);
  EXPECT_EQ(plan.PlainAttrs(),
            (std::vector<std::string>{"productid", "price"}));
  EXPECT_EQ(plan.SumColumnIndex("price"), -1);
  EXPECT_GE(plan.CountColumnIndex(), 0);
}

// COUNT(a) with no other use of a: the attribute disappears entirely —
// its replacement is just the shared COUNT(*).
TEST(CompressionTest, CountOnlyAttributeVanishes) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("count_only");
  builder.From("sale").GroupBy("sale", "timeid").Count("sale", "price",
                                                       "PriceCount");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(LocalReduction reduction,
                          ComputeLocalReduction(def, catalog, "sale"));
  MD_ASSERT_OK_AND_ASSIGN(
      CompressionPlan plan,
      ComputeCompressionPlan(def, catalog, "sale", reduction));
  EXPECT_TRUE(plan.compressed);
  // Columns: timeid (plain group-by), cnt0. No price column at all.
  ASSERT_EQ(plan.columns.size(), 2u);
  EXPECT_EQ(plan.columns[0].output_name, "timeid");
  EXPECT_EQ(plan.columns[1].output_name, "cnt0");
}

// A DISTINCT aggregate keeps its attribute plain.
TEST(CompressionTest, DistinctAttributeStaysPlain) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("distinct_price");
  builder.From("sale")
      .GroupBy("sale", "timeid")
      .SumDistinct("sale", "price", "DistinctSum");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(LocalReduction reduction,
                          ComputeLocalReduction(def, catalog, "sale"));
  MD_ASSERT_OK_AND_ASSIGN(
      CompressionPlan plan,
      ComputeCompressionPlan(def, catalog, "sale", reduction));
  EXPECT_TRUE(plan.compressed);
  EXPECT_GE(plan.PlainColumnIndex("price"), 0);
  EXPECT_EQ(plan.SumColumnIndex("price"), -1);
}

// AVG alone still produces a SUM column plus cnt0 (Table 2).
TEST(CompressionTest, AvgProducesSumAndCount) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("avg_only");
  builder.From("sale").GroupBy("sale", "timeid").Avg("sale", "price",
                                                     "AvgPrice");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(LocalReduction reduction,
                          ComputeLocalReduction(def, catalog, "sale"));
  MD_ASSERT_OK_AND_ASSIGN(
      CompressionPlan plan,
      ComputeCompressionPlan(def, catalog, "sale", reduction));
  EXPECT_GE(plan.SumColumnIndex("price"), 0);
  EXPECT_GE(plan.CountColumnIndex(), 0);
}

TEST(CompressionTest, PlanRenderingMentionsColumns) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      LocalReduction reduction,
      ComputeLocalReduction(def, warehouse.catalog, "sale"));
  MD_ASSERT_OK_AND_ASSIGN(
      CompressionPlan plan,
      ComputeCompressionPlan(def, warehouse.catalog, "sale", reduction));
  const std::string rendering = plan.ToString();
  EXPECT_NE(rendering.find("compressed"), std::string::npos);
  EXPECT_NE(rendering.find("SUM(price) AS sum_price"), std::string::npos);
  EXPECT_NE(rendering.find("COUNT(*) AS cnt0"), std::string::npos);
}

}  // namespace
}  // namespace mindetail
