#include "workload/deltas.h"
#include "workload/retail.h"
#include "workload/sizing.h"
#include "workload/snowflake.h"
#include "workload/zipf.h"

#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

TEST(RetailGeneratorTest, CardinalitiesMatchModel) {
  RetailParams params;
  params.days = 10;
  params.stores = 2;
  params.products = 50;
  params.products_sold_per_store_day = 5;
  params.transactions_per_product = 3;
  MD_ASSERT_OK_AND_ASSIGN(RetailWarehouse warehouse,
                          GenerateRetail(params));
  EXPECT_EQ((*warehouse.catalog.GetTable("time"))->NumRows(), 10u);
  EXPECT_EQ((*warehouse.catalog.GetTable("store"))->NumRows(), 2u);
  EXPECT_EQ((*warehouse.catalog.GetTable("product"))->NumRows(), 50u);
  EXPECT_EQ((*warehouse.catalog.GetTable("sale"))->NumRows(),
            static_cast<size_t>(params.FactRows()));
}

TEST(RetailGeneratorTest, ReferentialIntegrityHolds) {
  RetailWarehouse warehouse = test::SmallRetail();
  MD_EXPECT_OK(warehouse.catalog.CheckReferentialIntegrity());
}

TEST(RetailGeneratorTest, DeterministicForSameSeed) {
  RetailWarehouse a = test::SmallRetail(5);
  RetailWarehouse b = test::SmallRetail(5);
  EXPECT_TRUE(TablesEqualAsBags(**a.catalog.GetTable("sale"),
                                **b.catalog.GetTable("sale")));
}

TEST(RetailGeneratorTest, DistinctFractionControlsCompressionGroups) {
  RetailParams narrow;
  narrow.days = 4;
  narrow.stores = 4;
  narrow.products = 100;
  narrow.products_sold_per_store_day = 20;
  narrow.transactions_per_product = 2;
  narrow.daily_distinct_fraction = 0.1;  // 10 distinct products per day.
  MD_ASSERT_OK_AND_ASSIGN(RetailWarehouse w_narrow,
                          GenerateRetail(narrow));

  RetailParams wide = narrow;
  wide.daily_distinct_fraction = 1.0;
  MD_ASSERT_OK_AND_ASSIGN(RetailWarehouse w_wide, GenerateRetail(wide));

  // Count distinct (day, product) pairs — the compressed group count.
  auto distinct_pairs = [](const Catalog& catalog) {
    const Table* sale = *catalog.GetTable("sale");
    std::unordered_set<Tuple, TupleHash, TupleEqual> pairs;
    for (const Tuple& row : sale->rows()) {
      pairs.insert({row[1], row[2]});
    }
    return pairs.size();
  };
  EXPECT_LT(distinct_pairs(w_narrow.catalog),
            distinct_pairs(w_wide.catalog));
}

TEST(RetailGeneratorTest, RejectsNonPositiveParams) {
  RetailParams params;
  params.days = 0;
  EXPECT_FALSE(GenerateRetail(params).ok());
}

TEST(SnowflakeGeneratorTest, ShapeMatchesDepthAndFanout) {
  SnowflakeParams params;
  params.depth = 3;
  params.fanout = 2;
  params.fact_rows = 20;
  params.dim_rows = 6;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(params));
  // 2 + 4 + 8 dimensions.
  EXPECT_EQ(warehouse.dims.size(), 14u);
  MD_EXPECT_OK(warehouse.catalog.CheckReferentialIntegrity());
  for (const std::string& dim : warehouse.dims) {
    EXPECT_EQ((*warehouse.catalog.GetTable(dim))->NumRows(), 6u);
  }
  EXPECT_EQ((*warehouse.catalog.GetTable("fact"))->NumRows(), 20u);
}

TEST(SnowflakeGeneratorTest, DepthZeroIsSingleTable) {
  SnowflakeParams params;
  params.depth = 0;
  params.fact_rows = 10;
  MD_ASSERT_OK_AND_ASSIGN(SnowflakeWarehouse warehouse,
                          GenerateSnowflake(params));
  EXPECT_TRUE(warehouse.dims.empty());
}

TEST(DeltaGeneratorTest, InsertionsAreRiConsistentAndFresh) {
  RetailWarehouse warehouse = test::SmallRetail();
  RetailDeltaGenerator gen(31);
  MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                          gen.SaleInsertions(warehouse.catalog, 20));
  ASSERT_EQ(delta.inserts.size(), 20u);
  MD_ASSERT_OK(
      ApplyDelta(*warehouse.catalog.MutableTable("sale"), delta));
  MD_EXPECT_OK(warehouse.catalog.CheckReferentialIntegrity());
}

TEST(DeltaGeneratorTest, DeletionsReferenceExistingRows) {
  RetailWarehouse warehouse = test::SmallRetail();
  RetailDeltaGenerator gen(32);
  MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                          gen.SaleDeletions(warehouse.catalog, 15));
  EXPECT_EQ(delta.deletes.size(), 15u);
  MD_ASSERT_OK(
      ApplyDelta(*warehouse.catalog.MutableTable("sale"), delta));
}

TEST(DeltaGeneratorTest, UpdatesKeepKeysAndChangeOnlyPrice) {
  RetailWarehouse warehouse = test::SmallRetail();
  RetailDeltaGenerator gen(33);
  MD_ASSERT_OK_AND_ASSIGN(Delta delta,
                          gen.SalePriceUpdates(warehouse.catalog, 10));
  for (const Update& u : delta.updates) {
    EXPECT_EQ(u.before[0], u.after[0]);
    EXPECT_EQ(u.before[1], u.after[1]);
    EXPECT_EQ(u.before[2], u.after[2]);
    EXPECT_EQ(u.before[3], u.after[3]);
  }
}

TEST(DeltaGeneratorTest, MixedBatchHasNoDeleteUpdateCollision) {
  RetailWarehouse warehouse = test::SmallRetail();
  RetailDeltaGenerator gen(34);
  MD_ASSERT_OK_AND_ASSIGN(
      Delta delta, gen.MixedSaleBatch(warehouse.catalog, 10, 10, 10));
  std::set<int64_t> deleted;
  for (const Tuple& row : delta.deletes) deleted.insert(row[0].AsInt64());
  for (const Update& u : delta.updates) {
    EXPECT_EQ(deleted.count(u.before[0].AsInt64()), 0u);
  }
  MD_ASSERT_OK(
      ApplyDelta(*warehouse.catalog.MutableTable("sale"), delta));
}

// --- Zipfian / bursty stream generator ---------------------------------

TEST(ZipfSamplerTest, DeterministicForSameSeed) {
  ZipfSampler sampler(16, 1.2);
  Rng a(42), b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sampler.Sample(a), sampler.Sample(b));
  }
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks) {
  ZipfSampler sampler(10, 1.2);
  Rng rng(7);
  std::map<size_t, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[sampler.Sample(rng)];
  // Rank 0 must dominate rank 5 and beyond under exponent 1.2.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], 5000 / 10);  // Well above the uniform share.
  for (const auto& [rank, n] : counts) {
    EXPECT_LT(rank, 10u);
    EXPECT_GT(n, 0);
  }
}

TEST(ZipfSamplerTest, ExponentZeroIsRoughlyUniform) {
  ZipfSampler sampler(4, 0.0);
  Rng rng(11);
  std::map<size_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[sampler.Sample(rng)];
  for (size_t rank = 0; rank < 4; ++rank) {
    EXPECT_GT(counts[rank], 8000 / 4 / 2);  // Within 2x of the fair share.
    EXPECT_LT(counts[rank], 8000 / 4 * 2);
  }
}

TEST(BurstyZipfStreamTest, DeterministicForSameSeed) {
  BurstyZipfParams params;
  params.seed = 99;
  BurstyZipfStream a(params), b(params);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(BurstyZipfStreamTest, BurstPhasesRepeatOneItem) {
  BurstyZipfParams params;
  params.num_items = 32;
  params.calm_len = 5;
  params.burst_len = 8;
  params.seed = 3;
  BurstyZipfStream stream(params);
  bool saw_burst = false;
  for (int phase = 0; phase < 20; ++phase) {
    std::vector<size_t> picks;
    const bool bursting_before = [&] {
      size_t first = stream.Next();
      picks.push_back(first);
      return stream.in_burst();
    }();
    const size_t len = bursting_before ? params.burst_len : params.calm_len;
    for (size_t i = 1; i < len; ++i) picks.push_back(stream.Next());
    if (bursting_before) {
      saw_burst = true;
      for (size_t p : picks) EXPECT_EQ(p, picks[0]);
    }
  }
  EXPECT_TRUE(saw_burst);
}

TEST(BurstyZipfStreamTest, AllPicksInRange) {
  BurstyZipfParams params;
  params.num_items = 6;
  params.seed = 17;
  BurstyZipfStream stream(params);
  for (int i = 0; i < 500; ++i) EXPECT_LT(stream.Next(), 6u);
}

// --- Sizing model: the paper's Sec. 1.1 arithmetic, exactly ------------

TEST(SizingTest, PaperFactNumbers) {
  StorageModel model;
  EXPECT_EQ(model.FactTuples(), 13140000000LL);
  EXPECT_EQ(model.FactBytes(), 13140000000ULL * 5 * 4);
  EXPECT_EQ(FormatBytes(model.FactBytes()), "244.8 GB");  // "245 GBytes".
}

TEST(SizingTest, PaperAuxNumbers) {
  StorageModel model;
  EXPECT_EQ(model.AuxTuples(0.5, 30000), 10950000LL);
  EXPECT_EQ(model.AuxBytes(0.5, 30000), 10950000ULL * 4 * 4);
  EXPECT_EQ(FormatBytes(model.AuxBytes(0.5, 30000)), "167.1 MB");
}

TEST(SizingTest, CompressionFactorMatchesPaperRatio) {
  StorageModel model;
  // 245 GB / 167 MB ≈ 1500x.
  const double factor = model.CompressionFactor(0.5, 30000);
  EXPECT_NEAR(factor, 1500.0, 1.0);
}

TEST(SizingTest, PsjIntermediateSize) {
  StorageModel model;
  // PSJ keeps one row per 1997 fact tuple: half of 13.14e9 × 4 fields.
  EXPECT_EQ(model.PsjTuples(0.5), 6570000000LL);
  EXPECT_GT(model.PsjBytes(0.5), model.AuxBytes(0.5, 30000));
  EXPECT_LT(model.PsjBytes(0.5), model.FactBytes());
}

TEST(SizingTest, ReportMentionsHeadlineNumbers) {
  StorageModel model;
  const std::string report = model.Report();
  EXPECT_NE(report.find("13,140,000,000"), std::string::npos);
  EXPECT_NE(report.find("10,950,000"), std::string::npos);
  EXPECT_NE(report.find("244.8 GB"), std::string::npos);
  EXPECT_NE(report.find("167.1 MB"), std::string::npos);
}

}  // namespace
}  // namespace mindetail
