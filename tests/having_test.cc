// HAVING support (the paper's Sec. 4 noted generalization): group
// restrictions filter the view's contents while the maintenance state
// keeps every group, so groups cross the threshold in both directions
// under change streams.

#include "gpsj/parser.h"
#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::PaperTable3Fixture;
using test::SmallRetail;
using test::TablesApproxEqual;

TEST(HavingTest, BuilderValidation) {
  Catalog catalog = PaperTable3Fixture();
  {
    GpsjViewBuilder builder("v");
    builder.From("sale")
        .GroupBy("sale", "timeid")
        .CountStar("Cnt")
        .Having("Cnt", CompareOp::kGe, Value(int64_t{2}));
    MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
    EXPECT_EQ(def.having().size(), 1u);
    EXPECT_NE(def.ToSqlString().find("HAVING Cnt >= 2"),
              std::string::npos);
  }
  {
    GpsjViewBuilder builder("v");
    builder.From("sale").GroupBy("sale", "timeid").CountStar("Cnt").Having(
        "Ghost", CompareOp::kGe, Value(int64_t{2}));
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kNotFound);
  }
  {
    // Numeric output vs string literal.
    GpsjViewBuilder builder("v");
    builder.From("sale").GroupBy("sale", "timeid").CountStar("Cnt").Having(
        "Cnt", CompareOp::kEq, Value("two"));
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    GpsjViewBuilder builder("v");
    builder.From("sale").GroupBy("sale", "timeid").CountStar("Cnt").Having(
        "Cnt", CompareOp::kEq, Value());
    EXPECT_EQ(builder.Build(catalog).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(HavingTest, EvaluatorFiltersGroups) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("busy_products");
  builder.From("sale")
      .GroupBy("sale", "productid")
      .CountStar("Cnt")
      .Sum("sale", "price", "Total")
      .Having("Total", CompareOp::kGt, Value(int64_t{40}));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Table view, EvaluateGpsj(catalog, def));
  // Product 1 totals 30, product 2 totals 85 — only product 2 passes.
  ASSERT_EQ(view.NumRows(), 1u);
  EXPECT_EQ(view.row(0)[0], Value(2));
}

TEST(HavingTest, GroupsCrossTheThresholdBothWays) {
  RetailWarehouse warehouse = SmallRetail();
  Catalog& source = warehouse.catalog;
  GpsjViewBuilder builder("hot_products");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("product", "id", "ProductId")
      .CountStar("Cnt")
      .Sum("sale", "price", "Total")
      .Having("Cnt", CompareOp::kGe, Value(int64_t{8}));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(source));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));

  RetailDeltaGenerator gen(61);
  size_t min_rows = SIZE_MAX;
  size_t max_rows = 0;
  for (int round = 0; round < 8; ++round) {
    Result<Delta> delta = round % 2 == 0
                              ? gen.SaleInsertions(source, 60)
                              : gen.SaleDeletions(source, 80);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(engine.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    ASSERT_TRUE(TablesApproxEqual(view, oracle)) << "round " << round;
    min_rows = std::min(min_rows, view.NumRows());
    max_rows = std::max(max_rows, view.NumRows());
  }
  // The stream actually moved groups across the threshold.
  EXPECT_LT(min_rows, max_rows);
}

TEST(HavingTest, MaintainedStateSurvivesDisqualification) {
  // A group that falls below the HAVING bound and then re-qualifies
  // must come back with exact aggregates — its state was never dropped.
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .GroupBy("sale", "productid")
      .CountStar("Cnt")
      .Sum("sale", "price", "Total")
      .Having("Cnt", CompareOp::kGe, Value(int64_t{3}));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(catalog, def));
  // Both products have 3 sales initially → both visible.
  MD_ASSERT_OK_AND_ASSIGN(Table initial, engine.View());
  EXPECT_EQ(initial.NumRows(), 2u);

  // Delete one sale of product 1 → drops to 2 → hidden.
  Delta drop;
  drop.deletes.push_back({Value(1), Value(1), Value(1), Value(10)});
  MD_ASSERT_OK(engine.Apply("sale", drop));
  MD_ASSERT_OK_AND_ASSIGN(Table hidden, engine.View());
  EXPECT_EQ(hidden.NumRows(), 1u);

  // Re-insert a different sale of product 1 → back to 3 → visible
  // again with the *correct* total (20 + 7 = 27).
  Delta back;
  back.inserts.push_back({Value(99), Value(1), Value(1), Value(7)});
  MD_ASSERT_OK(engine.Apply("sale", back));
  MD_ASSERT_OK_AND_ASSIGN(Table visible, engine.View());
  ASSERT_EQ(visible.NumRows(), 2u);
  // Rows sorted by productid.
  EXPECT_EQ(visible.row(0)[0], Value(1));
  EXPECT_EQ(visible.row(0)[1], Value(3));
  EXPECT_EQ(visible.row(0)[2], Value(27));
}

TEST(HavingTest, WorksWithNonCsmasOutputs) {
  RetailWarehouse warehouse = SmallRetail();
  Catalog& source = warehouse.catalog;
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .GroupBy("sale", "productid")
      .Max("sale", "price", "MaxPrice")
      .CountStar("Cnt")
      .Having("MaxPrice", CompareOp::kGe, Value(100.0));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(source));
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, def));
  RetailDeltaGenerator gen(62);
  for (int round = 0; round < 4; ++round) {
    Result<Delta> delta = gen.MixedSaleBatch(source, 20, 15, 5);
    ASSERT_TRUE(delta.ok()) << delta.status();
    MD_ASSERT_OK(engine.Apply("sale", *delta));
    MD_ASSERT_OK(ApplyDelta(*source.MutableTable("sale"), *delta));
    MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
    MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, def));
    ASSERT_TRUE(TablesApproxEqual(view, oracle)) << "round " << round;
  }
}

TEST(HavingTest, ParserAcceptsAllReferenceForms) {
  Catalog catalog = PaperTable3Fixture();
  MD_ASSERT_OK_AND_ASSIGN(
      GpsjViewDef def,
      ParseGpsjView(R"sql(
        CREATE VIEW v AS
        SELECT sale.timeid, COUNT(*) AS Cnt, SUM(sale.price)
        FROM sale
        GROUP BY sale.timeid
        HAVING Cnt >= 2 AND SUM(sale.price) > 10
           AND sale.timeid < 100
      )sql",
                    catalog));
  ASSERT_EQ(def.having().size(), 3u);
  EXPECT_EQ(def.having()[0].output_name, "Cnt");
  EXPECT_EQ(def.having()[1].output_name, "sum_price");
  EXPECT_EQ(def.having()[2].output_name, "timeid");
}

TEST(HavingTest, ParserRejectsUnknownReferences) {
  Catalog catalog = PaperTable3Fixture();
  {
    Result<GpsjViewDef> def = ParseGpsjView(
        "CREATE VIEW v AS SELECT sale.timeid, COUNT(*) AS Cnt FROM sale "
        "GROUP BY sale.timeid HAVING MAX(sale.price) > 5",
        catalog);
    ASSERT_FALSE(def.ok());
    EXPECT_NE(def.status().message().find("must also appear in SELECT"),
              std::string::npos);
  }
  {
    Result<GpsjViewDef> def = ParseGpsjView(
        "CREATE VIEW v AS SELECT sale.timeid, COUNT(*) AS Cnt FROM sale "
        "GROUP BY sale.timeid HAVING sale.price > 5",
        catalog);
    ASSERT_FALSE(def.ok());
    EXPECT_NE(def.status().message().find("not a selected group-by"),
              std::string::npos);
  }
}

TEST(HavingTest, ReconstructionAppliesHaving) {
  Catalog catalog = PaperTable3Fixture();
  GpsjViewBuilder builder("v");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("product", "brand", "Brand")
      .Sum("sale", "price", "Total")
      .CountStar("Cnt")
      .Having("Total", CompareOp::kGt, Value(int64_t{40}));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  MD_ASSERT_OK_AND_ASSIGN(Derivation derivation,
                          Derivation::Derive(def, catalog));
  Result<std::map<std::string, Table>> materialized =
      MaterializeAuxViews(catalog, derivation);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  std::map<std::string, const Table*> aux;
  for (const auto& [name, table] : *materialized) {
    aux.emplace(name, &table);
  }
  MD_ASSERT_OK_AND_ASSIGN(Table reconstructed,
                          ReconstructView(derivation, aux));
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(catalog, def));
  EXPECT_TRUE(TablesApproxEqual(reconstructed, oracle));
}

}  // namespace
}  // namespace mindetail
