#include "relational/delta.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

Table Fixture() {
  Result<Table> table = Table::WithKey(
      "t",
      Schema({{"id", ValueType::kInt64}, {"v", ValueType::kInt64}}), "id");
  MD_CHECK(table.ok());
  MD_CHECK(table->Insert({Value(1), Value(10)}).ok());
  MD_CHECK(table->Insert({Value(2), Value(20)}).ok());
  return std::move(table).value();
}

TEST(DeltaTest, EmptyAndSize) {
  Delta delta;
  EXPECT_TRUE(delta.Empty());
  delta.inserts.push_back({Value(3), Value(30)});
  delta.deletes.push_back({Value(1), Value(10)});
  delta.updates.push_back(Update{{Value(2), Value(20)},
                                 {Value(2), Value(25)}});
  EXPECT_FALSE(delta.Empty());
  EXPECT_EQ(delta.Size(), 3u);
}

TEST(DeltaTest, ApplyDeletesUpdatesInserts) {
  Table table = Fixture();
  Delta delta;
  delta.deletes.push_back({Value(1), Value(10)});
  delta.updates.push_back(Update{{Value(2), Value(20)},
                                 {Value(2), Value(25)}});
  delta.inserts.push_back({Value(3), Value(30)});
  MD_ASSERT_OK(ApplyDelta(&table, delta));
  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_FALSE(table.ContainsKey(Value(1)));
  EXPECT_EQ((*table.FindByKey(Value(2)))[1], Value(25));
  EXPECT_EQ((*table.FindByKey(Value(3)))[1], Value(30));
}

TEST(DeltaTest, ApplyFailsOnMissingBeforeImage) {
  Table table = Fixture();
  Delta delta;
  delta.deletes.push_back({Value(9), Value(90)});
  EXPECT_EQ(ApplyDelta(&table, delta).code(), StatusCode::kNotFound);
}

TEST(DeltaTest, NormalizeUpdatesSplitsPairs) {
  Delta delta;
  delta.inserts.push_back({Value(3), Value(30)});
  delta.updates.push_back(Update{{Value(2), Value(20)},
                                 {Value(2), Value(25)}});
  Delta normalized = NormalizeUpdates(delta);
  EXPECT_TRUE(normalized.updates.empty());
  ASSERT_EQ(normalized.deletes.size(), 1u);
  ASSERT_EQ(normalized.inserts.size(), 2u);
  EXPECT_EQ(normalized.deletes[0][1], Value(20));
}

TEST(DeltaTest, NormalizeExposedSplitsOnlyTouchingUpdates) {
  Schema schema({{"id", ValueType::kInt64},
                 {"cond", ValueType::kInt64},
                 {"other", ValueType::kInt64}});
  Delta delta;
  // Touches the protected attribute.
  delta.updates.push_back(Update{{Value(1), Value(5), Value(0)},
                                 {Value(1), Value(6), Value(0)}});
  // Touches only an unprotected attribute.
  delta.updates.push_back(Update{{Value(2), Value(5), Value(0)},
                                 {Value(2), Value(5), Value(9)}});
  Delta normalized = NormalizeExposedUpdates(delta, schema, {"cond"});
  EXPECT_EQ(normalized.deletes.size(), 1u);
  EXPECT_EQ(normalized.inserts.size(), 1u);
  ASSERT_EQ(normalized.updates.size(), 1u);
  EXPECT_EQ(normalized.updates[0].after[2], Value(9));
}

}  // namespace
}  // namespace mindetail
