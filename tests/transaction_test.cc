// Multi-table transactions: ApplyTransaction orders the pieces so
// referential integrity holds at every step (fact deletions before
// dimension deletions; dimension insertions before fact insertions).

#include "gtest/gtest.h"
#include "maintenance/engine.h"
#include "maintenance/warehouse.h"
#include "test_util.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

using test::SmallRetail;
using test::TablesApproxEqual;

// Applies the transaction to the source catalog in the same safe order.
Status ApplyTransactionToSource(Catalog* source,
                                const Derivation& derivation,
                                const std::map<std::string, Delta>& tx) {
  const std::vector<std::string>& order =
      derivation.graph().TopologicalOrder();
  for (const std::string& table : order) {
    auto it = tx.find(table);
    if (it == tx.end() || it->second.deletes.empty()) continue;
    Delta deletions;
    deletions.deletes = it->second.deletes;
    MD_RETURN_IF_ERROR(
        ApplyDelta(*source->MutableTable(table), deletions));
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    auto change = tx.find(*it);
    if (change == tx.end()) continue;
    Delta rest;
    rest.inserts = change->second.inserts;
    rest.updates = change->second.updates;
    if (rest.Empty()) continue;
    MD_RETURN_IF_ERROR(ApplyDelta(*source->MutableTable(*it), rest));
  }
  return Status::Ok();
}

TEST(TransactionTest, NewProductWithItsFirstSales) {
  RetailWarehouse warehouse = SmallRetail();
  Catalog& source = warehouse.catalog;
  Result<GpsjViewDef> def = ProductSalesView(source);
  ASSERT_TRUE(def.ok()) << def.status();
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, *def));

  // One transaction: a brand-new product plus sales referencing it.
  // Passing the pieces in any map order must work (the engine orders
  // dimension insertions before fact insertions).
  const int64_t product_id =
      MaxInt64In(**source.GetTable("product"), "id") + 1;
  const int64_t sale_id = MaxInt64In(**source.GetTable("sale"), "id") + 1;
  std::map<std::string, Delta> tx;
  tx["product"].inserts.push_back(
      {Value(product_id), Value("fresh_brand"), Value("cat1")});
  tx["sale"].inserts.push_back({Value(sale_id), Value(int64_t{10}),
                                Value(product_id), Value(int64_t{1}),
                                Value(9.5)});
  tx["sale"].inserts.push_back({Value(sale_id + 1), Value(int64_t{11}),
                                Value(product_id), Value(int64_t{2}),
                                Value(12.0)});
  MD_ASSERT_OK(engine.ApplyTransaction(tx));
  MD_ASSERT_OK(
      ApplyTransactionToSource(&source, engine.derivation(), tx));
  MD_EXPECT_OK(source.CheckReferentialIntegrity());

  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, *def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

TEST(TransactionTest, RetireProductAndItsSales) {
  RetailWarehouse warehouse = SmallRetail();
  Catalog& source = warehouse.catalog;
  Result<GpsjViewDef> def = ProductSalesView(source);
  ASSERT_TRUE(def.ok()) << def.status();
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, *def));

  // Pick a product and gather every sale referencing it.
  const Table* product = *source.GetTable("product");
  const Table* sale = *source.GetTable("sale");
  const Tuple victim = product->row(0);
  std::map<std::string, Delta> tx;
  tx["product"].deletes.push_back(victim);
  for (const Tuple& row : sale->rows()) {
    if (row[2].Compare(victim[0]) == 0) {
      tx["sale"].deletes.push_back(row);
    }
  }
  ASSERT_FALSE(tx["sale"].deletes.empty());

  MD_ASSERT_OK(engine.ApplyTransaction(tx));
  MD_ASSERT_OK(
      ApplyTransactionToSource(&source, engine.derivation(), tx));
  MD_EXPECT_OK(source.CheckReferentialIntegrity());

  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, *def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

TEST(TransactionTest, MixedTransactionAcrossThreeTables) {
  RetailWarehouse warehouse = SmallRetail();
  Catalog& source = warehouse.catalog;
  Result<GpsjViewDef> def = ProductSalesView(source);
  ASSERT_TRUE(def.ok()) << def.status();
  MD_ASSERT_OK_AND_ASSIGN(SelfMaintenanceEngine engine,
                          SelfMaintenanceEngine::Create(source, *def));
  RetailDeltaGenerator gen(71);

  std::map<std::string, Delta> tx;
  MD_ASSERT_OK_AND_ASSIGN(tx["sale"], gen.MixedSaleBatch(source, 10, 8, 4));
  MD_ASSERT_OK_AND_ASSIGN(tx["product"], gen.ProductInsertions(source, 3));
  MD_ASSERT_OK_AND_ASSIGN(Delta brand_updates,
                          gen.ProductBrandUpdates(source, 4));
  tx["product"].updates = brand_updates.updates;

  MD_ASSERT_OK(engine.ApplyTransaction(tx));
  MD_ASSERT_OK(
      ApplyTransactionToSource(&source, engine.derivation(), tx));
  MD_ASSERT_OK_AND_ASSIGN(Table view, engine.View());
  MD_ASSERT_OK_AND_ASSIGN(Table oracle, EvaluateGpsj(source, *def));
  EXPECT_TRUE(TablesApproxEqual(view, oracle));
}

TEST(TransactionTest, UnknownTableRejected) {
  RetailWarehouse warehouse = SmallRetail();
  Result<GpsjViewDef> def = ProductSalesView(warehouse.catalog);
  ASSERT_TRUE(def.ok()) << def.status();
  MD_ASSERT_OK_AND_ASSIGN(
      SelfMaintenanceEngine engine,
      SelfMaintenanceEngine::Create(warehouse.catalog, *def));
  std::map<std::string, Delta> tx;
  tx["store"].inserts.push_back({Value(999), Value("x"), Value("y"),
                                 Value("z"), Value("m")});
  EXPECT_EQ(engine.ApplyTransaction(tx).code(), StatusCode::kNotFound);
}

TEST(TransactionTest, WarehouseRoutesPerViewSubsets) {
  RetailWarehouse retail = SmallRetail();
  Catalog& source = retail.catalog;
  Warehouse warehouse;
  MD_ASSERT_OK(warehouse.AddViewSql(source, R"sql(
    CREATE VIEW monthly AS
    SELECT time.month, COUNT(*) AS Cnt
    FROM sale, time
    WHERE time.year = 1997 AND sale.timeid = time.id
    GROUP BY time.month
  )sql"));
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef by_product,
                          SalesByProductKeyView(source));
  MD_ASSERT_OK(warehouse.AddView(source, by_product));

  RetailDeltaGenerator gen(72);
  std::map<std::string, Delta> tx;
  MD_ASSERT_OK_AND_ASSIGN(tx["sale"], gen.MixedSaleBatch(source, 12, 6, 0));
  MD_ASSERT_OK_AND_ASSIGN(tx["product"], gen.ProductInsertions(source, 2));
  MD_ASSERT_OK(warehouse.ApplyTransaction(tx));
  MD_ASSERT_OK(ApplyTransactionToSource(
      &source, warehouse.engine("sales_by_product").derivation(), tx));
  for (const std::string& name : warehouse.ViewNames()) {
    MD_ASSERT_OK_AND_ASSIGN(Table view, warehouse.View(name));
    MD_ASSERT_OK_AND_ASSIGN(
        Table oracle,
        EvaluateGpsj(source,
                     warehouse.engine(name).derivation().view()));
    EXPECT_TRUE(TablesApproxEqual(view, oracle)) << name;
  }
}

}  // namespace
}  // namespace mindetail
