// Shared test fixtures and assertion helpers.

#ifndef MINDETAIL_TESTS_TEST_UTIL_H_
#define MINDETAIL_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "relational/ops.h"
#include "relational/table.h"
#include "workload/retail.h"

// Asserts that a Status-returning expression is OK.
#define MD_ASSERT_OK(expr)                                        \
  do {                                                            \
    const ::mindetail::Status md_test_status__ = (expr);          \
    ASSERT_TRUE(md_test_status__.ok()) << md_test_status__;       \
  } while (0)

#define MD_EXPECT_OK(expr)                                        \
  do {                                                            \
    const ::mindetail::Status md_test_status__ = (expr);          \
    EXPECT_TRUE(md_test_status__.ok()) << md_test_status__;       \
  } while (0)

// Asserts a Result is OK and moves its value into `lhs`.
#define MD_ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  MD_ASSERT_OK_AND_ASSIGN_IMPL_(                                  \
      MD_TEST_CONCAT_(md_test_result__, __LINE__), lhs, expr)

#define MD_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)             \
  auto tmp = (expr);                                              \
  ASSERT_TRUE(tmp.ok()) << tmp.status();                          \
  lhs = std::move(tmp).value()

#define MD_TEST_CONCAT_(a, b) MD_TEST_CONCAT_IMPL_(a, b)
#define MD_TEST_CONCAT_IMPL_(a, b) a##b

namespace mindetail {
namespace test {

// Approximate scalar equality: exact for non-numerics, relative-epsilon
// for numerics (incremental double sums drift by rounding order).
inline bool ValuesApproxEqual(const Value& a, const Value& b, double eps) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.IsNumeric() && b.IsNumeric()) {
    const double x = a.NumericAsDouble();
    const double y = b.NumericAsDouble();
    return std::abs(x - y) <=
           eps * std::max({1.0, std::abs(x), std::abs(y)});
  }
  return a.Compare(b) == 0;
}

// Compares two tables as bags of tuples with numeric tolerance. Rows
// are sorted first; group keys are exact so the sort orders align.
inline ::testing::AssertionResult TablesApproxEqual(const Table& a,
                                                    const Table& b,
                                                    double eps = 1e-9) {
  if (a.schema().size() != b.schema().size()) {
    return ::testing::AssertionFailure()
           << "arity mismatch: " << a.schema().size() << " vs "
           << b.schema().size();
  }
  if (a.NumRows() != b.NumRows()) {
    return ::testing::AssertionFailure()
           << "row count mismatch: " << a.NumRows() << " vs " << b.NumRows()
           << "\nleft:\n" << a.ToString() << "\nright:\n" << b.ToString();
  }
  Table sa("a", a.schema());
  sa.set_allow_null(true);
  for (const Tuple& row : a.rows()) {
    if (!sa.Insert(row).ok()) {
      return ::testing::AssertionFailure() << "copy failed";
    }
  }
  Table sb("b", b.schema());
  sb.set_allow_null(true);
  for (const Tuple& row : b.rows()) {
    if (!sb.Insert(row).ok()) {
      return ::testing::AssertionFailure() << "copy failed";
    }
  }
  SortRows(&sa);
  SortRows(&sb);
  for (size_t i = 0; i < sa.NumRows(); ++i) {
    const Tuple& ra = sa.row(i);
    const Tuple& rb = sb.row(i);
    for (size_t c = 0; c < ra.size(); ++c) {
      if (!ValuesApproxEqual(ra[c], rb[c], eps)) {
        return ::testing::AssertionFailure()
               << "row " << i << " column " << c << ": "
               << ra[c].ToString() << " vs " << rb[c].ToString()
               << "\nleft:\n" << sa.ToString() << "\nright:\n"
               << sb.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Strict table equality: same arity, same rows in the same order, and
// Value::Compare == 0 on every cell — no numeric tolerance. Used to
// assert that the parallel maintenance path is indistinguishable from
// the serial one.
inline ::testing::AssertionResult TablesExactlyEqual(const Table& a,
                                                     const Table& b) {
  if (a.schema().size() != b.schema().size()) {
    return ::testing::AssertionFailure()
           << "arity mismatch: " << a.schema().size() << " vs "
           << b.schema().size();
  }
  if (a.NumRows() != b.NumRows()) {
    return ::testing::AssertionFailure()
           << "row count mismatch: " << a.NumRows() << " vs " << b.NumRows()
           << "\nleft:\n" << a.ToString() << "\nright:\n" << b.ToString();
  }
  for (size_t i = 0; i < a.NumRows(); ++i) {
    const Tuple& ra = a.row(i);
    const Tuple& rb = b.row(i);
    for (size_t c = 0; c < ra.size(); ++c) {
      const bool equal = ra[c].is_null() || rb[c].is_null()
                             ? ra[c].is_null() && rb[c].is_null()
                             : ra[c].Compare(rb[c]) == 0;
      if (!equal) {
        return ::testing::AssertionFailure()
               << "row " << i << " column " << c << ": "
               << ra[c].ToString() << " vs " << rb[c].ToString()
               << "\nleft:\n" << a.ToString() << "\nright:\n"
               << b.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// A small deterministic retail warehouse for unit tests.
inline RetailWarehouse SmallRetail(uint64_t seed = 42) {
  RetailParams params;
  params.days = 12;
  params.stores = 3;
  params.products = 40;
  params.products_sold_per_store_day = 6;
  params.transactions_per_product = 2;
  params.daily_distinct_fraction = 0.5;
  params.seed = seed;
  Result<RetailWarehouse> warehouse = GenerateRetail(params);
  MD_CHECK(warehouse.ok());
  return std::move(warehouse).value();
}

// The tiny hand-checkable fixture used by the paper's Tables 3 and 4:
// six sales across two time ids and two product ids.
inline Catalog PaperTable3Fixture() {
  Catalog catalog;
  MD_CHECK(catalog
               .CreateTable("time",
                            Schema({{"id", ValueType::kInt64},
                                    {"month", ValueType::kInt64},
                                    {"year", ValueType::kInt64}}),
                            "id")
               .ok());
  MD_CHECK(catalog
               .CreateTable("product",
                            Schema({{"id", ValueType::kInt64},
                                    {"brand", ValueType::kString}}),
                            "id")
               .ok());
  MD_CHECK(catalog
               .CreateTable("sale",
                            Schema({{"id", ValueType::kInt64},
                                    {"timeid", ValueType::kInt64},
                                    {"productid", ValueType::kInt64},
                                    {"price", ValueType::kInt64}}),
                            "id")
               .ok());
  MD_CHECK(catalog.AddForeignKey("sale", "timeid", "time").ok());
  MD_CHECK(catalog.AddForeignKey("sale", "productid", "product").ok());

  Table* time = *catalog.MutableTable("time");
  MD_CHECK(time->Insert({Value(1), Value(1), Value(1997)}).ok());
  MD_CHECK(time->Insert({Value(2), Value(1), Value(1997)}).ok());
  Table* product = *catalog.MutableTable("product");
  MD_CHECK(product->Insert({Value(1), Value("Alpha")}).ok());
  MD_CHECK(product->Insert({Value(2), Value("Beta")}).ok());
  Table* sale = *catalog.MutableTable("sale");
  // The instance of paper Table 3: (timeid, productid, price) with the
  // duplicate (1,1,10) pair.
  MD_CHECK(sale->Insert({Value(1), Value(1), Value(1), Value(10)}).ok());
  MD_CHECK(sale->Insert({Value(2), Value(1), Value(1), Value(10)}).ok());
  MD_CHECK(sale->Insert({Value(3), Value(1), Value(2), Value(30)}).ok());
  MD_CHECK(sale->Insert({Value(4), Value(2), Value(1), Value(10)}).ok());
  MD_CHECK(sale->Insert({Value(5), Value(2), Value(2), Value(25)}).ok());
  MD_CHECK(sale->Insert({Value(6), Value(2), Value(2), Value(30)}).ok());
  return catalog;
}

}  // namespace test
}  // namespace mindetail

#endif  // MINDETAIL_TESTS_TEST_UTIL_H_
