#include "relational/ops.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace mindetail {
namespace {

Table SalesFixture() {
  Table table("sales", Schema({{"id", ValueType::kInt64},
                               {"pid", ValueType::kInt64},
                               {"price", ValueType::kInt64}}));
  MD_CHECK(table.Insert({Value(1), Value(1), Value(10)}).ok());
  MD_CHECK(table.Insert({Value(2), Value(1), Value(10)}).ok());
  MD_CHECK(table.Insert({Value(3), Value(2), Value(30)}).ok());
  MD_CHECK(table.Insert({Value(4), Value(2), Value(25)}).ok());
  return table;
}

Table ProductsFixture() {
  Table table("products", Schema({{"key", ValueType::kInt64},
                                  {"brand", ValueType::kString}}));
  MD_CHECK(table.Insert({Value(1), Value("Alpha")}).ok());
  MD_CHECK(table.Insert({Value(2), Value("Beta")}).ok());
  MD_CHECK(table.Insert({Value(3), Value("Gamma")}).ok());
  return table;
}

TEST(OpsTest, SelectFiltersRows) {
  Conjunction predicate;
  predicate.Add({"price", CompareOp::kGe, Value(25)});
  MD_ASSERT_OK_AND_ASSIGN(Table out, Select(SalesFixture(), predicate));
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST(OpsTest, SelectValidatesPredicate) {
  Conjunction predicate;
  predicate.Add({"missing", CompareOp::kEq, Value(1)});
  EXPECT_FALSE(Select(SalesFixture(), predicate).ok());
}

TEST(OpsTest, ProjectBagKeepsDuplicates) {
  MD_ASSERT_OK_AND_ASSIGN(Table out,
                          Project(SalesFixture(), {"pid"}, false));
  EXPECT_EQ(out.NumRows(), 4u);
  EXPECT_EQ(out.schema().size(), 1u);
}

TEST(OpsTest, ProjectDistinctEliminates) {
  MD_ASSERT_OK_AND_ASSIGN(Table out,
                          Project(SalesFixture(), {"pid", "price"}, true));
  EXPECT_EQ(out.NumRows(), 3u);  // (1,10) collapses.
}

TEST(OpsTest, ProjectUnknownAttributeFails) {
  EXPECT_FALSE(Project(SalesFixture(), {"zzz"}, false).ok());
}

TEST(OpsTest, HashJoinMatchesOnEquality) {
  MD_ASSERT_OK_AND_ASSIGN(
      Table out,
      HashJoin(SalesFixture(), ProductsFixture(), "pid", "key"));
  EXPECT_EQ(out.NumRows(), 4u);
  EXPECT_EQ(out.schema().size(), 5u);
  // Every output row's pid equals its key.
  const size_t pid = *out.schema().IndexOf("pid");
  const size_t key = *out.schema().IndexOf("key");
  for (const Tuple& row : out.rows()) {
    EXPECT_EQ(row[pid], row[key]);
  }
}

TEST(OpsTest, HashJoinDropsNonMatching) {
  Table extra("extra", Schema({{"pid", ValueType::kInt64}}));
  MD_CHECK(extra.Insert({Value(77)}).ok());
  MD_ASSERT_OK_AND_ASSIGN(
      Table out, HashJoin(extra, ProductsFixture(), "pid", "key"));
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST(OpsTest, HashJoinRejectsNameCollision) {
  Table left("l", Schema({{"id", ValueType::kInt64}}));
  Table right("r", Schema({{"id", ValueType::kInt64}}));
  EXPECT_FALSE(HashJoin(left, right, "id", "id").ok());
}

TEST(OpsTest, QualifyColumnsAvoidsCollision) {
  Table left = QualifyColumns(SalesFixture(), "s");
  Table right = QualifyColumns(ProductsFixture(), "p");
  MD_ASSERT_OK_AND_ASSIGN(Table out,
                          HashJoin(left, right, "s.pid", "p.key"));
  EXPECT_EQ(out.NumRows(), 4u);
  EXPECT_TRUE(out.schema().Contains("p.brand"));
}

TEST(OpsTest, SemiJoinKeepsMatchedLeftRows) {
  Table small("small", Schema({{"key", ValueType::kInt64}}));
  MD_CHECK(small.Insert({Value(2)}).ok());
  MD_ASSERT_OK_AND_ASSIGN(Table out,
                          SemiJoin(SalesFixture(), small, "pid", "key"));
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.schema().size(), 3u);  // Left schema unchanged.
}

TEST(OpsTest, GroupAggregateComputesAllFunctions) {
  std::vector<PhysicalAggregate> aggs = {
      {AggFn::kCountStar, "", false, "cnt"},
      {AggFn::kSum, "price", false, "total"},
      {AggFn::kAvg, "price", false, "avg"},
      {AggFn::kMin, "price", false, "lo"},
      {AggFn::kMax, "price", false, "hi"},
  };
  MD_ASSERT_OK_AND_ASSIGN(Table out,
                          GroupAggregate(SalesFixture(), {"pid"}, aggs));
  ASSERT_EQ(out.NumRows(), 2u);
  // pid = 1: two rows of price 10.
  EXPECT_EQ(out.row(0)[0], Value(1));
  EXPECT_EQ(out.row(0)[1], Value(2));
  EXPECT_EQ(out.row(0)[2], Value(20));
  EXPECT_DOUBLE_EQ(out.row(0)[3].AsDouble(), 10.0);
  EXPECT_EQ(out.row(0)[4], Value(10));
  EXPECT_EQ(out.row(0)[5], Value(10));
  // pid = 2: 30 and 25.
  EXPECT_EQ(out.row(1)[1], Value(2));
  EXPECT_EQ(out.row(1)[2], Value(55));
  EXPECT_DOUBLE_EQ(out.row(1)[3].AsDouble(), 27.5);
  EXPECT_EQ(out.row(1)[4], Value(25));
  EXPECT_EQ(out.row(1)[5], Value(30));
}

TEST(OpsTest, GroupAggregateDistinct) {
  std::vector<PhysicalAggregate> aggs = {
      {AggFn::kCount, "price", true, "dcnt"},
      {AggFn::kSum, "price", true, "dsum"},
  };
  MD_ASSERT_OK_AND_ASSIGN(Table out,
                          GroupAggregate(SalesFixture(), {"pid"}, aggs));
  ASSERT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.row(0)[1], Value(1));   // pid 1: one distinct price.
  EXPECT_EQ(out.row(0)[2], Value(10));  // Distinct sum collapses dupes.
  EXPECT_EQ(out.row(1)[1], Value(2));
  EXPECT_EQ(out.row(1)[2], Value(55));
}

TEST(OpsTest, ScalarAggregateOverEmptyInput) {
  Table empty("e", Schema({{"x", ValueType::kInt64}}));
  std::vector<PhysicalAggregate> aggs = {
      {AggFn::kCountStar, "", false, "cnt"},
      {AggFn::kSum, "x", false, "total"},
      {AggFn::kMin, "x", false, "lo"},
      {AggFn::kAvg, "x", false, "avg"},
  };
  MD_ASSERT_OK_AND_ASSIGN(Table out, GroupAggregate(empty, {}, aggs));
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.row(0)[0], Value(0));
  EXPECT_TRUE(out.row(0)[1].is_null());
  EXPECT_TRUE(out.row(0)[2].is_null());
  EXPECT_TRUE(out.row(0)[3].is_null());
}

TEST(OpsTest, GroupedAggregateOverEmptyInputHasNoRows) {
  Table empty("e", Schema({{"g", ValueType::kInt64},
                           {"x", ValueType::kInt64}}));
  std::vector<PhysicalAggregate> aggs = {
      {AggFn::kCountStar, "", false, "cnt"}};
  MD_ASSERT_OK_AND_ASSIGN(Table out, GroupAggregate(empty, {"g"}, aggs));
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST(OpsTest, GroupAggregateRejectsSumOverStrings) {
  std::vector<PhysicalAggregate> aggs = {
      {AggFn::kSum, "brand", false, "oops"}};
  EXPECT_FALSE(GroupAggregate(ProductsFixture(), {}, aggs).ok());
}

TEST(OpsTest, GroupAggregateRequiresOutputNames) {
  std::vector<PhysicalAggregate> aggs = {{AggFn::kCountStar, "", false, ""}};
  EXPECT_FALSE(GroupAggregate(SalesFixture(), {"pid"}, aggs).ok());
}

TEST(OpsTest, SortRowsOrdersLexicographically) {
  Table table("t", Schema({{"a", ValueType::kInt64},
                           {"b", ValueType::kString}}));
  MD_CHECK(table.Insert({Value(2), Value("x")}).ok());
  MD_CHECK(table.Insert({Value(1), Value("z")}).ok());
  MD_CHECK(table.Insert({Value(1), Value("a")}).ok());
  SortRows(&table);
  EXPECT_EQ(table.row(0)[0], Value(1));
  EXPECT_EQ(table.row(0)[1], Value("a"));
  EXPECT_EQ(table.row(1)[1], Value("z"));
  EXPECT_EQ(table.row(2)[0], Value(2));
}

TEST(OpsTest, TablesEqualAsBagsIgnoresOrder) {
  Table a = SalesFixture();
  Table b("other", a.schema());
  for (size_t i = a.NumRows(); i > 0; --i) {
    MD_CHECK(b.Insert(a.row(i - 1)).ok());
  }
  EXPECT_TRUE(TablesEqualAsBags(a, b));
  MD_CHECK(b.Insert(a.row(0)).ok());
  EXPECT_FALSE(TablesEqualAsBags(a, b));
}

TEST(OpsTest, TablesEqualAsBagsRespectsMultiplicity) {
  Table a("a", Schema({{"x", ValueType::kInt64}}));
  Table b("b", Schema({{"x", ValueType::kInt64}}));
  MD_CHECK(a.Insert({Value(1)}).ok());
  MD_CHECK(a.Insert({Value(1)}).ok());
  MD_CHECK(b.Insert({Value(1)}).ok());
  MD_CHECK(b.Insert({Value(2)}).ok());
  EXPECT_FALSE(TablesEqualAsBags(a, b));
}

}  // namespace
}  // namespace mindetail
