#include "common/bytes.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "gtest/gtest.h"

namespace mindetail {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad view");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad view");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad view");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return InvalidArgumentError("not positive");
  return v;
}

Result<int> DoubleIfPositive(int v) {
  MD_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoubleIfPositive(4), 8);
  EXPECT_FALSE(DoubleIfPositive(0).ok());
}

TEST(StringsTest, StrCatConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> pieces = {"a", "", "c"};
  EXPECT_EQ(Join(pieces, ","), "a,,c");
  EXPECT_EQ(Split("a,,c", ','), pieces);
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("saleDTL", "sale"));
  EXPECT_FALSE(StartsWith("sale", "saleDTL"));
  EXPECT_TRUE(EndsWith("saleDTL", "DTL"));
  EXPECT_FALSE(EndsWith("DTL", "saleDTL"));
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(13140000000LL), "13,140,000,000");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

TEST(BytesTest, FormatBytesPicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(167 * kMiB), "167.0 MB");
  EXPECT_EQ(FormatBytes(245 * kGiB), "245.0 GB");
}

TEST(BytesTest, PaperNumbersLandOnPaperUnits) {
  // 13.14e9 tuples × 5 fields × 4 bytes ≈ 245 GB (the paper's number).
  const uint64_t fact = 13140000000ULL * 5 * 4;
  EXPECT_EQ(FormatBytes(fact), "244.8 GB");
  // 10.95e6 tuples × 4 fields × 4 bytes ≈ 167 MB.
  const uint64_t aux = 10950000ULL * 4 * 4;
  EXPECT_EQ(FormatBytes(aux), "167.1 MB");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntCoversClosedRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a(""), 14695981039346656037ULL);
  // And "a" is a classic published vector.
  EXPECT_EQ(Fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, HashCombineOrderSensitive) {
  const uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  const uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace mindetail
