#include "core/join_graph.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/retail.h"
#include "workload/snowflake.h"

namespace mindetail {
namespace {

using test::SmallRetail;

// Paper Figure 2: sale → time [g], sale → product.
TEST(JoinGraphTest, ProductSalesMatchesFigure2) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      ExtendedJoinGraph graph,
      ExtendedJoinGraph::Build(def, warehouse.catalog));

  EXPECT_EQ(graph.root(), "sale");
  EXPECT_EQ(graph.NumVertices(), 3u);
  EXPECT_EQ(graph.vertex("sale").annotation, VertexAnnotation::kNone);
  EXPECT_EQ(graph.vertex("time").annotation, VertexAnnotation::kGroupBy);
  EXPECT_EQ(graph.vertex("product").annotation, VertexAnnotation::kNone);
  EXPECT_EQ(*graph.vertex("time").parent, "sale");
  EXPECT_EQ(graph.vertex("time").parent_attr, "timeid");
  EXPECT_EQ(graph.TopologicalOrder().front(), "sale");

  const std::string rendering = graph.ToString();
  EXPECT_NE(rendering.find("sale"), std::string::npos);
  EXPECT_NE(rendering.find("time [g]"), std::string::npos);
  EXPECT_NE(rendering.find("product"), std::string::npos);
}

TEST(JoinGraphTest, KeyAnnotationWins) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          SalesByProductKeyView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      ExtendedJoinGraph graph,
      ExtendedJoinGraph::Build(def, warehouse.catalog));
  EXPECT_EQ(graph.vertex("product").annotation,
            VertexAnnotation::kKeyGroupBy);
}

TEST(JoinGraphTest, TwoIncomingEdgesRejected) {
  Catalog catalog = test::PaperTable3Fixture();
  GpsjViewBuilder builder("bad");
  builder.From("sale")
      .From("time")
      .From("product")
      .Join("sale", "timeid", "time")
      .Join("product", "id", "time")  // Second edge into time.
      .GroupBy("time", "month")
      .CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  Result<ExtendedJoinGraph> graph = ExtendedJoinGraph::Build(def, catalog);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
}

TEST(JoinGraphTest, MultipleRootsRejected) {
  Catalog catalog = test::PaperTable3Fixture();
  GpsjViewBuilder builder("cross");
  builder.From("time").From("product").GroupBy("time", "month").CountStar(
      "Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def, builder.Build(catalog));
  Result<ExtendedJoinGraph> graph = ExtendedJoinGraph::Build(def, catalog);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
}

TEST(JoinGraphTest, SubtreeAndTopologicalOrder) {
  SnowflakeParams params;
  params.depth = 2;
  params.fanout = 2;
  params.fact_rows = 10;
  params.dim_rows = 5;
  Result<SnowflakeWarehouse> warehouse = GenerateSnowflake(params);
  ASSERT_TRUE(warehouse.ok()) << warehouse.status();

  GpsjViewBuilder builder("v");
  builder.From(warehouse->fact);
  for (const std::string& dim : warehouse->dims) {
    builder.From(dim);
    builder.Join(warehouse->parent.at(dim), warehouse->link_attr.at(dim),
                 dim);
  }
  builder.GroupBy("dim0", "a").CountStar("Cnt");
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          builder.Build(warehouse->catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      ExtendedJoinGraph graph,
      ExtendedJoinGraph::Build(def, warehouse->catalog));

  // depth 2, fanout 2 → 1 + 2 + 4 vertices.
  EXPECT_EQ(graph.NumVertices(), 7u);
  EXPECT_EQ(graph.Subtree("fact").size(), 7u);
  EXPECT_EQ(graph.Subtree("dim0").size(), 3u);
  // Parents precede children in topological order.
  const std::vector<std::string>& order = graph.TopologicalOrder();
  auto position = [&order](const std::string& name) {
    return std::find(order.begin(), order.end(), name) - order.begin();
  };
  for (const std::string& dim : warehouse->dims) {
    EXPECT_LT(position(warehouse->parent.at(dim)), position(dim));
  }
}

TEST(JoinGraphTest, DependenceRequiresForeignKeyAndNoExposedUpdates) {
  RetailWarehouse warehouse = SmallRetail();
  MD_ASSERT_OK_AND_ASSIGN(GpsjViewDef def,
                          ProductSalesView(warehouse.catalog));
  MD_ASSERT_OK_AND_ASSIGN(
      ExtendedJoinGraph graph,
      ExtendedJoinGraph::Build(def, warehouse.catalog));

  EXPECT_TRUE(graph.DependsOn("sale", "time", warehouse.catalog));
  EXPECT_TRUE(graph.DependsOn("sale", "product", warehouse.catalog));
  EXPECT_FALSE(graph.DependsOn("time", "sale", warehouse.catalog));
  EXPECT_TRUE(graph.TransitivelyDependsOnAll("sale", warehouse.catalog));
  EXPECT_FALSE(graph.TransitivelyDependsOnAll("time", warehouse.catalog));

  MD_ASSERT_OK(warehouse.catalog.SetExposedUpdates("time", true));
  EXPECT_FALSE(graph.DependsOn("sale", "time", warehouse.catalog));
  EXPECT_FALSE(graph.TransitivelyDependsOnAll("sale", warehouse.catalog));
  EXPECT_EQ(graph.DirectDependencies("sale", warehouse.catalog).size(), 1u);
}

}  // namespace
}  // namespace mindetail
