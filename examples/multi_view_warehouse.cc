// A whole warehouse in ~100 lines: base data persisted to disk as
// CSV + manifest, summary views declared in SQL, and a Warehouse
// routing change batches to every affected view — all without touching
// the base tables after the initial load.

#include <filesystem>
#include <iostream>

#include "common/bytes.h"
#include "io/catalog_io.h"
#include "maintenance/warehouse.h"
#include "workload/deltas.h"
#include "workload/retail.h"

namespace {

using namespace mindetail;  // NOLINT: example brevity.

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::abort();
  }
}

}  // namespace

int main() {
  // 1. Generate a retail source and persist it — the "operational data
  //    store" our warehouse loads from once.
  RetailParams params;
  params.days = 30;
  params.stores = 4;
  params.products = 150;
  params.products_sold_per_store_day = 15;
  params.transactions_per_product = 3;
  RetailWarehouse retail = Unwrap(GenerateRetail(params));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "mindetail_example_ods")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Check(SaveCatalog(retail.catalog, dir));
  std::cout << "Operational store persisted to " << dir << "\n";

  // 2. Reload it (as a warehouse bootstrap would) and register summary
  //    views straight from SQL.
  Catalog source = Unwrap(LoadCatalog(dir));

  // Maintain the three views concurrently: one batch fans out across
  // every affected engine (results are identical at any parallelism).
  Warehouse warehouse(WarehouseOptions{}.WithParallelism(3));
  Check(warehouse.AddViewSql(source, R"sql(
    CREATE VIEW monthly_revenue AS
    SELECT time.month, SUM(sale.price) AS Revenue, COUNT(*) AS Txns
    FROM sale, time
    WHERE time.year = 1997 AND sale.timeid = time.id
    GROUP BY time.month
  )sql"));
  Check(warehouse.AddViewSql(source, R"sql(
    CREATE VIEW city_mix AS
    SELECT store.city, COUNT(*) AS Txns, AVG(sale.price) AS AvgTicket,
           COUNT(DISTINCT product.brand) AS Brands
    FROM sale, store, product
    WHERE sale.storeid = store.id AND sale.productid = product.id
    GROUP BY store.city
  )sql"));
  Check(warehouse.AddViewSql(source, R"sql(
    CREATE VIEW product_scorecard AS
    SELECT product.id AS ProductId, product.brand AS Brand,
           SUM(sale.price) AS Revenue, COUNT(*) AS Txns
    FROM sale, product
    WHERE sale.productid = product.id
    GROUP BY product.id, product.brand
  )sql"));

  std::cout << "\n" << warehouse.Report().ToString() << "\n";

  // 3. Stream a week of changes; each batch reaches exactly the views
  //    that reference the changed table.
  RetailDeltaGenerator gen(77);
  for (int day = 0; day < 7; ++day) {
    Delta sales = Unwrap(gen.MixedSaleBatch(source, 120, 30, 15));
    Check(warehouse.Apply("sale", sales));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), sales));
  }
  Delta rebrand = Unwrap(gen.ProductBrandUpdates(source, 6));
  Check(warehouse.Apply("product", rebrand));
  Check(ApplyDelta(Unwrap(source.MutableTable("product")), rebrand));

  for (const std::string& name : warehouse.ViewNames()) {
    std::cout << "== " << name << " ==\n"
              << Unwrap(warehouse.View(name)).ToString(5) << "\n";
  }

  std::cout << "Combined detail footprint: "
            << FormatBytes(warehouse.TotalDetailPaperSizeBytes())
            << " (sources: "
            << FormatBytes(
                   (*source.GetTable("sale"))->PaperSizeBytes() +
                   (*source.GetTable("time"))->PaperSizeBytes() +
                   (*source.GetTable("product"))->PaperSizeBytes() +
                   (*source.GetTable("store"))->PaperSizeBytes())
            << ")\n";

  std::filesystem::remove_all(dir);
  return 0;
}
