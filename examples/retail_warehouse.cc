// The paper's Sec. 1.1 scenario at laptop scale: a grocery-chain star
// schema, the product_sales summary view, and a day of warehouse
// operation — comparing the minimal-detail engine against full
// replication and PSJ-style detail tables for storage and agreement.

#include <cstdio>
#include <iostream>

#include "common/bytes.h"
#include "common/strings.h"
#include "maintenance/baselines.h"
#include "maintenance/engine.h"
#include "workload/deltas.h"
#include "workload/retail.h"
#include "workload/sizing.h"

namespace {

using namespace mindetail;  // NOLINT: example brevity.

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::abort();
  }
}

}  // namespace

int main() {
  // The paper's full-scale arithmetic first (no data needed).
  StorageModel paper;
  std::cout << paper.Report() << "\n";

  // Now a scaled-down instance we can actually materialize.
  RetailParams params;
  params.days = 60;
  params.stores = 6;
  params.products = 400;
  params.products_sold_per_store_day = 40;
  params.transactions_per_product = 4;
  params.daily_distinct_fraction = 0.4;
  RetailWarehouse warehouse = Unwrap(GenerateRetail(params));
  Catalog& source = warehouse.catalog;
  std::printf("Generated %s sales over %lld days, %lld stores\n\n",
              FormatWithCommas(params.FactRows()).c_str(),
              static_cast<long long>(params.days),
              static_cast<long long>(params.stores));

  GpsjViewDef view = Unwrap(ProductSalesView(source));

  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, view));
  FullReplicationMaintainer replication =
      Unwrap(FullReplicationMaintainer::Create(source, view));
  PsjStyleMaintainer psj = Unwrap(PsjStyleMaintainer::Create(source, view));

  std::cout << "Current-detail storage (paper 4-bytes-per-field model):\n";
  std::printf("  full replication : %12s\n",
              FormatBytes(replication.DetailPaperSizeBytes()).c_str());
  std::printf("  PSJ-style detail : %12s\n",
              FormatBytes(psj.DetailPaperSizeBytes()).c_str());
  std::printf("  minimal detail   : %12s  (%.1fx smaller than "
              "replication)\n\n",
              FormatBytes(engine.AuxPaperSizeBytes()).c_str(),
              static_cast<double>(replication.DetailPaperSizeBytes()) /
                  static_cast<double>(engine.AuxPaperSizeBytes()));

  // A business day: new sales come in, some are voided, prices are
  // corrected, a few products get rebranded.
  RetailDeltaGenerator gen(2026);
  for (int hour = 0; hour < 8; ++hour) {
    Delta sales = Unwrap(gen.MixedSaleBatch(source, 200, 40, 20));
    Check(engine.Apply("sale", sales));
    Check(replication.Apply("sale", sales));
    Check(psj.Apply("sale", sales));
    Check(ApplyDelta(Unwrap(source.MutableTable("sale")), sales));
  }
  Delta rebrand = Unwrap(gen.ProductBrandUpdates(source, 10));
  Check(engine.Apply("product", rebrand));
  Check(replication.Apply("product", rebrand));
  Check(psj.Apply("product", rebrand));
  Check(ApplyDelta(Unwrap(source.MutableTable("product")), rebrand));

  Table engine_view = Unwrap(engine.View());
  Table replication_view = Unwrap(replication.View());
  std::printf("After one day: %zu view groups; engine and replication %s\n",
              engine_view.NumRows(),
              TablesEqualAsBags(engine_view, replication_view)
                  ? "AGREE"
                  : "DISAGREE");

  std::cout << "\nTop of the maintained view:\n"
            << engine_view.ToString(6) << "\n";

  const EngineStats& stats = engine.stats();
  std::printf(
      "Engine stats: %llu batches, %llu rows, %llu delta joins executed "
      "(%llu planned), %llu group recomputes, %llu shielded skips\n",
      static_cast<unsigned long long>(stats.batches_applied),
      static_cast<unsigned long long>(stats.rows_processed),
      static_cast<unsigned long long>(stats.delta_joins_executed),
      static_cast<unsigned long long>(stats.delta_joins_planned),
      static_cast<unsigned long long>(stats.group_recomputes),
      static_cast<unsigned long long>(stats.shielded_skips));
  return 0;
}
