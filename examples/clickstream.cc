// A clickstream analytics warehouse: page-view events against page and
// visitor dimensions, with an exposed-updates dimension (visitors move
// between segments, and the view filters on segment). Demonstrates how
// exposed updates disable join reductions and how the engine still
// keeps the summary exact through segment churn.

#include <iostream>

#include "common/bytes.h"
#include "common/rng.h"
#include "gpsj/builder.h"
#include "maintenance/engine.h"
#include "relational/catalog.h"

namespace {

using namespace mindetail;  // NOLINT: example brevity.

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::abort();
  }
}

}  // namespace

int main() {
  Catalog source;
  Check(source.CreateTable("page",
                           Schema({{"id", ValueType::kInt64},
                                   {"section", ValueType::kString}}),
                           "id"));
  Check(source.CreateTable("visitor",
                           Schema({{"id", ValueType::kInt64},
                                   {"segment", ValueType::kString}}),
                           "id"));
  Check(source.CreateTable("view_event",
                           Schema({{"id", ValueType::kInt64},
                                   {"pageid", ValueType::kInt64},
                                   {"visitorid", ValueType::kInt64},
                                   {"dwell_ms", ValueType::kInt64}}),
                           "id"));
  Check(source.AddForeignKey("view_event", "pageid", "page"));
  Check(source.AddForeignKey("view_event", "visitorid", "visitor"));
  // Visitors change segment over time, and the view conditions on
  // segment — these are *exposed updates* (paper Sec. 2.1/2.2).
  Check(source.SetExposedUpdates("visitor", true));

  Rng rng(99);
  Table* page = Unwrap(source.MutableTable("page"));
  const char* sections[] = {"news", "sports", "tech"};
  for (int i = 1; i <= 30; ++i) {
    Check(page->Insert({Value(i), Value(std::string(sections[i % 3]))}));
  }
  Table* visitor = Unwrap(source.MutableTable("visitor"));
  for (int i = 1; i <= 50; ++i) {
    Check(visitor->Insert(
        {Value(i), Value(rng.NextBool(0.3) ? "premium" : "free")}));
  }
  Table* events = Unwrap(source.MutableTable("view_event"));
  for (int i = 1; i <= 2000; ++i) {
    Check(events->Insert({Value(i), Value(rng.NextInt(1, 30)),
                          Value(rng.NextInt(1, 50)),
                          Value(rng.NextInt(100, 60000))}));
  }

  // Premium engagement per section.
  GpsjViewBuilder builder("premium_engagement");
  builder.From("view_event")
      .From("page")
      .From("visitor")
      .Where("visitor", "segment", CompareOp::kEq, Value("premium"))
      .Join("view_event", "pageid", "page")
      .Join("view_event", "visitorid", "visitor")
      .GroupBy("page", "section", "Section")
      .CountStar("Views")
      .Sum("view_event", "dwell_ms", "TotalDwell")
      .Avg("view_event", "dwell_ms", "AvgDwell");
  GpsjViewDef view = Unwrap(builder.Build(source));

  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, view));
  std::cout << engine.derivation().ToString() << "\n";
  std::cout << "Note: view_eventDTL keeps ALL events (no semijoin "
               "reduction on visitor — exposed updates), but compresses "
               "them per (pageid, visitorid).\n\n";
  std::cout << "Initial view:\n" << Unwrap(engine.View()).ToString()
            << "\n";

  // Segment churn: ten visitors upgrade or downgrade. Their historical
  // events enter/leave the view — the delta join against the compressed
  // event auxiliary view handles it without any base access.
  Delta churn;
  int changed = 0;
  for (const Tuple& row : visitor->rows()) {
    if (changed >= 10) break;
    Tuple after = row;
    after[1] = Value(row[1].AsString() == "premium"
                         ? std::string("free")
                         : std::string("premium"));
    churn.updates.push_back(Update{row, after});
    ++changed;
  }
  Check(engine.Apply("visitor", churn));
  Check(ApplyDelta(visitor, churn));
  std::cout << "After segment churn (10 visitors flipped):\n"
            << Unwrap(engine.View()).ToString() << "\n";

  // Fresh events keep flowing.
  Delta stream;
  for (int i = 2001; i <= 2200; ++i) {
    stream.inserts.push_back({Value(i), Value(rng.NextInt(1, 30)),
                              Value(rng.NextInt(1, 50)),
                              Value(rng.NextInt(100, 60000))});
  }
  Check(engine.Apply("view_event", stream));
  std::cout << "After 200 more events:\n"
            << Unwrap(engine.View()).ToString() << "\n";

  std::cout << "Detail footprint: "
            << FormatBytes(engine.AuxPaperSizeBytes())
            << " vs raw events "
            << FormatBytes(events->PaperSizeBytes()) << "\n";
  return 0;
}
