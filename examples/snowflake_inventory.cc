// A snowflake schema (inventory movements → product → category) showing
// the structural machinery: the extended join graph with annotations,
// Need sets, and auxiliary-view elimination — including the headline
// case where the huge fact table's auxiliary view is omitted entirely.

#include <iostream>

#include "core/need.h"
#include "gpsj/builder.h"
#include "maintenance/engine.h"
#include "relational/catalog.h"

namespace {

using namespace mindetail;  // NOLINT: example brevity.

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::abort();
  }
}

Catalog BuildInventory() {
  Catalog source;
  Check(source.CreateTable("category",
                           Schema({{"id", ValueType::kInt64},
                                   {"name", ValueType::kString}}),
                           "id"));
  Check(source.CreateTable("product",
                           Schema({{"id", ValueType::kInt64},
                                   {"categoryid", ValueType::kInt64},
                                   {"brand", ValueType::kString}}),
                           "id"));
  Check(source.CreateTable("movement",
                           Schema({{"id", ValueType::kInt64},
                                   {"productid", ValueType::kInt64},
                                   {"qty", ValueType::kInt64}}),
                           "id"));
  Check(source.AddForeignKey("product", "categoryid", "category"));
  Check(source.AddForeignKey("movement", "productid", "product"));

  Table* category = Unwrap(source.MutableTable("category"));
  Check(category->Insert({Value(1), Value("dairy")}));
  Check(category->Insert({Value(2), Value("bakery")}));
  Table* product = Unwrap(source.MutableTable("product"));
  Check(product->Insert({Value(1), Value(1), Value("Alpha")}));
  Check(product->Insert({Value(2), Value(1), Value("Beta")}));
  Check(product->Insert({Value(3), Value(2), Value("Gamma")}));
  Table* movement = Unwrap(source.MutableTable("movement"));
  for (int i = 1; i <= 12; ++i) {
    Check(movement->Insert(
        {Value(i), Value(i % 3 + 1), Value((i % 5) + 1)}));
  }
  return source;
}

}  // namespace

int main() {
  Catalog source = BuildInventory();

  // View 1: stock by category name — a snowflake chain with the
  // grouping attribute two joins away from the fact table.
  GpsjViewBuilder by_category("stock_by_category");
  by_category.From("movement")
      .From("product")
      .From("category")
      .Join("movement", "productid", "product")
      .Join("product", "categoryid", "category")
      .GroupBy("category", "name", "Category")
      .Sum("movement", "qty", "TotalQty")
      .CountStar("Movements");
  GpsjViewDef chain_view = Unwrap(by_category.Build(source));

  Derivation chain = Unwrap(Derivation::Derive(chain_view, source));
  std::cout << chain.ToString() << "\n";
  std::cout << "Every non-key-annotated table needs its ancestor chain, "
               "so all three auxiliary views are kept.\n\n";

  // View 2: stock per product id — the product vertex is annotated `k`,
  // Need sets collapse, and the fact auxiliary view is ELIMINATED: the
  // warehouse stores no movement detail at all.
  GpsjViewBuilder by_product("stock_by_product");
  by_product.From("movement")
      .From("product")
      .Join("movement", "productid", "product")
      .GroupBy("product", "id", "ProductId")
      .GroupBy("product", "brand", "Brand")
      .Sum("movement", "qty", "TotalQty")
      .CountStar("Movements");
  GpsjViewDef key_view = Unwrap(by_product.Build(source));

  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, key_view));
  std::cout << engine.derivation().ToString() << "\n";
  std::cout << "movement auxiliary view materialized? "
            << (engine.HasAux("movement") ? "yes" : "NO — eliminated")
            << "\n\n";
  std::cout << Unwrap(engine.View()).ToString() << "\n";

  // Maintain through fact churn with zero stored fact detail.
  Delta batch;
  batch.inserts.push_back({Value(100), Value(1), Value(7)});
  batch.inserts.push_back({Value(101), Value(3), Value(2)});
  batch.deletes.push_back({Value(1), Value(2), Value(2)});
  Check(engine.Apply("movement", batch));
  std::cout << "After churn (still no movement detail stored):\n"
            << Unwrap(engine.View()).ToString() << "\n";

  // A brand rename rewrites the key-grouped summary in place
  // (Definition 3: a k-annotated vertex has an empty Need set).
  Delta rename;
  rename.updates.push_back(
      Update{{Value(2), Value(1), Value("Beta")},
             {Value(2), Value(1), Value("Bravo")}});
  Check(engine.Apply("product", rename));
  std::cout << "After renaming Beta -> Bravo:\n"
            << Unwrap(engine.View()).ToString() << "\n";
  return 0;
}
