// Old detail data as an append-only ledger (paper Sec. 4 future work):
// a payments ledger is never updated or deleted, so the relaxed
// insert-only classification applies — MIN/MAX fold into the auxiliary
// views and, for key-grouped summaries, the ledger detail can be
// omitted entirely while MIN/MAX stay exact.

#include <iostream>

#include "common/bytes.h"
#include "common/rng.h"
#include "gpsj/builder.h"
#include "maintenance/engine.h"
#include "relational/catalog.h"

namespace {

using namespace mindetail;  // NOLINT: example brevity.

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::abort();
  }
}

}  // namespace

int main() {
  Catalog source;
  Check(source.CreateTable("account",
                           Schema({{"id", ValueType::kInt64},
                                   {"region", ValueType::kString}}),
                           "id"));
  Check(source.CreateTable("payment",
                           Schema({{"id", ValueType::kInt64},
                                   {"accountid", ValueType::kInt64},
                                   {"amount", ValueType::kDouble}}),
                           "id"));
  Check(source.AddForeignKey("payment", "accountid", "account"));
  // The ledger and its account directory are archival: append-only.
  Check(source.SetAppendOnly("payment", true));
  Check(source.SetAppendOnly("account", true));

  Rng rng(7);
  Table* account = Unwrap(source.MutableTable("account"));
  const char* regions[] = {"EU", "US", "APAC"};
  for (int i = 1; i <= 40; ++i) {
    Check(account->Insert({Value(i), Value(std::string(regions[i % 3]))}));
  }
  Table* payment = Unwrap(source.MutableTable("payment"));
  for (int i = 1; i <= 5000; ++i) {
    Check(payment->Insert(
        {Value(i), Value(rng.NextInt(1, 40)),
         Value(static_cast<double>(rng.NextInt(2, 2000)) / 2.0)}));
  }

  // Largest / smallest / total payment per account — MIN and MAX would
  // normally force per-amount detail; append-only makes them cheap.
  GpsjViewBuilder builder("payment_profile");
  builder.From("payment")
      .From("account")
      .Join("payment", "accountid", "account")
      .GroupBy("account", "id", "Account")
      .GroupBy("account", "region", "Region")
      .Min("payment", "amount", "Smallest")
      .Max("payment", "amount", "Largest")
      .Sum("payment", "amount", "Total")
      .CountStar("Payments");
  GpsjViewDef view = Unwrap(builder.Build(source));

  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, view));
  std::cout << engine.derivation().ToString() << "\n";
  std::cout << "payment auxiliary view materialized? "
            << (engine.HasAux("payment") ? "yes" : "NO — eliminated")
            << "\n";
  std::cout << "Detail footprint: "
            << FormatBytes(engine.AuxPaperSizeBytes()) << " for a ledger of "
            << FormatBytes(payment->PaperSizeBytes()) << "\n\n";

  std::cout << "Summary (first rows):\n"
            << Unwrap(engine.View()).ToString(6) << "\n";

  // A month of new payments; MIN/MAX merge monotonically — never
  // recomputed, never wrong.
  Delta stream;
  for (int i = 5001; i <= 5400; ++i) {
    stream.inserts.push_back(
        {Value(i), Value(rng.NextInt(1, 40)),
         Value(static_cast<double>(rng.NextInt(2, 2400)) / 2.0)});
  }
  Check(engine.Apply("payment", stream));
  std::cout << "After 400 more payments (group recomputes: "
            << engine.stats().group_recomputes << "):\n"
            << Unwrap(engine.View()).ToString(6) << "\n";

  // Deletions are structurally impossible.
  Delta bad;
  bad.deletes.push_back({Value(1), Value(1), Value(10.0)});
  Status status = engine.Apply("payment", bad);
  std::cout << "Attempting a deletion: " << status << "\n";
  return 0;
}
