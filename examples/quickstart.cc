// Quickstart: define a GPSJ view, derive its minimal auxiliary views
// (Algorithm 3.2), and keep it maintained through changes without ever
// re-reading the base tables.
//
// This walks the paper's Sec. 1.1 running example end to end on a tiny
// hand-filled star schema.

#include <cstdio>
#include <iostream>

#include "gpsj/builder.h"
#include "gpsj/evaluator.h"
#include "maintenance/engine.h"
#include "relational/catalog.h"

namespace {

using namespace mindetail;  // NOLINT: example brevity.

// Aborts with a message when an operation fails — fine for an example.
void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << status << "\n";
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  // 1. Describe the source schema: a sales fact table and two
  //    dimensions, with keys and referential integrity.
  Catalog source;
  Check(source.CreateTable("time",
                           Schema({{"id", ValueType::kInt64},
                                   {"month", ValueType::kInt64},
                                   {"year", ValueType::kInt64}}),
                           "id"));
  Check(source.CreateTable("product",
                           Schema({{"id", ValueType::kInt64},
                                   {"brand", ValueType::kString}}),
                           "id"));
  Check(source.CreateTable("sale",
                           Schema({{"id", ValueType::kInt64},
                                   {"timeid", ValueType::kInt64},
                                   {"productid", ValueType::kInt64},
                                   {"price", ValueType::kDouble}}),
                           "id"));
  Check(source.AddForeignKey("sale", "timeid", "time"));
  Check(source.AddForeignKey("sale", "productid", "product"));

  // 2. Fill in some data.
  Table* time = Unwrap(source.MutableTable("time"));
  Check(time->Insert({Value(1), Value(1), Value(1997)}));
  Check(time->Insert({Value(2), Value(2), Value(1997)}));
  Check(time->Insert({Value(3), Value(2), Value(1996)}));
  Table* product = Unwrap(source.MutableTable("product"));
  Check(product->Insert({Value(1), Value("Alpha")}));
  Check(product->Insert({Value(2), Value("Beta")}));
  Table* sale = Unwrap(source.MutableTable("sale"));
  Check(sale->Insert({Value(1), Value(1), Value(1), Value(10.0)}));
  Check(sale->Insert({Value(2), Value(1), Value(1), Value(10.0)}));
  Check(sale->Insert({Value(3), Value(2), Value(2), Value(30.0)}));
  Check(sale->Insert({Value(4), Value(3), Value(2), Value(99.0)}));  // 1996.

  // 3. Define the paper's product_sales view.
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .CountDistinct("product", "brand", "DifferentBrands");
  GpsjViewDef view = Unwrap(builder.Build(source));
  std::cout << view.ToSqlString() << "\n\n";

  // 4. Run Algorithm 3.2 and inspect the derivation.
  SelfMaintenanceEngine engine =
      Unwrap(SelfMaintenanceEngine::Create(source, view));
  std::cout << engine.derivation().ToString() << "\n";

  std::cout << "Initial view:\n" << Unwrap(engine.View()).ToString()
            << "\n";
  std::cout << "Fact auxiliary view (smart duplicate compression):\n"
            << engine.AuxContents("sale").ToString() << "\n";

  // 5. Stream changes. The engine only sees the deltas — the base
  //    tables above could now live behind a firewall.
  Delta batch;
  batch.inserts.push_back({Value(5), Value(2), Value(1), Value(12.5)});
  batch.deletes.push_back({Value(1), Value(1), Value(1), Value(10.0)});
  Check(engine.Apply("sale", batch));

  std::cout << "View after inserting sale 5 and deleting sale 1:\n"
            << Unwrap(engine.View()).ToString() << "\n";

  // 6. A protected update on a dimension: renaming a brand flows into
  //    the DISTINCT aggregate through the delta join.
  Delta rename;
  rename.updates.push_back(Update{{Value(2), Value("Beta")},
                                  {Value(2), Value("Alpha")}});
  Check(engine.Apply("product", rename));
  std::cout << "View after renaming Beta -> Alpha:\n"
            << Unwrap(engine.View()).ToString() << "\n";

  std::printf("Detail footprint: %llu bytes (paper model)\n",
              static_cast<unsigned long long>(engine.AuxPaperSizeBytes()));
  return 0;
}
